"""Robustness: the Table-3 batch-input load under injected faults.

The paper's month-long load (Table 3) ran in the real world, where
disks hiccup, connections drop and work processes die.  This bench
runs the same load under the none/light/heavy fault profiles plus a
work-process crash injected at ~50% progress, and reports

* load-time overhead per profile vs the seed (un-checkpointed) load,
* recovery time after the 50% crash (rollback + journal resume + redo),
* that the recovered load's row counts equal the fault-free load's
  exactly (idempotent replay, zero duplicates),
* that checkpointing costs < 5% even with no faults injected.

Scale factor is reduced for the same reason as bench_table3; override
with REPRO_FAULT_SF.
"""

import os

from repro.core.results import (
    duration_cell,
    render_table,
    robustness_summary,
)
from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import LoadJournal
from repro.r3.errors import WorkProcessCrash
from repro.sapschema.loader import load_sap_batch_input
from repro.sim.faults import (
    FaultProfile,
    PROFILE_HEAVY,
    PROFILE_LIGHT,
    PROFILE_NONE,
)
from repro.tpcd.dbgen import generate

LOAD_SF = float(os.environ.get("REPRO_FAULT_SF", "0.0005"))
COMMIT_INTERVAL = 25


def _row_counts(r3):
    return {name: r3.db.catalog.table(name).row_count
            for name in r3.db.catalog.table_names}


def _load(data, profile=None, commit_interval=None):
    r3 = R3System(R3Version.V22)
    if profile is not None:
        r3.attach_faults(profile)
    load_sap_batch_input(r3, data, commit_interval=commit_interval)
    return r3


def _crash_and_recover(data, crash_at_s):
    """Load with a crash at ``crash_at_s``; resume from the journal."""
    r3 = R3System(R3Version.V22)
    r3.attach_faults(FaultProfile(name="crash50", seed=1996,
                                  crash_at_s=(crash_at_s,)))
    journal = LoadJournal()
    timings = None
    crashed_at = None
    try:
        timings = load_sap_batch_input(
            r3, data, commit_interval=COMMIT_INTERVAL, journal=journal)
    except WorkProcessCrash:
        crashed_at = r3.clock.now
        timings = load_sap_batch_input(
            r3, data, commit_interval=COMMIT_INTERVAL, journal=journal,
            timings=timings)
    return r3, crashed_at


def test_robustness_faultload(benchmark):
    data = generate(LOAD_SF)

    def scenario():
        # Seed baseline: the pre-robustness load, no checkpointing.
        seed = _load(data)
        # The three declarative profiles, all checkpointed.
        profiled = {
            profile.name: _load(data, profile,
                                commit_interval=COMMIT_INTERVAL)
            for profile in (PROFILE_NONE, PROFILE_LIGHT, PROFILE_HEAVY)
        }
        # Crash at ~50% of the checkpointed fault-free load time.
        ckpt_time = profiled["none"].clock.now
        recovered, crashed_at = _crash_and_recover(data, 0.5 * ckpt_time)
        return seed, profiled, recovered, crashed_at

    seed, profiled, recovered, crashed_at = benchmark.pedantic(
        scenario, rounds=1, iterations=1)

    seed_time = seed.clock.now
    seed_rows = _row_counts(seed)
    ckpt_time = profiled["none"].clock.now

    rows = [["seed (no ckpt)", duration_cell(seed_time), "-", "-", "-"]]
    for name in ("none", "light", "heavy"):
        r3 = profiled[name]
        overhead = (r3.clock.now - seed_time) / seed_time
        rows.append([
            name,
            duration_cell(r3.clock.now),
            f"{overhead:+.2%}",
            f"{int(r3.metrics.get('faults.disk_io_injected') + r3.metrics.get('faults.connection_drops_injected')):,}",
            f"{int(r3.metrics.get('dbif.retries') + r3.metrics.get('disk.io_retries')):,}",
        ])
    recovery_time = recovered.clock.now - ckpt_time
    rows.append([
        "crash @50%+recov",
        duration_cell(recovered.clock.now),
        f"{(recovered.clock.now - seed_time) / seed_time:+.2%}",
        f"{int(recovered.metrics.get('faults.crashes_injected')):,}",
        f"{int(recovered.metrics.get('recovery.rows_rolled_back')):,} rb",
    ])
    print()
    print(render_table(
        ["Profile", "Load time", "vs seed", "Faults", "Retries"], rows,
        title=f"Robustness fault-load at SF={LOAD_SF}, "
              f"commit interval {COMMIT_INTERVAL}",
    ))
    print(f"crash at {duration_cell(crashed_at)} simulated, "
          f"recovery overhead {duration_cell(recovery_time)}")
    print()
    print(robustness_summary(recovered.metrics,
                             title="Crash-run robustness counters"))

    benchmark.extra_info["seed_load_s"] = round(seed_time, 1)
    benchmark.extra_info["checkpoint_overhead_pct"] = round(
        100 * (ckpt_time - seed_time) / seed_time, 3)
    benchmark.extra_info["recovery_overhead_s"] = round(recovery_time, 1)

    # Acceptance: checkpointing under the "none" profile costs < 5%.
    assert 0 <= (ckpt_time - seed_time) / seed_time < 0.05
    # The crash really happened mid-load and was recovered from.
    assert crashed_at is not None
    assert recovered.metrics.get("faults.crashes_injected") == 1
    assert recovered.metrics.get("batchinput.journal_resumes") >= 1
    # Idempotent recovery: row counts equal the fault-free load exactly.
    assert _row_counts(recovered) == seed_rows
    for name in ("none", "light", "heavy"):
        assert _row_counts(profiled[name]) == seed_rows
    # Faulted profiles pay, but the load always completes.
    assert profiled["heavy"].clock.now >= profiled["light"].clock.now \
        >= profiled["none"].clock.now
