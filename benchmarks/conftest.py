"""Shared benchmark fixtures.

The bench scale factor defaults to 0.002 (the smallest SF at which the
paper's aggregate orderings are stable); override with the REPRO_SF
environment variable.  Every bench reports its *simulated* durations
via ``benchmark.extra_info`` — wall-clock times measure the simulator,
the simulated times reproduce the paper.
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.tpcd.dbgen import generate
from repro.tpcd.loader import load_original

BENCH_SF = float(os.environ.get("REPRO_SF", "0.002"))


@pytest.fixture(scope="session")
def bench_sf():
    return BENCH_SF


@pytest.fixture(scope="session")
def data():
    return generate(BENCH_SF)


@pytest.fixture(scope="session")
def rdbms(data):
    return load_original(data)


@pytest.fixture(scope="session")
def r3_22(data):
    return build_sap_system(data, R3Version.V22)


@pytest.fixture(scope="session")
def r3_30(data):
    return build_sap_system(data, R3Version.V30)


# -- machine-readable results -------------------------------------------------

_STAT_FIELDS = ("min", "max", "mean", "stddev", "median", "iqr",
                "rounds", "iterations", "ops", "total")


def _stats_dict(stats) -> dict:
    as_dict = getattr(stats, "as_dict", None)
    if callable(as_dict):
        try:
            return {k: v for k, v in as_dict().items()
                    if isinstance(v, (int, float))}
        except Exception:
            pass
    out = {}
    for name in _STAT_FIELDS:
        value = getattr(stats, name, None)
        if isinstance(value, (int, float)):
            out[name] = value
    return out


def pytest_sessionfinish(session, exitstatus):
    """Dump each benchmark's results to ``BENCH_<name>.json``.

    The files feed ``python -m repro bench-diff a.json b.json`` and the
    CI artifact upload; ``REPRO_BENCH_DIR`` overrides the target
    directory (default: current working directory).  Failures here must
    never fail the bench run itself.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    for bench in bench_session.benchmarks:
        try:
            name = re.sub(r"[^A-Za-z0-9_.-]+", "_",
                          getattr(bench, "name", "unnamed"))
            record = {
                "name": getattr(bench, "name", None),
                "fullname": getattr(bench, "fullname", None),
                "group": getattr(bench, "group", None),
                "params": getattr(bench, "params", None),
                "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
                "stats": _stats_dict(getattr(bench, "stats", None)),
            }
            path = os.path.join(out_dir, f"BENCH_{name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, default=str)
                handle.write("\n")
        except Exception as exc:  # noqa: BLE001 - reporting must not fail runs
            print(f"benchmark result dump failed for "
                  f"{getattr(bench, 'name', '?')}: {exc}")
