"""Shared benchmark fixtures.

The bench scale factor defaults to 0.002 (the smallest SF at which the
paper's aggregate orderings are stable); override with the REPRO_SF
environment variable.  Every bench reports its *simulated* durations
via ``benchmark.extra_info`` — wall-clock times measure the simulator,
the simulated times reproduce the paper.
"""

from __future__ import annotations

import os

import pytest

from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.tpcd.dbgen import generate
from repro.tpcd.loader import load_original

BENCH_SF = float(os.environ.get("REPRO_SF", "0.002"))


@pytest.fixture(scope="session")
def bench_sf():
    return BENCH_SF


@pytest.fixture(scope="session")
def data():
    return generate(BENCH_SF)


@pytest.fixture(scope="session")
def rdbms(data):
    return load_original(data)


@pytest.fixture(scope="session")
def r3_22(data):
    return build_sap_system(data, R3Version.V22)


@pytest.fixture(scope="session")
def r3_30(data):
    return build_sap_system(data, R3Version.V30)
