"""Robustness: multi-user overload through the dispatcher.

The paper's configuration multiplexes all users over a fixed
work-process pool behind a dispatcher queue; under overload that queue
— not the database — saturates first.  This bench sweeps stream counts
across the none/light/heavy chaos profiles on a constrained pool
(4 dialog processes, bounded queue) and reports

* queries/hour per (streams, profile) cell and where throughput
  saturates (the stream count past which q/h stops growing),
* shed/reject rates and queue-wait totals as overload sets in,
* that the chaos invariants hold in every cell: conservation, breaker
  recovery after the storm, monotone degradation in fault severity.

Scale factor is reduced so the sweep stays minutes, not hours;
override with REPRO_CHAOS_SF.
"""

import os

from repro.core.results import render_table
from repro.sim.chaos import run_chaos
from repro.tpcd.dbgen import generate

CHAOS_SF = float(os.environ.get("REPRO_CHAOS_SF", "0.001"))
STREAM_COUNTS = (2, 4, 8, 16)
PROFILES = ("none", "light", "heavy")


def test_robustness_overload(benchmark):
    data = generate(CHAOS_SF)

    report = benchmark.pedantic(
        lambda: run_chaos(scale_factor=CHAOS_SF,
                          stream_counts=STREAM_COUNTS,
                          profiles=PROFILES, data=data),
        rounds=1, iterations=1)

    print()
    print(report.render())

    # Saturation: the smallest stream count whose fault-free q/h is
    # within 2% of the best observed (more streams past the pool size
    # only deepen the queue, they cannot add throughput).
    qph = {s: report.cell(s, "none").queries_per_hour
           for s in STREAM_COUNTS}
    best = max(qph.values())
    saturation = min(s for s in STREAM_COUNTS if qph[s] >= 0.98 * best)

    shed_rows = []
    for streams in STREAM_COUNTS:
        heavy = report.cell(streams, "heavy")
        shed_rows.append([
            streams,
            f"{qph[streams]:,.0f}",
            f"{heavy.queries_per_hour:,.0f}",
            f"{heavy.shed / max(1, heavy.submitted):.0%}",
            f"{heavy.rejected}",
            f"{report.cell(streams, 'none').queue_wait_s:,.0f}",
        ])
    print()
    print(render_table(
        ["S", "q/h none", "q/h heavy", "heavy shed", "heavy rej",
         "queue wait s"],
        shed_rows,
        title=f"Overload sweep at SF={CHAOS_SF} "
              f"(4 dialog processes, saturation at S={saturation})"))

    benchmark.extra_info["scale_factor"] = CHAOS_SF
    benchmark.extra_info["saturation_streams"] = saturation
    benchmark.extra_info["qph_by_streams_none"] = {
        str(s): round(qph[s], 1) for s in STREAM_COUNTS}
    for streams in STREAM_COUNTS:
        heavy = report.cell(streams, "heavy")
        benchmark.extra_info[f"heavy_shed_rate_s{streams}"] = round(
            heavy.shed / max(1, heavy.submitted), 4)
        benchmark.extra_info[f"rejected_s{streams}"] = \
            report.cell(streams, "none").rejected
    benchmark.extra_info["invariant_violations"] = list(report.violations)

    # Acceptance: every chaos invariant holds in every cell.
    assert report.ok, report.violations
    # Overload really bites: past the pool size the bounded queue
    # rejects work, and heavy storms shed most of it.
    assert report.cell(16, "none").rejected > 0
    assert report.cell(16, "heavy").shed > 0
    # Throughput saturates at or past the pool size, never before the
    # pool is full.
    assert saturation >= 4
