"""Table 4: the TPC-D power test under SAP R/3 Release 2.2G."""

import pytest

from repro.core import paperdata
from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version


@pytest.fixture(scope="module")
def result(data, bench_sf):
    return run_power_test(bench_sf, R3Version.V22, data=data,
                          include_updates=True)


def test_table4_power22(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print()
    print(result.render())
    for variant in ("rdbms", "native", "open"):
        benchmark.extra_info[f"{variant}_total_s"] = round(
            result.total(variant), 1
        )
    # Paper Table 4 orderings:
    rdbms = result.total("rdbms", queries_only=True)
    native = result.total("native", queries_only=True)
    open_sql = result.total("open", queries_only=True)
    assert rdbms < native < open_sql


def test_table4_shape_vs_paper(benchmark, result):
    """Report the measured-vs-paper slowdown ratios per variant."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    paper = paperdata.TABLE4_22G_S
    paper_rdbms = paperdata.total(paper["rdbms"], queries_only=True)
    measured_rdbms = result.total("rdbms", queries_only=True)
    print()
    for variant in ("native", "open"):
        paper_ratio = paperdata.total(paper[variant], queries_only=True) \
            / paper_rdbms
        measured_ratio = result.total(variant, queries_only=True) \
            / measured_rdbms
        print(f"2.2 {variant:>6} vs RDBMS: paper {paper_ratio:.1f}x, "
              f"measured {measured_ratio:.1f}x")
        assert measured_ratio > 1.5
