"""Ablation A3: KONV as a cluster table vs as a transparent table.

The single most consequential 3.0 change.  Reads the same pricing
conditions through both incarnations: in 2.2 the app server fetches
and decodes cluster pages; in 3.0 the RDBMS filters a transparent
table and ships only matches.
"""


def _konv_discount_scan(r3):
    span = r3.measure()
    result = r3.open_sql.select(
        "SELECT kposn kbetr FROM konv WHERE kschl = 'DISC' "
        "AND stunr = '040'"
    )
    return span.stop(), len(result.rows)


def test_ablation_konv_encapsulation(benchmark, r3_22, r3_30):
    def run():
        cluster_s, cluster_rows = _konv_discount_scan(r3_22)
        transparent_s, transparent_rows = _konv_discount_scan(r3_30)
        return cluster_s, transparent_s, cluster_rows, transparent_rows

    cluster_s, transparent_s, cluster_rows, transparent_rows = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"KONV scan via 2.2 cluster decode:     {cluster_s:8.2f}s "
          f"({cluster_rows} rows)")
    print(f"KONV scan via 3.0 transparent table:  {transparent_s:8.2f}s "
          f"({transparent_rows} rows)")
    benchmark.extra_info["cluster_penalty_x"] = round(
        cluster_s / max(transparent_s, 1e-9), 2
    )
    assert cluster_rows == transparent_rows
    # Decoding every condition row in the app server costs more than a
    # filtered transparent read.
    assert cluster_s > transparent_s


def test_ablation_konv_point_access(benchmark, r3_22, r3_30):
    """Per-document access: the cluster is *good* at this (all of a
    document's conditions live in one physical record)."""
    from repro.sapschema.mapping import KeyCodec

    def run():
        knumv = KeyCodec.knumv(1)
        span = r3_22.measure()
        r3_22.open_sql.select(
            "SELECT kposn kbetr FROM konv WHERE knumv = :k", {"k": knumv}
        )
        cluster_s = span.stop()
        span = r3_30.measure()
        r3_30.open_sql.select(
            "SELECT kposn kbetr FROM konv WHERE knumv = :k", {"k": knumv}
        )
        transparent_s = span.stop()
        return cluster_s, transparent_s

    cluster_s, transparent_s = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    print()
    print(f"one document via cluster:     {cluster_s * 1000:8.2f}ms")
    print(f"one document via transparent: {transparent_s * 1000:8.2f}ms")
    # Both are index probes; the cluster pays decode, the transparent
    # pays more random heap fetches — they should be the same order.
    assert cluster_s < 0.1 and transparent_s < 0.1
