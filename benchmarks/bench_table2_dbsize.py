"""Table 2: DB sizes, original TPC-D DB vs SAP DB (data + indexes)."""

from repro.core.experiments import table2_dbsize
from repro.core.results import kb_cell, render_table


def test_table2_dbsize(benchmark, data, rdbms, r3_22):
    result = benchmark.pedantic(
        lambda: table2_dbsize(data=data, db=rdbms, r3=r3_22),
        rounds=1, iterations=1,
    )
    rows = []
    for entity, entry in result.entities.items():
        rows.append([
            entity, kb_cell(entry["orig_data"]), kb_cell(entry["orig_index"]),
            kb_cell(entry["sap_data"]), kb_cell(entry["sap_index"]),
        ])
    totals = result.totals()
    rows.append([
        "Total", kb_cell(totals["orig_data"]), kb_cell(totals["orig_index"]),
        kb_cell(totals["sap_data"]), kb_cell(totals["sap_index"]),
    ])
    print()
    print(render_table(
        ["", "Orig Data KB", "Orig Idx KB", "SAP Data KB", "SAP Idx KB"],
        rows,
        title=f"Table 2: DB sizes at SF={result.scale_factor} "
              f"(paper: 10.4x data, 8.2x index inflation)",
    ))
    print(f"measured inflation: data {result.data_inflation:.1f}x, "
          f"index {result.index_inflation:.1f}x")
    benchmark.extra_info["data_inflation"] = round(result.data_inflation, 2)
    benchmark.extra_info["index_inflation"] = round(result.index_inflation, 2)
    assert result.data_inflation > 3.0
    assert result.index_inflation > 2.0
