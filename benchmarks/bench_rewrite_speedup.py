"""Rewrite speedup: original vs rule-rewritten open22 queries.

Plans the rewrites for the open22 family (R001 join merges, R005
GROUP BY pushdown, R007 full-key buffering, R010 ORDER BY pushdown),
loads the rewritten modules, and runs the directly rewritten queries
on two identical systems built from one generated TPC-D world.  Rows
must match tick-for-tick; simulated-clock speedups are printed and
dumped to ``BENCH_rewrite_speedup.json`` for bench-diff and CI.

Acceptance asserted here: every rewritten query is row-identical and
within the verifier's regression tolerance, and q2 (two probe loops
fused into joins) reaches >= 2x.

Scale override: REPRO_REWRITE_SF (default 0.01 — large enough that
q2's per-row roundtrip savings dominate fixed costs).
"""

import json
import os

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.rewrite.planner import plan_module
from repro.analysis.rewrite.verify import (
    MIN_DIRECT_SPEEDUP,
    load_rewritten,
    reports_dir,
)
from repro.core.powertest import build_sap_system
from repro.core.results import render_table
from repro.r3.appserver import R3Version
from repro.tpcd.answers import rows_match
from repro.tpcd.dbgen import generate

REWRITE_SF = float(os.environ.get("REPRO_REWRITE_SF", "0.01"))

#: the open22 queries the planner rewrites directly
QUERIES = (2, 11, 13)


def _dump(name: str, extra_info: dict) -> None:
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "extra_info": extra_info, "stats": {}},
                  handle, indent=2)
        handle.write("\n")


def test_rewrite_speedup(benchmark):
    schema = SchemaInfo(REWRITE_SF)
    base = reports_dir()
    main = plan_module(base / "open22.py", schema)
    common = plan_module(base / "common.py", schema)
    assert {"R001", "R005", "R007"} <= {
        a.rule for m in (main, common) for a in m.applied
    }

    def scenario():
        import repro.reports.open22 as orig

        data = generate(REWRITE_SF)
        new = load_rewritten(main, [common])
        r3_orig = build_sap_system(data, R3Version.V30)
        r3_new = build_sap_system(data, R3Version.V30)
        queries_orig = orig.make_queries(REWRITE_SF)
        queries_new = new.make_queries(REWRITE_SF)
        results = {}
        for number in QUERIES:
            span = r3_orig.measure()
            rows_a = queries_orig[number](r3_orig)
            orig_s = span.stop()
            span = r3_new.measure()
            rows_b = queries_new[number](r3_new)
            new_s = span.stop()
            results[number] = (
                orig_s, new_s,
                rows_match(rows_a, rows_b, ordered=True, places=2),
            )
        return results

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)

    rows = []
    info = {"sf": REWRITE_SF,
            "rules": sorted({a.rule for m in (main, common)
                             for a in m.applied}),
            "applied": len(main.applied) + len(common.applied)}
    for number in QUERIES:
        orig_s, new_s, match = results[number]
        speedup = orig_s / max(new_s, 1e-9)
        rows.append([f"q{number}", f"{orig_s:8.2f}s", f"{new_s:8.2f}s",
                     f"{speedup:5.2f}x", "ok" if match else "DIVERGED"])
        info[f"q{number}_orig_s"] = round(orig_s, 6)
        info[f"q{number}_rewritten_s"] = round(new_s, 6)
        info[f"q{number}_speedup"] = round(speedup, 3)
        info[f"q{number}_rows_match"] = match
    print()
    print(render_table(
        ["query", "original", "rewritten", "speedup", "rows"], rows,
        title=f"Rewritten open22 queries at SF={REWRITE_SF}",
    ))
    benchmark.extra_info.update(info)
    _dump("rewrite_speedup", info)

    # Every rewrite is proven row-identical and within the verifier's
    # regression tolerance (buffered single-touch probes pay a small,
    # bounded lookup+insert overhead) ...
    for number in QUERIES:
        orig_s, new_s, match = results[number]
        assert match, f"q{number} rows diverge under rewrite"
        assert orig_s / new_s >= MIN_DIRECT_SPEEDUP, (
            f"q{number} regressed: {orig_s / new_s:.2f}x"
        )
    # ... and the headline fusion win holds.
    orig_s, new_s, _match = results[2]
    assert orig_s / new_s >= 2.0, (
        f"q2 speedup {orig_s / new_s:.2f}x below the 2x acceptance bar"
    )
