"""Ablation A1: vertical partitioning vs data inflation.

The paper attributes the Native-vs-RDBMS gap to two causes: the SAP
database is ~10x the bytes, and every query joins the vertical
partitions back together.  This ablation separates them:

* full-scan COUNT(*) on LINEITEM vs its SAP partitions isolates the
  *inflation* factor (same operation, more bytes);
* Q6 (a single-table query on the original schema that becomes a
  4-way join on SAP) adds the *partitioning* factor on top.
"""

from repro.reports import native30


def _count_scan(db, sql):
    span = db.clock.span()
    db.execute(sql)
    return span.stop()


def test_ablation_partitioning(benchmark, rdbms, r3_30, bench_sf):
    def run():
        # Inflation only: sequential scans of the same logical data.
        scan_orig = _count_scan(
            rdbms, "SELECT COUNT(*) FROM lineitem WHERE l_quantity >= 0"
        )
        scan_sap = 0.0
        for table in ("vbap", "vbep", "konv"):
            span = r3_30.measure()
            r3_30.native_sql.exec_sql(
                f"SELECT COUNT(*) FROM {table} "
                f"WHERE mandt = '{r3_30.client}'"
            )
            scan_sap += span.stop()
        # Inflation + partitioning: Q6 both ways.
        from repro.tpcd.queries import build_queries, run_query

        span = rdbms.clock.span()
        run_query(rdbms, build_queries(bench_sf)[6])
        q6_orig = span.stop()
        span = r3_30.measure()
        native30.q6(r3_30)
        q6_sap = span.stop()
        return scan_orig, scan_sap, q6_orig, q6_sap

    scan_orig, scan_sap, q6_orig, q6_sap = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )
    inflation = scan_sap / max(scan_orig, 1e-9)
    total_gap = q6_sap / max(q6_orig, 1e-9)
    partitioning = total_gap / max(inflation, 1e-9)
    print()
    print(f"scan cost       orig {scan_orig:8.2f}s  sap {scan_sap:8.2f}s"
          f"  -> inflation factor {inflation:.1f}x")
    print(f"Q6 cost         orig {q6_orig:8.2f}s  sap {q6_sap:8.2f}s"
          f"  -> total gap {total_gap:.1f}x")
    print(f"residual attributable to partitioning: {partitioning:.1f}x")
    benchmark.extra_info["inflation_x"] = round(inflation, 2)
    benchmark.extra_info["total_gap_x"] = round(total_gap, 2)
    assert inflation > 1.5
    assert total_gap > inflation  # partitioning adds on top
