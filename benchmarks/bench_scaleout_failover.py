"""Scale-out: throughput and buffer quality vs app-server count, plus
the cost of losing (and recovering) one server mid-run.

The paper measures one application server; real installations scale by
adding app servers in front of the one RDBMS (paper Section 2.3).  On
the simulated serial clock extra servers add work-process slots and
queue capacity, **not** CPU, so queries/hour stays roughly flat — what
the sweep exposes is the coherence price: every server keeps its own
table buffers, so the cluster-wide buffer quality drops as the same
read stream is spread over more cold buffers, and DDLOG invalidations
fan out to every peer.

The failover cell crashes the last server ~30% into the run and
rejoins it after a restart window: the delta against the same-N
baseline prices one crash (re-routed sticky sessions, requeued dialog
steps, a cold buffer re-warm) end to end.

Dumps BENCH_scaleout_failover.json for ``repro bench-diff``.  Scale
factor 0.001 keeps CI wall time sane; override with REPRO_SCALEOUT_SF.
"""

import json
import os

from repro.core.results import render_table
from repro.sim.chaos import run_scaleout_cell
from repro.tpcd.dbgen import generate

SCALEOUT_SF = float(os.environ.get("REPRO_SCALEOUT_SF", "0.001"))
SERVER_COUNTS = (1, 2, 4)
STREAMS = 6
SYNC_PERIOD_S = 5.0
ROUTING = "sticky"


def _dump(name: str, extra_info: dict) -> None:
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "extra_info": extra_info, "stats": {}},
                  handle, indent=2)
        handle.write("\n")


def test_scaleout_failover(benchmark):
    data = generate(SCALEOUT_SF)

    def scenario():
        cells = {}
        for n in SERVER_COUNTS:
            cells[n] = run_scaleout_cell(
                data, n_servers=n, streams=STREAMS,
                scale_factor=SCALEOUT_SF, routing=ROUTING,
                sync_period_s=SYNC_PERIOD_S)
        baseline = cells[2]
        kill_cell = run_scaleout_cell(
            data, n_servers=2, streams=STREAMS,
            scale_factor=SCALEOUT_SF, routing=ROUTING,
            sync_period_s=SYNC_PERIOD_S, kill=True,
            kill_at_s=baseline.elapsed_s * 0.3,
            rejoin_after_s=baseline.elapsed_s * 0.25)
        return cells, kill_cell

    cells, kill_cell = benchmark.pedantic(scenario, rounds=1,
                                          iterations=1)

    extra = {"scale_factor": SCALEOUT_SF, "streams": STREAMS,
             "routing": ROUTING, "sync_period_s": SYNC_PERIOD_S,
             "scaling": {}}
    rows = []
    for n in SERVER_COUNTS:
        cell = cells[n]
        rows.append([
            n, f"{cell.queries_per_hour:,.0f}",
            (f"{cell.buffer_quality:.2f}"
             if cell.buffer_quality is not None else "-"),
            cell.ddlog_invalidations,
            f"{cell.max_read_staleness_s:.3f}",
            f"{cell.queue_wait_s:,.1f}",
        ])
        extra["scaling"][str(n)] = {
            "elapsed_s": round(cell.elapsed_s, 3),
            "queries_per_hour": round(cell.queries_per_hour, 3),
            "buffer_quality": (round(cell.buffer_quality, 4)
                               if cell.buffer_quality is not None
                               else None),
            "ddlog_invalidations": cell.ddlog_invalidations,
            "max_read_staleness_s": round(cell.max_read_staleness_s, 6),
            "queue_wait_s": round(cell.queue_wait_s, 3),
        }

    baseline = cells[2]
    drop_pct = 100.0 * (baseline.queries_per_hour
                        - kill_cell.queries_per_hour) \
        / baseline.queries_per_hour
    extra["failover"] = {
        "queries_per_hour": round(kill_cell.queries_per_hour, 3),
        "qph_drop_pct": round(drop_pct, 3),
        "sessions_rerouted": kill_cell.sessions_rerouted,
        "requeued": kill_cell.requeued,
        "shed": kill_cell.shed,
        "max_read_staleness_s": round(kill_cell.max_read_staleness_s, 6),
        "recovered": kill_cell.recovered,
    }

    print()
    print(render_table(
        ["Servers", "q/h", "Buf quality", "DDLOG inv", "Staleness s",
         "Queue wait s"],
        rows,
        title=f"Scale-out at SF={SCALEOUT_SF}, {STREAMS} streams, "
              f"{ROUTING} routing, sync {SYNC_PERIOD_S}s"))
    print(f"crash+recovery at N=2: {kill_cell.queries_per_hour:,.0f} q/h "
          f"({drop_pct:+.1f}% vs fault-free), "
          f"{kill_cell.sessions_rerouted} sessions re-routed, "
          f"{kill_cell.requeued} steps requeued")

    # bench-diff gates scalar extra_info fields only: flatten the
    # figures that must not drift next to the nested detail.
    for n in SERVER_COUNTS:
        scaling = extra["scaling"][str(n)]
        extra[f"qph_n{n}"] = scaling["queries_per_hour"]
        extra[f"buffer_quality_n{n}"] = scaling["buffer_quality"]
    extra["staleness_n2_s"] = \
        extra["scaling"]["2"]["max_read_staleness_s"]
    extra["qph_kill"] = extra["failover"]["queries_per_hour"]
    extra["qph_kill_drop_pct"] = extra["failover"]["qph_drop_pct"]
    extra["kill_sessions_rerouted"] = \
        extra["failover"]["sessions_rerouted"]
    _dump("scaleout_failover", extra)
    benchmark.extra_info.update({
        "qph_n1": extra["qph_n1"],
        "qph_n2": extra["qph_n2"],
        "qph_n4": extra["qph_n4"],
        "qph_kill_drop_pct": extra["qph_kill_drop_pct"],
    })

    # Acceptance: conservation everywhere, staleness bounded by the
    # sync period, a crash never helps, and recovery completes.
    for cell in [*cells.values(), kill_cell]:
        assert cell.conserved
        assert cell.max_read_staleness_s < SYNC_PERIOD_S
    assert kill_cell.queries_per_hour <= baseline.queries_per_hour
    assert kill_cell.recovered
    assert kill_cell.server_crashes == 1
    assert kill_cell.server_rejoins == 1
