"""Table 1: the SAP tables storing the TPC-D data (structural check)."""

from repro.core.experiments import table1_schema_mapping
from repro.core.results import render_table


def test_table1_schema_mapping(benchmark):
    rows = benchmark(table1_schema_mapping)
    assert len(rows) == 17
    print()
    print(render_table(
        ["SAP Table", "Description", "Orig. TPC-D Tab."], rows,
        title="Table 1: SAP tables used in the TPC-D benchmark",
    ))
