"""Durability: WAL overhead on the Table-3 load + recovery vs checkpoint interval.

Two questions the paper's month-long load makes concrete:

* what does write-ahead logging cost *while nothing goes wrong*?  The
  checkpointed batch-input load runs once without durability and once
  with the WAL at each checkpoint interval; the acceptance gate is
  < 8% load-time overhead.
* what does a crash cost *to come back from*?  Each durable load is
  crashed at ~60% of its durability boundaries, recovered through the
  ARIES passes, resumed, and checked row-identical to the fault-free
  load.  Recovery time and redo volume shrink as checkpoints tighten —
  the trade the interval knob buys.

Dumps BENCH_robustness_recovery.json for ``repro bench-diff``.  Scale
factor is reduced as in bench_table3; override with REPRO_RECOVERY_SF.
"""

import json
import os

from repro.core.results import (
    duration_cell,
    render_table,
    robustness_summary,
)
from repro.engine.errors import SimulatedCrash
from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import LoadJournal
from repro.sapschema.loader import load_sap_batch_input, recover_sap_system
from repro.sim.faults import FaultProfile
from repro.sim.params import SimParams
from repro.tpcd.dbgen import generate

LOAD_SF = float(os.environ.get("REPRO_RECOVERY_SF", "0.0005"))
COMMIT_INTERVAL = 25
#: wal_checkpoint_every_records sweep, tight to loose
INTERVALS = (1000, 4000, 16000)


def _dump(name: str, extra_info: dict) -> None:
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "extra_info": extra_info, "stats": {}},
                  handle, indent=2)
        handle.write("\n")


def _params(interval: int) -> SimParams:
    params = SimParams()
    params.wal_checkpoint_every_records = interval
    return params


def _durable_load(data, interval: int, crash_at: int | None = None):
    """One durable checkpointed load; returns (r3, store, injector)."""
    from repro.engine.wal import DurableStore

    params = _params(interval)
    store = DurableStore(params)
    r3 = R3System(R3Version.V22, params=params, durability="wal",
                  store=store)
    profile = FaultProfile(name=f"recovery-bench-{interval}", seed=1997,
                           crash_at_durability_op=crash_at)
    injector = r3.attach_faults(profile)
    journal = LoadJournal()
    try:
        load_sap_batch_input(r3, data, commit_interval=COMMIT_INTERVAL,
                             journal=journal)
    except SimulatedCrash:
        pass
    return r3, store, injector


def _row_counts(r3):
    return {name: r3.db.catalog.table(name).row_count
            for name in r3.db.catalog.table_names}


def test_robustness_recovery(benchmark):
    data = generate(LOAD_SF)

    def scenario():
        # Seed: checkpointed batch input, durability off.
        seed = R3System(R3Version.V22)
        load_sap_batch_input(seed, data, commit_interval=COMMIT_INTERVAL,
                             journal=LoadJournal())
        per_interval = {}
        for interval in INTERVALS:
            clean, clean_store, injector = _durable_load(data, interval)
            boundaries = injector.durability_ops
            crashed, store, _ = _durable_load(
                data, interval, crash_at=int(boundaries * 0.6))
            recovered, journal, report = recover_sap_system(store)
            load_sap_batch_input(recovered, data,
                                 commit_interval=COMMIT_INTERVAL,
                                 journal=journal)
            per_interval[interval] = (clean, recovered, report)
        return seed, per_interval

    seed, per_interval = benchmark.pedantic(scenario, rounds=1,
                                            iterations=1)

    seed_time = seed.clock.now
    seed_rows = _row_counts(seed)
    seed_digest = seed.db.content_digest()

    rows = [["off (seed)", duration_cell(seed_time), "-", "-", "-", "-"]]
    extra = {"seed_load_s": round(seed_time, 1), "intervals": {}}
    for interval in INTERVALS:
        clean, recovered, report = per_interval[interval]
        overhead = (clean.clock.now - seed_time) / seed_time
        rows.append([
            f"wal, ckpt every {interval:,}",
            duration_cell(clean.clock.now),
            f"{overhead:+.2%}",
            f"{int(clean.metrics.get('wal.checkpoints')):,}",
            duration_cell(report.recovery_s),
            f"{report.redo_applied:,}",
        ])
        extra["intervals"][str(interval)] = {
            "load_s": round(clean.clock.now, 1),
            "wal_overhead_pct": round(100 * overhead, 3),
            "checkpoints": int(clean.metrics.get("wal.checkpoints")),
            "recovery_s": round(report.recovery_s, 3),
            "redo_applied": report.redo_applied,
            "undo_applied": report.undo_applied,
            "loser_txns": report.loser_txns,
            "log_pages_read": report.log_pages_read,
        }

    print()
    print(render_table(
        ["Durability", "Load time", "vs off", "Ckpts", "Recovery",
         "Redo"],
        rows,
        title=f"WAL overhead and recovery at SF={LOAD_SF}, "
              f"commit interval {COMMIT_INTERVAL}",
    ))
    tight = per_interval[INTERVALS[0]][2]
    loose = per_interval[INTERVALS[-1]][2]
    print(f"recovery {duration_cell(tight.recovery_s)} (tight) vs "
          f"{duration_cell(loose.recovery_s)} (loose): tighter "
          f"checkpoints buy {loose.redo_applied - tight.redo_applied:,} "
          f"fewer redo records")
    print()
    print(robustness_summary(
        per_interval[INTERVALS[0]][1].metrics,
        title="Crash-run robustness counters (tight interval)"))

    _dump("robustness_recovery", extra)
    for key, value in extra["intervals"][str(INTERVALS[0])].items():
        benchmark.extra_info[key] = value

    # Acceptance: WAL + checkpoints cost < 8% on the Table-3 load.
    for interval in INTERVALS:
        clean = per_interval[interval][0]
        assert 0 <= (clean.clock.now - seed_time) / seed_time < 0.08
    # Recovery is row-identical to the fault-free load at every interval.
    for interval in INTERVALS:
        clean, recovered, report = per_interval[interval]
        assert _row_counts(recovered) == seed_rows
        assert recovered.db.content_digest() == seed_digest
        assert clean.db.content_digest() == seed_digest
        assert report.redo_applied >= 0
    # Tight checkpoints replay less history than loose ones.
    assert tight.redo_applied <= loose.redo_applied
    assert tight.recovery_s <= loose.recovery_s
