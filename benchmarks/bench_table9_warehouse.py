"""Table 9: the cost of constructing an SAP data warehouse."""

from repro.core.experiments import table9_warehouse
from repro.core.results import duration_cell, render_table


def test_table9_warehouse(benchmark, r3_30):
    results = benchmark.pedantic(
        lambda: table9_warehouse(r3_30), rounds=1, iterations=1,
    )
    order = ["REGION", "NATION", "SUPPLIER", "PART", "PARTSUPP",
             "CUSTOMER", "ORDER", "LINEITEM"]
    rows = [
        [name, results[name].rows,
         duration_cell(results[name].elapsed_s)]
        for name in order
    ]
    total = sum(r.elapsed_s for r in results.values())
    rows.append(["total", sum(r.rows for r in results.values()),
                 duration_cell(total)])
    print()
    print(render_table(
        ["", "rows", "running time"], rows,
        title="Table 9: reconstructing the original TPC-D DB via "
              "Open SQL reports (paper total: 6h05m)",
    ))
    benchmark.extra_info["total_simulated_s"] = round(total, 1)
    lineitem = results["LINEITEM"].elapsed_s
    assert lineitem > total / 2
