"""Extension: the TPC-D throughput test the paper deferred (footnote 1).

Two interleaved query streams plus one update pair on a single SAP
system, reported as queries/hour — next to the serialized power test
for comparison.
"""

from repro.core.throughput import run_throughput_test
from repro.reports import native30
from repro.sim.clock import format_duration


def test_extension_throughput(benchmark, r3_30, bench_sf):
    suite = native30.make_queries(bench_sf)

    def run():
        single = run_throughput_test(r3_30, suite, streams=1)
        double = run_throughput_test(r3_30, suite, streams=2)
        return single, double

    single, double = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"1 stream : {single.queries_run} queries in "
          f"{format_duration(single.elapsed_s)} "
          f"({single.queries_per_hour:,.0f} q/h)")
    print(f"2 streams: {double.queries_run} queries in "
          f"{format_duration(double.elapsed_s)} "
          f"({double.queries_per_hour:,.0f} q/h)")
    print("single machine: adding a stream adds work, not hardware —")
    print("throughput stays flat, as the paper's footnote anticipates.")
    benchmark.extra_info["qph_1"] = round(single.queries_per_hour)
    benchmark.extra_info["qph_2"] = round(double.queries_per_hour)
    # Warm caches make the 2-stream rate at least comparable.
    assert double.queries_per_hour > 0.5 * single.queries_per_hour
