"""Table 3: loading the SAP database via batch input.

Runs at a reduced scale factor (the whole point of this table is that
the load takes a simulated month).  Reported per-entity times are the
two-process effective times, as in the paper.
"""

from repro.core.experiments import table3_loading
from repro.core.results import duration_cell, render_table
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate

LOAD_SF = 0.0005


def test_table3_loading(benchmark):
    data = generate(LOAD_SF)
    timings = benchmark.pedantic(
        lambda: table3_loading(data=data, processes=2),
        rounds=1, iterations=1,
    )
    rows = [
        [entity, duration_cell(timings.effective(entity))]
        for entity in ("SUPPLIER", "PART", "PARTSUPP", "CUSTOMER",
                       "ORDER+LINEITEM")
    ]
    print()
    print(render_table(
        ["", "Loading Time (simulated)"], rows,
        title=f"Table 3: batch-input load at SF={LOAD_SF}, "
              f"two parallel processes (paper: ORDER+LINEITEM 25d19h)",
    ))
    orders = timings.effective("ORDER+LINEITEM")
    others = sum(timings.effective(e) for e in timings.elapsed
                 if e != "ORDER+LINEITEM")
    print(f"ORDER+LINEITEM dominates by {orders / others:.1f}x "
          f"(total {format_duration(orders + others)})")
    benchmark.extra_info["orders_simulated_s"] = round(orders, 1)
    assert orders > others
