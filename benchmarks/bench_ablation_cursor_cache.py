"""Ablation A2: what cursor caching buys in nested SELECT loops.

Open SQL's literal->parameter translation exists to make the cursor
cache effective (paper Section 2.3).  This ablation re-runs a 2.2
nested-loop report with the cache disabled: every inner SELECT then
pays a fresh parse + plan.
"""

from repro.reports import open22


def test_ablation_cursor_cache(benchmark, r3_22):
    def run():
        r3_22.dbif.flush_cursor_cache()
        span = r3_22.measure()
        open22.q1(r3_22)
        with_cache = span.stop()
        snap = r3_22.metrics.snapshot()
        r3_22.dbif.cache_enabled = False
        r3_22.dbif.flush_cursor_cache()
        try:
            span = r3_22.measure()
            open22.q1(r3_22)
            without_cache = span.stop()
        finally:
            r3_22.dbif.cache_enabled = True
        bypassed = snap.get("dbif.cursor_cache_bypassed")
        return with_cache, without_cache, bypassed

    with_cache, without_cache, bypassed = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )
    print()
    print(f"Q1 (2.2 Open SQL) with cursor cache:    {with_cache:8.2f}s")
    print(f"Q1 (2.2 Open SQL) without cursor cache: {without_cache:8.2f}s")
    print(f"statements re-planned without cache:    {bypassed:.0f}")
    benchmark.extra_info["cache_gain_x"] = round(
        without_cache / max(with_cache, 1e-9), 2
    )
    assert without_cache > with_cache
    assert bypassed > 1000
