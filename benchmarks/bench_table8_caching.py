"""Table 8 / Figure 5: application-server table buffering of MARA."""

from repro.core.experiments import table8_caching
from repro.core.results import duration_cell, render_table


def test_table8_caching(benchmark, r3_30):
    result = benchmark.pedantic(
        lambda: table8_caching(r3_30), rounds=1, iterations=1,
    )
    rows = []
    for label in ("none", "small", "large"):
        hit_ratio, cost = result.configs[label]
        rows.append([label, f"{hit_ratio:.0%}", duration_cell(cost)])
    print()
    print(render_table(
        ["cache", "hit ratio", "cost for querying MARA"], rows,
        title=f"Table 8: {result.lookups} small MARA queries "
              f"(paper: 0%/1h48m, 11%/1h50m, 85%/35m)",
    ))
    none_cost = result.configs["none"][1]
    large_cost = result.configs["large"][1]
    benchmark.extra_info["large_cache_speedup"] = round(
        none_cost / max(large_cost, 1e-9), 2
    )
    assert result.configs["small"][0] < result.configs["large"][0]
    assert none_cost > 2 * large_cost
