"""Extension: the EIS warehouse study (the paper's future work).

Builds a warehouse from the SAP database, runs the power test on it,
and computes the break-even point against querying SAP directly with
Open SQL — the decision the paper says customers must make.
"""

from repro.reports import open30
from repro.sim.clock import format_duration
from repro.warehouse.eis import EisWarehouse, breakeven_queries


def test_extension_eis_warehouse(benchmark, r3_30, bench_sf):
    def run():
        warehouse = EisWarehouse.build_from_sap(r3_30)
        warehouse_total = warehouse.run_power_test(bench_sf)
        suite = open30.make_queries(bench_sf)
        span = r3_30.measure()
        for number in range(1, 18):
            suite[number](r3_30)
        open_total = span.stop()
        return warehouse, warehouse_total, open_total

    warehouse, warehouse_total, open_total = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )
    build = warehouse.build
    rounds = breakeven_queries(build.total_s, open_total,
                               warehouse_total)
    print()
    print(f"warehouse construction: extraction "
          f"{format_duration(build.extraction_s)} + load "
          f"{format_duration(build.load_s)} "
          f"({build.rows_loaded} rows)")
    print(f"power test on the warehouse: "
          f"{format_duration(warehouse_total)}")
    print(f"power test via Open SQL:     {format_duration(open_total)}")
    print(f"break-even: ~{rounds:.1f} power-test rounds "
          f"(~{rounds * 17:.0f} queries)")
    benchmark.extra_info["breakeven_rounds"] = round(rounds, 2)
    # The paper's conclusion: construction costs the same order as one
    # power test, so the warehouse only pays off under repeated
    # analytical load — and then it pays off fast.
    assert 0.1 < rounds < 10
    assert warehouse_total < open_total


def test_extension_eis_incremental_maintenance(benchmark, r3_30,
                                               bench_sf, data):
    from repro.tpcd.dbgen import generate_refresh_orders
    from repro.reports.updatefuncs import run_uf1_sap

    warehouse = EisWarehouse.build_from_sap(r3_30)
    refresh = generate_refresh_orders(data, seed=99)
    run_uf1_sap(r3_30, refresh)
    keys = [row[0] for row in refresh.orders]

    def run():
        return warehouse.propagate_new_orders(r3_30, keys)

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    per_order = cost / max(len(keys), 1)
    print()
    print(f"propagated {len(keys)} new documents in "
          f"{format_duration(cost)} ({per_order:.2f}s per document)")
    count = warehouse.db.execute(
        "SELECT COUNT(*) FROM orders WHERE o_orderkey >= ?",
        (min(keys),),
    ).scalar()
    assert count == len(keys)
    benchmark.extra_info["per_document_s"] = round(per_order, 3)
