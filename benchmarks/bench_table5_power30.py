"""Table 5: the TPC-D power test under SAP R/3 Release 3.0E."""

import pytest

from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version


@pytest.fixture(scope="module")
def result(data, bench_sf):
    return run_power_test(bench_sf, R3Version.V30, data=data,
                          include_updates=True)


def test_table5_power30(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    print()
    print(result.render())
    for variant in ("rdbms", "native", "open"):
        benchmark.extra_info[f"{variant}_total_s"] = round(
            result.total(variant), 1
        )
    rdbms = result.total("rdbms", queries_only=True)
    native = result.total("native", queries_only=True)
    open_sql = result.total("open", queries_only=True)
    assert rdbms < native < open_sql


def test_table5_upgrade_gain(benchmark, result, data, bench_sf):
    """Paper: Open SQL gained ~7h from the 2.2 -> 3.0 rewrite."""
    result22 = run_power_test(bench_sf, R3Version.V22, data=data,
                              include_updates=False)
    benchmark.pedantic(lambda: result22, rounds=1, iterations=1)
    open22 = result22.total("open", queries_only=True)
    open30 = result.total("open", queries_only=True)
    native22 = result22.total("native", queries_only=True)
    native30 = result.total("native", queries_only=True)
    print()
    print(f"Open SQL:   2.2 {open22:.0f}s -> 3.0 {open30:.0f}s "
          f"({open22 / open30:.1f}x; paper 2.2x)")
    print(f"Native SQL: 2.2 {native22:.0f}s -> 3.0 {native30:.0f}s "
          f"({native22 / native30:.1f}x; paper 1.5x)")
    assert open30 < open22
    assert native30 < native22


def test_table5_unnesting_effect(benchmark, result):
    """Q2/Q11/Q16: manual unnesting makes Open SQL competitive."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    times = result.times
    overall = (result.total("open", queries_only=True)
               / result.total("native", queries_only=True))
    for name in ("Q2", "Q11", "Q16"):
        per_query = times["open"][name] / max(times["native"][name], 1e-9)
        print(f"{name}: open/native {per_query:.2f} "
              f"(suite average {overall:.2f})")
        assert per_query < overall
