"""Ablation A4: nested subquery execution vs manual unnesting.

The engine (like the paper's RDBMS) re-executes IN/EXISTS subqueries
per outer row.  Open SQL reports unnest by hand and win on Q2/Q11/Q16.
This ablation shows the effect in isolation on the *original* schema:
Q16's NOT IN as specified vs the same query manually unnested into two
statements.
"""

from repro.tpcd.queries import build_queries, run_query


def test_ablation_unnesting(benchmark, rdbms, bench_sf):
    spec = build_queries(bench_sf)[16]

    def run():
        span = rdbms.clock.span()
        nested_rows = run_query(rdbms, spec).rows
        nested_s = span.stop()

        span = rdbms.clock.span()
        complainers = {
            row[0] for row in rdbms.execute(
                "SELECT s_suppkey FROM supplier "
                "WHERE s_comment LIKE '%Customer%Complaints%'"
            ).rows
        }
        base = rdbms.execute("""
            SELECT p_brand, p_type, p_size, ps_suppkey
            FROM partsupp, part
            WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45'
              AND p_type NOT LIKE 'MEDIUM POLISHED%'
              AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
        """).rows
        groups: dict[tuple, set] = {}
        for brand, ptype, size, suppkey in base:
            if suppkey in complainers:
                continue
            groups.setdefault((brand, ptype, size), set()).add(suppkey)
        unnested_rows = sorted(
            ((brand, ptype, size, len(supps))
             for (brand, ptype, size), supps in groups.items()),
            key=lambda row: (-row[3], row[0], row[1], row[2]),
        )
        unnested_s = span.stop()
        return nested_s, unnested_s, nested_rows, unnested_rows

    nested_s, unnested_s, nested_rows, unnested_rows = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )
    print()
    print(f"Q16 nested (as specified):   {nested_s:8.2f}s")
    print(f"Q16 manually unnested:       {unnested_s:8.2f}s")
    benchmark.extra_info["unnesting_gain_x"] = round(
        nested_s / max(unnested_s, 1e-9), 2
    )
    assert list(nested_rows) == [tuple(r) for r in unnested_rows]
    assert unnested_s < nested_s
