"""Table 7 / Figure 4: complex aggregation, pushed down vs in ABAP."""

from repro.core.experiments import table7_aggregation
from repro.core.results import duration_cell, render_table


def test_table7_aggregation(benchmark, r3_30):
    result = benchmark.pedantic(
        lambda: table7_aggregation(r3_30), rounds=1, iterations=1,
    )
    print()
    print(render_table(
        ["", "Native SQL", "Open SQL"],
        [["cost", duration_cell(result.native_s),
          duration_cell(result.open_s)]],
        title="Table 7: AVG(KAWRT*(1+KBETR/1000)) GROUP BY KPOSN "
              "(paper: 4m11s vs 13m48s, 3.3x)",
    ))
    ratio = result.open_s / max(result.native_s, 1e-9)
    print(f"measured ratio: {ratio:.1f}x")
    benchmark.extra_info["open_over_native"] = round(ratio, 2)
    assert result.rows_match
    assert result.open_s > 2 * result.native_s
