"""Parallel speedup: the power-test scan/join queries at degree 1..8.

Runs Q1 and Q6 (scan-heavy) and Q3 (join-heavy) on the isolated RDBMS
at degrees 1, 2, 4 and 8, plus one deliberately *skewed* degree-4 run
(lineitem partitioned by the 3-valued return flag, so one lane idles
while another carries a double share).  Reports simulated elapsed per
(query, degree) and the derived speedups, and dumps two bench-diff
inputs:

    BENCH_parallel_speedup.json          (the parallel results)
    BENCH_parallel_serial_baseline.json  (the degree-1 baseline)

    python -m repro bench-diff BENCH_parallel_serial_baseline.json \\
        BENCH_parallel_speedup.json

Acceptance asserted here: degree=1 is tick-for-tick identical to the
plain serial engine, and degree=4 reaches >= 2.5x on Q1 and Q6.
"""

import json
import os

from repro.core.results import render_table
from repro.tpcd.loader import load_original
from repro.tpcd.queries import build_queries, run_query

DEGREES = (1, 2, 4, 8)
QUERIES = (1, 6, 3)


def _run_suite(db, specs):
    """{query number: simulated seconds} for the bench queries."""
    times = {}
    for number in QUERIES:
        start = db.now
        run_query(db, specs[number])
        times[number] = db.now - start
    return times


def _dump(name: str, extra_info: dict) -> None:
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "extra_info": extra_info, "stats": {}},
                  handle, indent=2)
        handle.write("\n")


def test_parallel_speedup(benchmark, data, bench_sf):
    specs = build_queries(bench_sf)

    def scenario():
        serial = load_original(data)
        serial_times = _run_suite(serial, specs)
        by_degree = {}
        for degree in DEGREES:
            db = load_original(data, degree=degree)
            by_degree[degree] = _run_suite(db, specs)
        skewed = load_original(data, degree=4)
        skewed.set_partition_column("lineitem", "l_returnflag")
        skewed.prepartition()
        skewed_times = _run_suite(skewed, specs)
        return serial_times, by_degree, skewed_times

    serial_times, by_degree, skewed_times = benchmark.pedantic(
        scenario, rounds=1, iterations=1)

    rows = []
    for degree in DEGREES:
        rows.append([f"degree {degree}"] + [
            f"{by_degree[degree][n]:.4f}s "
            f"({serial_times[n] / by_degree[degree][n]:.2f}x)"
            for n in QUERIES
        ])
    rows.append(["degree 4 skewed"] + [
        f"{skewed_times[n]:.4f}s "
        f"({serial_times[n] / skewed_times[n]:.2f}x)"
        for n in QUERIES
    ])
    print()
    print(render_table(
        ["", "Q1 (scan)", "Q6 (scan)", "Q3 (join)"], rows,
        title=f"Parallel speedup vs serial at SF={bench_sf}",
    ))

    serial_info = {}
    parallel_info = {}
    for n in QUERIES:
        serial_info[f"q{n}_s"] = round(serial_times[n], 6)
        parallel_info[f"q{n}_s"] = round(by_degree[4][n], 6)
        for degree in DEGREES:
            parallel_info[f"q{n}_degree{degree}_s"] = round(
                by_degree[degree][n], 6)
            parallel_info[f"q{n}_degree{degree}_speedup"] = round(
                serial_times[n] / by_degree[degree][n], 3)
        parallel_info[f"q{n}_degree4_skewed_s"] = round(skewed_times[n], 6)
        parallel_info[f"q{n}_degree4_skewed_speedup"] = round(
            serial_times[n] / skewed_times[n], 3)
    benchmark.extra_info.update(parallel_info)
    _dump("parallel_speedup", parallel_info)
    _dump("parallel_serial_baseline", serial_info)

    # degree=1 never diverges from the serial executor, to the tick.
    assert by_degree[1] == serial_times
    # The headline acceptance: >= 2.5x on the scan-heavy queries.
    for n in (1, 6):
        assert serial_times[n] / by_degree[4][n] >= 2.5
    # More lanes never slow the scan queries down ...
    for n in (1, 6):
        assert by_degree[8][n] <= by_degree[2][n]
    # ... and the skewed key measurably erodes the degree-4 speedup.
    for n in (1, 6):
        assert skewed_times[n] > by_degree[4][n]
