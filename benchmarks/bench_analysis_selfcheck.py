"""Smoke benchmark: the full-repo lint run must stay cheap.

The analyzer runs in CI on every push (the lint gate), so its own cost
is part of the development loop.  This bench times a full analysis of
the report sources — extraction, parsing, rules, baseline matching —
and asserts it stays under a wall-clock budget, plus a couple of
result-shape invariants so a silently broken analyzer cannot "pass"
by finding nothing.

Budget override: REPRO_LINT_BUDGET_S (seconds, default 5).
"""

import os
import time
from pathlib import Path

import repro.reports
from repro.analysis.baseline import Baseline, default_baseline_path
from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import analyze_paths
from repro.analysis.rules import run_rules

LINT_BUDGET_S = float(os.environ.get("REPRO_LINT_BUDGET_S", "5"))

REPORTS = Path(repro.reports.__file__).resolve().parent


def _full_lint():
    analyses = analyze_paths([REPORTS])
    schema = SchemaInfo(scale_factor=1.0)
    findings = run_rules(analyses, schema)
    baseline = Baseline.load(default_baseline_path())
    fresh = baseline.apply(findings)
    return analyses, findings, fresh


def test_full_repo_lint_under_budget():
    started = time.perf_counter()
    analyses, findings, fresh = _full_lint()
    elapsed = time.perf_counter() - started

    assert elapsed < LINT_BUDGET_S, (
        f"full-repo lint took {elapsed:.2f}s "
        f"(budget {LINT_BUDGET_S:.1f}s)"
    )
    # Shape invariants: the analyzer saw the report families and the
    # committed baseline covers everything it found.
    modules = {a.module for a in analyses}
    assert {"open22", "open30", "native22", "native30",
            "rdbms", "common"} <= modules
    assert len({f.rule for f in findings}) >= 6
    assert fresh == [], [f.key for f in fresh]


def test_lint_throughput(benchmark):
    result = benchmark(_full_lint)
    _analyses, findings, _fresh = result
    benchmark.extra_info["findings"] = len(findings)
    benchmark.extra_info["rules_fired"] = len({f.rule for f in findings})
