"""Load-vs-query tradeoff: heap vs. LSM storage, batch input vs. direct path.

The paper's most damning number is the ≈1-month batch-input load
(Table 3); this bench asks whether *storage-engine choice* and a
direct-path loader remedy it, and what the query side pays.  One
generated TPC-D world is loaded four ways — heap and LSM, each through
the paper's batch-input path (processes=1) and through the direct-path
bulk loader — then each direct-loaded system answers an Open SQL
power-response sample and runs the UF1/UF2 refresh streams.  All four
loads must be digest-identical; all times are simulated seconds.

Acceptance asserted here: the direct-path load beats batch input by
>= 2x on the simulated clock on *both* backends (on LSM the sorted
runs go straight to L0 at sequential-write rates).  Query-side costs
are reported honestly — no assertion that LSM wins reads; point-probe
workloads pay bloom/index/segment overheads that the dump records.

Scale override: REPRO_STORAGE_SF (default 0.0005 — large enough that
the app tier's screen/check costs and the storage tier's page costs
are both visible).  The LSM memtable is shrunk to 8 KB so flush and
compaction actually occur at bench scale; heap ignores those knobs,
so both backends still run identical parameters.
"""

import json
import os

from repro.core.results import render_table
from repro.r3.appserver import R3System, R3Version
from repro.reports import open22
from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap
from repro.sapschema.loader import load_sap_batch_input, load_sap_direct
from repro.sim.params import SimParams
from repro.tpcd.dbgen import delete_keys, generate, generate_refresh_orders

STORAGE_SF = float(os.environ.get("REPRO_STORAGE_SF", "0.0005"))

#: the Open SQL 2.2 queries sampled as the power-response probe
#: (scan-heavy q1/q6 plus the correlated-probe q13)
POWER_QUERIES = (1, 6, 13)


def _params() -> SimParams:
    params = SimParams()
    params.lsm_memtable_bytes = 8 * 1024
    params.lsm_l0_compaction_trigger = 2
    return params


def _dump(name: str, extra_info: dict) -> None:
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "extra_info": extra_info, "stats": {}},
                  handle, indent=2)
        handle.write("\n")


def test_storage_tradeoff(benchmark):
    data = generate(STORAGE_SF)
    refresh = generate_refresh_orders(data)
    doomed = delete_keys(data)

    def scenario():
        results: dict[str, object] = {"digests": {}}
        for storage in ("heap", "lsm"):
            r3_batch = R3System(R3Version.V22, params=_params(),
                                storage=storage)
            timings = load_sap_batch_input(r3_batch, data, processes=1)
            results[f"load_batchinput_{storage}_s"] = sum(
                timings.elapsed.values())
            results["digests"][f"batchinput_{storage}"] = (
                r3_batch.db.content_digest())
            results[f"lsm_flushes_{storage}"] = (
                r3_batch.db.metrics.get("lsm.flushes"))
            results[f"lsm_compactions_{storage}"] = (
                r3_batch.db.metrics.get("lsm.compactions"))
            results[f"seq_writes_{storage}"] = (
                r3_batch.db.metrics.get("disk.seq_writes"))

            r3 = R3System(R3Version.V22, params=_params(), storage=storage)
            timings = load_sap_direct(r3, data)
            results[f"load_direct_{storage}_s"] = timings.elapsed["DIRECT"]
            results["digests"][f"direct_{storage}"] = (
                r3.db.content_digest())

            queries = open22.make_queries(STORAGE_SF)
            for number in POWER_QUERIES:
                span = r3.measure()
                rows = queries[number](r3)
                results[f"q{number}_{storage}_s"] = span.stop()
                results[f"q{number}_{storage}_rows"] = len(rows)
            span = r3.measure()
            run_uf1_sap(r3, refresh)
            results[f"uf1_{storage}_s"] = span.stop()
            span = r3.measure()
            run_uf2_sap(r3, doomed)
            results[f"uf2_{storage}_s"] = span.stop()
        return results

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)

    digests = results.pop("digests")
    assert len(set(digests.values())) == 1, (
        f"load paths diverge: {digests}")

    info = {"sf": STORAGE_SF, "digests_match": True}
    rows = []
    for storage in ("heap", "lsm"):
        batch_s = results[f"load_batchinput_{storage}_s"]
        direct_s = results[f"load_direct_{storage}_s"]
        speedup = batch_s / max(direct_s, 1e-9)
        info[f"load_batchinput_{storage}_s"] = round(batch_s, 6)
        info[f"load_direct_{storage}_s"] = round(direct_s, 6)
        info[f"direct_speedup_{storage}"] = round(speedup, 3)
        query_s = sum(results[f"q{n}_{storage}_s"] for n in POWER_QUERIES)
        info[f"power_sample_{storage}_s"] = round(query_s, 6)
        for number in POWER_QUERIES:
            info[f"q{number}_{storage}_s"] = round(
                results[f"q{number}_{storage}_s"], 6)
        info[f"uf1_{storage}_s"] = round(results[f"uf1_{storage}_s"], 6)
        info[f"uf2_{storage}_s"] = round(results[f"uf2_{storage}_s"], 6)
        rows.append([storage, f"{batch_s:10.2f}s", f"{direct_s:8.2f}s",
                     f"{speedup:6.1f}x", f"{query_s:7.2f}s",
                     f"{results[f'uf1_{storage}_s']:6.2f}s",
                     f"{results[f'uf2_{storage}_s']:6.2f}s"])
    info["lsm_flushes"] = int(results["lsm_flushes_lsm"])
    info["lsm_compactions"] = int(results["lsm_compactions_lsm"])
    info["lsm_seq_writes"] = int(results["seq_writes_lsm"])
    print()
    print(render_table(
        ["storage", "batch input", "direct", "speedup",
         "power q1/q6/q13", "UF1", "UF2"], rows,
        title=f"Load-vs-query tradeoff at SF={STORAGE_SF}",
    ))
    benchmark.extra_info.update(info)
    _dump("storage_tradeoff", info)

    # Row identity across all four load paths was asserted above; the
    # headline: direct path >= 2x over the paper's batch input on both
    # backends, with LSM actually flushing/compacting at this scale.
    for storage in ("heap", "lsm"):
        assert info[f"direct_speedup_{storage}"] >= 2.0, (
            f"{storage} direct-path speedup "
            f"{info[f'direct_speedup_{storage}']}x below the 2x bar")
    assert info["lsm_flushes"] > 0 and info["lsm_compactions"] > 0, (
        "LSM never flushed/compacted — bench scale too small to study")
