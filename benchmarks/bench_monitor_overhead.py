"""Monitor overhead: the open30 power suite with monitoring off vs on.

The workload monitor's contract is "always-on": it must be cheap
enough to leave enabled in production.  Two identical 3.0E systems run
the open30 query suite side by side — one with the monitor enabled,
one without — and two acceptance gates apply:

* **zero-tick**: the simulated clocks and every non-``monitor.*``
  metric are *exactly* equal — the monitor reads time, never charges;
* **wall-clock**: the monitored run costs < 2% extra real time
  (best-of-N rounds, so scheduler noise doesn't decide the verdict).

Dumps BENCH_monitor_overhead.json for ``repro bench-diff`` (the
``wall_*``/``overhead_pct`` fields measure the host machine, not the
simulation — allowlist them when gating).  Override the scale factor
with REPRO_MONITOR_SF.
"""

import json
import os
import time

from repro.core.powertest import build_sap_system
from repro.core.results import render_table
from repro.r3.appserver import R3Version
from repro.reports import open30
from repro.tpcd.dbgen import generate

MONITOR_SF = float(os.environ.get("REPRO_MONITOR_SF", "0.002"))
ROUNDS = 5
#: wall-clock overhead budget for monitoring on vs off
BUDGET = 0.02


def _dump(name: str, extra_info: dict) -> None:
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"name": name, "extra_info": extra_info, "stats": {}},
                  handle, indent=2)
        handle.write("\n")


def _suite_pass(r3, suite) -> None:
    """One full pass over the 17 open30 queries, STAT-bracketed."""
    for number in range(1, 18):
        step = r3.monitor.begin_step("dialog", f"Q{number}", wp="PWR")
        suite[number](r3)
        r3.monitor.end_step(step)


def test_monitor_overhead(benchmark):
    data = generate(MONITOR_SF)
    suite = open30.make_queries(MONITOR_SF)
    off = build_sap_system(data, R3Version.V30)
    on = build_sap_system(data, R3Version.V30)
    on.monitor.enable()
    wall: dict[str, list[float]] = {"off": [], "on": []}

    def scenario():
        # warm-up pass each: buffer pools and cursor caches fill, so
        # the timed rounds compare steady-state against steady-state
        _suite_pass(off, suite)
        _suite_pass(on, suite)
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            _suite_pass(off, suite)
            wall["off"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            _suite_pass(on, suite)
            wall["on"].append(time.perf_counter() - t0)

    benchmark.pedantic(scenario, rounds=1, iterations=1)

    best_off, best_on = min(wall["off"]), min(wall["on"])
    overhead = best_on / best_off - 1

    # Zero-tick: identical simulated history, bit for bit.
    assert on.clock.now == off.clock.now
    metrics_on = {name: value for name, value in on.metrics.all().items()
                  if not name.startswith("monitor.")}
    metrics_off = {name: value for name, value in off.metrics.all().items()
                   if not name.startswith("monitor.")}
    assert metrics_on == metrics_off

    # The monitored system actually monitored: every pass produced
    # STAT records and each one conserves its response time exactly.
    records = list(on.monitor.stat_records)
    assert len(records) == 17 * (ROUNDS + 1)
    assert all(r.decomposed_s() == r.response_s for r in records)
    assert len(off.monitor.stat_records) == 0

    print()
    print(render_table(
        ["Mode", "Best wall s", "Mean wall s", "Simulated s"],
        [["monitor off", f"{best_off:.4f}",
          f"{sum(wall['off']) / ROUNDS:.4f}", f"{off.clock.now:.1f}"],
         ["monitor on", f"{best_on:.4f}",
          f"{sum(wall['on']) / ROUNDS:.4f}", f"{on.clock.now:.1f}"]],
        title=f"Monitor overhead at SF={MONITOR_SF}, "
              f"best of {ROUNDS} suite passes",
    ))
    print(f"wall overhead {overhead:+.2%} (budget {BUDGET:.0%}); "
          f"simulated overhead exactly 0 by construction; "
          f"{len(records)} STAT records, "
          f"{int(on.metrics.get('monitor.samples'))} gauge samples")

    extra = {
        "suite_simulated_s": round(on.clock.now, 3),
        "stat_records": len(records),
        "gauge_samples": int(on.metrics.get("monitor.samples")),
        "wall_off_s": round(best_off, 4),
        "wall_on_s": round(best_on, 4),
        "overhead_pct": round(100 * overhead, 2),
    }
    _dump("monitor_overhead", extra)
    benchmark.extra_info.update(extra)

    # Acceptance: always-on monitoring costs < 2% wall.
    assert overhead < BUDGET
