"""Table 6 / Figure 3: the parameterized-query optimizer trap."""

from repro.core.experiments import table6_plan_choice
from repro.core.results import duration_cell, render_table


def test_table6_plan_choice(benchmark, r3_30):
    result = benchmark.pedantic(
        lambda: table6_plan_choice(r3_30), rounds=1, iterations=1,
    )
    rows = [
        ["high (0 result tuples)",
         duration_cell(result.times[("native", "high")]),
         duration_cell(result.times[("open", "high")])],
        ["low (all tuples qualify)",
         duration_cell(result.times[("native", "low")]),
         duration_cell(result.times[("open", "low")])],
    ]
    print()
    print(render_table(
        ["selectivity", "Native SQL", "Open SQL"], rows,
        title="Table 6: one-table query, index on KWMENG "
              "(paper: 1s/1s and 4m56s/1h50m)",
    ))
    print("native low-selectivity plan:\n"
          + result.plans["native_low"])
    print("open low-selectivity plan (parameterized):\n"
          + result.plans["open_low"])
    benchmark.extra_info["trap_ratio"] = round(
        result.times[("open", "low")]
        / max(result.times[("native", "low")], 1e-9), 1
    )
    # The trap: identical answers, wildly different cost.
    assert result.rows[("native", "low")] == result.rows[("open", "low")]
    assert result.times[("open", "low")] > \
        10 * result.times[("native", "low")]
    assert result.times[("open", "high")] < 1.0
