"""``python -m repro bench-diff a.json b.json`` — compare bench dumps.

Benchmarks write ``BENCH_<name>.json`` files (see
``benchmarks/conftest.py``); this helper diffs two of them, printing
every shared numeric field from ``stats`` (wall-clock, i.e. simulator
speed) and ``extra_info`` (simulated seconds and derived ratios, i.e.
the reproduced results) side by side with absolute and relative deltas.

With ``--gate <pct>`` the diff becomes a CI regression gate over the
``extra_info`` section (the *simulated* results, which are
deterministic — wall-clock ``stats`` vary with the runner and are
never gated): exit 1 when any field moved more than ``pct`` percent in
either direction, or appeared/disappeared between baseline and
candidate.  ``--gate-allow`` lists fields exempt from the gate (bare
names or ``extra_info.<name>``), for values that are expected to move
— e.g. wall-clock figures a benchmark chose to record in extra_info.
"""

from __future__ import annotations

import json
import sys

from repro.core.results import render_table


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _shape_error(record: object, path: str) -> str | None:
    """Why ``record`` is not a BENCH_*.json dump, or None if it is.

    Guards the diff against raw pytest-benchmark output (a JSON *list*
    of runs) and other foreign files, which used to surface as a
    KeyError/AttributeError traceback deep inside the field walk.
    """
    if not isinstance(record, dict):
        return (f"{path}: expected a BENCH_*.json object "
                f"(got {type(record).__name__}); this is not a dump "
                f"written by benchmarks/conftest.py")
    if "name" not in record:
        return (f"{path}: missing 'name' — not a BENCH_*.json dump "
                f"(top-level keys: {sorted(record)[:6]})")
    for section in ("stats", "extra_info"):
        value = record.get(section)
        if value is not None and not isinstance(value, dict):
            return (f"{path}: '{section}' should be an object, "
                    f"got {type(value).__name__}")
    return None


def _numeric_fields(record: dict, section: str) -> dict[str, float]:
    data = record.get(section) or {}
    return {
        key: float(value) for key, value in data.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return f"{int(value):,}"
    return f"{value:,.6g}"


def diff_rows(a: dict, b: dict) -> list[list[str]]:
    rows: list[list[str]] = []
    for section in ("extra_info", "stats"):
        fields_a = _numeric_fields(a, section)
        fields_b = _numeric_fields(b, section)
        for key in sorted(fields_a.keys() | fields_b.keys()):
            va, vb = fields_a.get(key), fields_b.get(key)
            if va is None or vb is None:
                present = "A only" if vb is None else "B only"
                rows.append([f"{section}.{key}",
                             _fmt(va) if va is not None else "-",
                             _fmt(vb) if vb is not None else "-",
                             present, ""])
                continue
            delta = vb - va
            pct = f"{delta / va * 100:+.1f}%" if va else "n/a"
            rows.append([f"{section}.{key}", _fmt(va), _fmt(vb),
                         _fmt(delta), pct])
    return rows


def gate_violations(a: dict, b: dict, gate_pct: float,
                    allow: set[str]) -> list[str]:
    """Gate check over ``extra_info``: baseline ``a`` vs candidate ``b``.

    A field violates the gate when its symmetric relative move exceeds
    ``gate_pct`` percent, when it exists on only one side, or when a
    zero baseline became non-zero.  Fields in ``allow`` (bare name or
    ``extra_info.<name>``) are exempt.
    """
    violations: list[str] = []
    fields_a = _numeric_fields(a, "extra_info")
    fields_b = _numeric_fields(b, "extra_info")
    for key in sorted(fields_a.keys() | fields_b.keys()):
        if key in allow or f"extra_info.{key}" in allow:
            continue
        va, vb = fields_a.get(key), fields_b.get(key)
        if va is None or vb is None:
            side = "candidate" if va is None else "baseline"
            violations.append(f"{key}: only present in the {side}")
            continue
        if va == vb:
            continue
        if not va:
            violations.append(f"{key}: baseline 0 became {_fmt(vb)}")
            continue
        moved = abs(vb - va) / abs(va) * 100
        if moved > gate_pct:
            violations.append(
                f"{key}: {_fmt(va)} -> {_fmt(vb)} "
                f"({(vb - va) / va * 100:+.1f}% > ±{gate_pct:g}%)")
    return violations


def run_bench_diff(args) -> int:
    paths = getattr(args, "paths", None) or []
    if len(paths) != 2:
        print("bench-diff needs exactly two BENCH_*.json files",
              file=sys.stderr)
        return 2
    gate_pct = getattr(args, "gate", None)
    if gate_pct is not None and gate_pct < 0:
        print(f"bench-diff: --gate must be >= 0: {gate_pct}",
              file=sys.stderr)
        return 2
    allow = {
        part.strip()
        for part in (getattr(args, "gate_allow", None) or "").split(",")
        if part.strip()
    }
    try:
        a, b = _load(paths[0]), _load(paths[1])
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-diff: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    shape_errors = [err for err in (_shape_error(a, paths[0]),
                                    _shape_error(b, paths[1])) if err]
    if shape_errors:
        for err in shape_errors:
            print(f"bench-diff: {err}", file=sys.stderr)
        return 2
    name_a = a.get("name") or paths[0]
    name_b = b.get("name") or paths[1]
    if name_a != name_b:
        print(f"bench-diff: benchmark name mismatch: "
              f"{paths[0]} is {name_a!r} but {paths[1]} is {name_b!r}; "
              f"diff two dumps of the same benchmark", file=sys.stderr)
        return 2
    rows = diff_rows(a, b)
    violations = ([] if gate_pct is None
                  else gate_violations(a, b, gate_pct, allow))
    if getattr(args, "format", "text") == "json":
        payload = {
            "a": {"path": paths[0], "name": name_a},
            "b": {"path": paths[1], "name": name_b},
            "fields": [
                {"field": r[0], "a": r[1], "b": r[2],
                 "delta": r[3], "delta_pct": r[4]}
                for r in rows
            ],
        }
        if gate_pct is not None:
            payload["gate"] = {
                "threshold_pct": gate_pct,
                "allow": sorted(allow),
                "violations": violations,
                "ok": not violations,
            }
        print(json.dumps(payload, indent=2))
        return 1 if violations else 0
    title = f"bench-diff: {name_a}  vs  {name_b}"
    print(render_table(["Field", "A", "B", "Delta", "Delta %"], rows,
                       title=title))
    if gate_pct is not None:
        if violations:
            print(f"\ngate (±{gate_pct:g}% on extra_info): "
                  f"{len(violations)} violation(s)")
            for violation in violations:
                print(f"  - {violation}")
            return 1
        print(f"\ngate (±{gate_pct:g}% on extra_info): ok")
    return 0
