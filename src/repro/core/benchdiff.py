"""``python -m repro bench-diff a.json b.json`` — compare bench dumps.

Benchmarks write ``BENCH_<name>.json`` files (see
``benchmarks/conftest.py``); this helper diffs two of them, printing
every shared numeric field from ``stats`` (wall-clock, i.e. simulator
speed) and ``extra_info`` (simulated seconds and derived ratios, i.e.
the reproduced results) side by side with absolute and relative deltas.
"""

from __future__ import annotations

import json
import sys

from repro.core.results import render_table


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _numeric_fields(record: dict, section: str) -> dict[str, float]:
    data = record.get(section) or {}
    return {
        key: float(value) for key, value in data.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return f"{int(value):,}"
    return f"{value:,.6g}"


def diff_rows(a: dict, b: dict) -> list[list[str]]:
    rows: list[list[str]] = []
    for section in ("extra_info", "stats"):
        fields_a = _numeric_fields(a, section)
        fields_b = _numeric_fields(b, section)
        for key in sorted(fields_a.keys() | fields_b.keys()):
            va, vb = fields_a.get(key), fields_b.get(key)
            if va is None or vb is None:
                present = "A only" if vb is None else "B only"
                rows.append([f"{section}.{key}",
                             _fmt(va) if va is not None else "-",
                             _fmt(vb) if vb is not None else "-",
                             present, ""])
                continue
            delta = vb - va
            pct = f"{delta / va * 100:+.1f}%" if va else "n/a"
            rows.append([f"{section}.{key}", _fmt(va), _fmt(vb),
                         _fmt(delta), pct])
    return rows


def run_bench_diff(args) -> int:
    paths = getattr(args, "paths", None) or []
    if len(paths) != 2:
        print("bench-diff needs exactly two BENCH_*.json files",
              file=sys.stderr)
        return 2
    try:
        a, b = _load(paths[0]), _load(paths[1])
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-diff: cannot read inputs: {exc}", file=sys.stderr)
        return 2
    name_a = a.get("name") or paths[0]
    name_b = b.get("name") or paths[1]
    rows = diff_rows(a, b)
    if getattr(args, "format", "text") == "json":
        print(json.dumps({
            "a": {"path": paths[0], "name": name_a},
            "b": {"path": paths[1], "name": name_b},
            "fields": [
                {"field": r[0], "a": r[1], "b": r[2],
                 "delta": r[3], "delta_pct": r[4]}
                for r in rows
            ],
        }, indent=2))
        return 0
    title = f"bench-diff: {name_a}  vs  {name_b}"
    if name_a != name_b:
        title += "  (different benchmarks!)"
    print(render_table(["Field", "A", "B", "Delta", "Delta %"], rows,
                       title=title))
    return 0
