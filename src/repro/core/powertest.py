"""The TPC-D power test across all measured configurations.

Reproduces the paper's Tables 4 and 5: every query and update function
executed one at a time, timed individually on the simulated clock, for

* the isolated RDBMS on the original schema,
* Native SQL reports on the SAP schema,
* Open SQL reports on the SAP schema,

in either Release 2.2G or 3.0E.  The update functions run through
batch input for both SAP variants, so their times are recorded
identically (as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import paperdata
from repro.core.results import duration_cell, render_table
from repro.engine.database import Database
from repro.r3.appserver import R3System, R3Version
from repro.r3.upgrade import upgrade_to_30
from repro.reports import native22, native30, open22, open30
from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap
from repro.sapschema.loader import load_sap_fast
from repro.sim.params import SimParams
from repro.tpcd.dbgen import (
    TpcdData,
    delete_keys,
    generate,
    generate_refresh_orders,
)
from repro.tpcd.loader import load_original
from repro.tpcd.queries import build_queries, run_query
from repro.tpcd.updates import run_uf1_rdbms, run_uf2_rdbms


@dataclass
class PowerTestResult:
    version: R3Version
    scale_factor: float
    #: variant -> {'Q1': seconds, ..., 'UF1': ..., 'UF2': ...}
    times: dict[str, dict[str, float]] = field(default_factory=dict)
    #: variant -> {'Q1': rows, ...} for sanity checks
    row_counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def total(self, variant: str, queries_only: bool = False) -> float:
        names = paperdata.QUERIES if queries_only \
            else paperdata.QUERIES + paperdata.UPDATES
        times = self.times[variant]
        return sum(times[name] for name in names if name in times)

    def render(self) -> str:
        variants = list(self.times)
        headers = ["Query"] + [v.upper() for v in variants]
        rows = []
        for name in paperdata.QUERIES + paperdata.UPDATES:
            rows.append([name] + [
                duration_cell(self.times[v].get(name)) for v in variants
            ])
        rows.append(["Total (quer.)"] + [
            duration_cell(self.total(v, queries_only=True))
            for v in variants
        ])
        rows.append(["Total (all)"] + [
            duration_cell(self.total(v)) for v in variants
        ])
        title = (f"TPC-D Power Test, SAP R/3 {self.version.value}, "
                 f"SF={self.scale_factor} (simulated time)")
        return render_table(headers, rows, title=title)


def build_sap_system(data: TpcdData, version: R3Version,
                     params: SimParams | None = None) -> R3System:
    """A loaded SAP system at the requested release level.

    3.0E systems are produced the way the paper produced them: install
    2.2G, load, then upgrade in place (KONV conversion included) and
    drop the counterproductive default shipdate index.
    """
    r3 = R3System(R3Version.V22, params=params)
    load_sap_fast(r3, data)
    if version is R3Version.V30:
        upgrade_to_30(r3)
        r3.db.drop_index("idx_vbep_edatu")
        r3.db.analyze()
    return r3


def run_power_test(
    scale_factor: float = 0.002,
    version: R3Version = R3Version.V30,
    params: SimParams | None = None,
    variants: tuple[str, ...] = ("rdbms", "native", "open"),
    include_updates: bool = True,
    data: TpcdData | None = None,
) -> PowerTestResult:
    data = data or generate(scale_factor)
    refresh = generate_refresh_orders(data)
    doomed = delete_keys(data)
    result = PowerTestResult(version=version, scale_factor=scale_factor)

    if "rdbms" in variants:
        db = load_original(data, params=params)
        result.times["rdbms"], result.row_counts["rdbms"] = \
            _run_rdbms(db, scale_factor, refresh, doomed, include_updates)

    sap_suites = {
        "native": (native22 if version is R3Version.V22
                   else native30).make_queries(scale_factor),
        "open": (open22 if version is R3Version.V22
                 else open30).make_queries(scale_factor),
    }
    sap_needed = [v for v in variants if v in sap_suites]
    uf_times: dict[str, float] = {}
    for i, variant in enumerate(sap_needed):
        r3 = build_sap_system(data, version, params)
        times: dict[str, float] = {}
        counts: dict[str, int] = {}
        for number in range(1, 18):
            span = r3.measure()
            rows = sap_suites[variant][number](r3)
            times[f"Q{number}"] = span.stop()
            counts[f"Q{number}"] = len(rows)
        if include_updates:
            if not uf_times:
                # Both SAP variants use the identical batch-input
                # implementation; measure once, record for both.
                span = r3.measure()
                run_uf1_sap(r3, refresh)
                uf_times["UF1"] = span.stop()
                span = r3.measure()
                run_uf2_sap(r3, doomed)
                uf_times["UF2"] = span.stop()
            times.update(uf_times)
        result.times[variant] = times
        result.row_counts[variant] = counts
    return result


def _run_rdbms(db: Database, scale_factor: float, refresh: TpcdData,
               doomed: list[int], include_updates: bool
               ) -> tuple[dict[str, float], dict[str, int]]:
    specs = build_queries(scale_factor)
    times: dict[str, float] = {}
    counts: dict[str, int] = {}
    for number in sorted(specs):
        span = db.clock.span()
        rows = run_query(db, specs[number])
        times[f"Q{number}"] = span.stop()
        counts[f"Q{number}"] = len(rows.rows)
    if include_updates:
        span = db.clock.span()
        run_uf1_rdbms(db, refresh)
        times["UF1"] = span.stop()
        span = db.clock.span()
        run_uf2_rdbms(db, doomed)
        times["UF2"] = span.stop()
    return times, counts
