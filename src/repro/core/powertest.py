"""The TPC-D power test across all measured configurations.

Reproduces the paper's Tables 4 and 5: every query and update function
executed one at a time, timed individually on the simulated clock, for

* the isolated RDBMS on the original schema,
* Native SQL reports on the SAP schema,
* Open SQL reports on the SAP schema,

in either Release 2.2G or 3.0E.  The update functions run through
batch input for both SAP variants, so their times are recorded
identically (as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import paperdata
from repro.core.results import duration_cell, render_table
from repro.engine.database import Database
from repro.engine.errors import StatementTimeout, TransientError
from repro.sim.clock import SimulatedClock
from repro.r3.appserver import R3System, R3Version
from repro.r3.upgrade import upgrade_to_30
from repro.reports import native22, native30, open22, open30
from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap
from repro.sapschema.loader import load_sap_fast
from repro.sim.params import SimParams
from repro.tpcd.dbgen import (
    TpcdData,
    delete_keys,
    generate,
    generate_refresh_orders,
)
from repro.tpcd.loader import load_original
from repro.tpcd.queries import build_queries, run_query
from repro.tpcd.updates import run_uf1_rdbms, run_uf2_rdbms


@dataclass
class PowerTestResult:
    version: R3Version
    scale_factor: float
    #: variant -> {'Q1': seconds, ..., 'UF1': ..., 'UF2': ...}
    times: dict[str, dict[str, float]] = field(default_factory=dict)
    #: variant -> {'Q1': rows, ...} for sanity checks
    row_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    #: variant -> {'Q5': reason} for queries that failed or timed out;
    #: their ``times`` entry holds the partial simulated charge
    failures: dict[str, dict[str, str]] = field(default_factory=dict)
    #: variant -> Tracer with the full span tree (tracing runs only)
    traces: dict[str, object] = field(default_factory=dict)
    #: variant -> WorkloadMonitor with STAT records (monitoring runs only)
    monitors: dict[str, object] = field(default_factory=dict)

    def total(self, variant: str, queries_only: bool = False) -> float:
        names = paperdata.QUERIES if queries_only \
            else paperdata.QUERIES + paperdata.UPDATES
        times = self.times[variant]
        return sum(times[name] for name in names if name in times)

    def completed(self, variant: str) -> list[str]:
        """Names that ran to completion (the degraded suite's metric)."""
        failed = self.failures.get(variant, {})
        return [name for name in self.times[variant] if name not in failed]

    def completed_total(self, variant: str) -> float:
        times = self.times[variant]
        return sum(times[name] for name in self.completed(variant))

    def render(self) -> str:
        variants = list(self.times)
        headers = ["Query"] + [v.upper() for v in variants]
        rows = []
        any_failed = any(self.failures.get(v) for v in variants)
        for name in paperdata.QUERIES + paperdata.UPDATES:
            cells = [name]
            for v in variants:
                cell = duration_cell(self.times[v].get(name))
                if name in self.failures.get(v, {}):
                    cell += " !"
                cells.append(cell)
            rows.append(cells)
        rows.append(["Total (quer.)"] + [
            duration_cell(self.total(v, queries_only=True))
            for v in variants
        ])
        rows.append(["Total (all)"] + [
            duration_cell(self.total(v)) for v in variants
        ])
        if any_failed:
            rows.append(["Total (compl.)"] + [
                duration_cell(self.completed_total(v)) for v in variants
            ])
        title = (f"TPC-D Power Test, SAP R/3 {self.version.value}, "
                 f"SF={self.scale_factor} (simulated time)")
        table = render_table(headers, rows, title=title)
        if any_failed:
            table += ("\n! failed/timed out; time shown is the partial "
                      "charge until the abort")
        return table


def build_sap_system(data: TpcdData, version: R3Version,
                     params: SimParams | None = None,
                     degree: int = 1, storage: str = "heap") -> R3System:
    """A loaded SAP system at the requested release level.

    3.0E systems are produced the way the paper produced them: install
    2.2G, load, then upgrade in place (KONV conversion included) and
    drop the counterproductive default shipdate index.
    """
    r3 = R3System(R3Version.V22, params=params, storage=storage)
    load_sap_fast(r3, data)
    if version is R3Version.V30:
        upgrade_to_30(r3)
        r3.db.drop_index("idx_vbep_edatu")
        r3.db.analyze()
    if degree > 1:
        r3.db.set_degree(degree)
        r3.db.prepartition()
    return r3


def _guarded(clock: SimulatedClock, metrics, label: str,
             timeout_s: float | None, fn):
    """Run one suite member; never abort the suite.

    Arms a per-query clock deadline when ``timeout_s`` is set and
    degrades gracefully on robustness failures: a query killed by its
    timeout or by an exhausted fault-retry budget is reported as
    ``(partial_elapsed, None, reason)`` instead of raising, so the
    power test continues with the remaining queries (the paper's "real
    world" never gets to abort a benchmark run and start over).
    """
    span = clock.span()
    token = None
    if timeout_s is not None:
        budget = timeout_s

        def timed_out() -> Exception:
            return StatementTimeout(
                f"{label} exceeded {budget}s (simulated)"
            )

        token = clock.push_deadline(clock.now + budget, timed_out)
    try:
        value = fn()
        return span.stop(), value, None
    except TransientError as exc:
        metrics.count("powertest.failures")
        return span.stop(), None, f"{type(exc).__name__}: {exc}"
    finally:
        if token is not None:
            clock.pop_deadline(token)


def run_power_test(
    scale_factor: float = 0.002,
    version: R3Version = R3Version.V30,
    params: SimParams | None = None,
    variants: tuple[str, ...] = ("rdbms", "native", "open"),
    include_updates: bool = True,
    data: TpcdData | None = None,
    query_timeout_s: float | None = None,
    tracing: bool = False,
    degree: int = 1,
    monitoring: bool = False,
    storage: str = "heap",
) -> PowerTestResult:
    """Run the power test; with ``tracing=True`` each variant's system
    records a full hierarchical trace (enabled after load, so the trace
    covers the measured suite only) available in ``result.traces``.
    ``monitoring=True`` likewise enables each variant's workload
    monitor after load (query steps land as dialog STAT records, UF
    steps as update ones) available in ``result.monitors``.  ``degree``
    sets intra-query parallelism on every variant's database; at the
    default of 1 execution is strictly serial."""
    data = data or generate(scale_factor)
    refresh = generate_refresh_orders(data)
    doomed = delete_keys(data)
    result = PowerTestResult(version=version, scale_factor=scale_factor)

    if "rdbms" in variants:
        db = load_original(data, params=params, degree=degree,
                           storage=storage)
        if tracing:
            db.tracer.enable()
            result.traces["rdbms"] = db.tracer
        if monitoring:
            db.monitor.enable()
            result.monitors["rdbms"] = db.monitor
        (result.times["rdbms"], result.row_counts["rdbms"],
         result.failures["rdbms"]) = _run_rdbms(
            db, scale_factor, refresh, doomed, include_updates,
            query_timeout_s)
        db.monitor.finish()

    sap_suites = {
        "native": (native22 if version is R3Version.V22
                   else native30).make_queries(scale_factor),
        "open": (open22 if version is R3Version.V22
                 else open30).make_queries(scale_factor),
    }
    sap_needed = [v for v in variants if v in sap_suites]
    uf_times: dict[str, float] = {}
    uf_failures: dict[str, str] = {}
    for i, variant in enumerate(sap_needed):
        r3 = build_sap_system(data, version, params, degree=degree,
                              storage=storage)
        if tracing:
            r3.tracer.enable()
            result.traces[variant] = r3.tracer
        if monitoring:
            r3.monitor.enable()
            result.monitors[variant] = r3.monitor
        times: dict[str, float] = {}
        counts: dict[str, int] = {}
        failed: dict[str, str] = {}
        for number in range(1, 18):
            name = f"Q{number}"
            suite_fn = sap_suites[variant][number]
            step = r3.monitor.begin_step("dialog", name, wp="PWR")
            with r3.tracer.span("power.query", capture_metrics=True,
                                name=name, variant=variant) as qspan:
                elapsed, rows, reason = _guarded(
                    r3.clock, r3.metrics, name, query_timeout_s,
                    lambda fn=suite_fn: fn(r3))
                qspan.set(elapsed_s=elapsed, failed=reason is not None)
            r3.monitor.end_step(
                step, outcome="completed" if reason is None else "failed")
            times[name] = elapsed
            if reason is None:
                counts[name] = len(rows)
            else:
                failed[name] = reason
        if include_updates:
            if not uf_times:
                # Both SAP variants use the identical batch-input
                # implementation; measure once, record for both.
                for name, fn in (("UF1", lambda: run_uf1_sap(r3, refresh)),
                                 ("UF2", lambda: run_uf2_sap(r3, doomed))):
                    step = r3.monitor.begin_step("update", name, wp="PWR")
                    with r3.tracer.span("power.query", capture_metrics=True,
                                        name=name, variant=variant) as uspan:
                        elapsed, _, reason = _guarded(
                            r3.clock, r3.metrics, name, query_timeout_s, fn)
                        uspan.set(elapsed_s=elapsed,
                                  failed=reason is not None)
                    r3.monitor.end_step(
                        step,
                        outcome="completed" if reason is None else "failed")
                    uf_times[name] = elapsed
                    if reason is not None:
                        uf_failures[name] = reason
            times.update(uf_times)
            failed.update(uf_failures)
        r3.monitor.finish()
        result.times[variant] = times
        result.row_counts[variant] = counts
        result.failures[variant] = failed
    return result


def _run_rdbms(db: Database, scale_factor: float, refresh: TpcdData,
               doomed: list[int], include_updates: bool,
               query_timeout_s: float | None = None,
               ) -> tuple[dict[str, float], dict[str, int], dict[str, str]]:
    specs = build_queries(scale_factor)
    times: dict[str, float] = {}
    counts: dict[str, int] = {}
    failed: dict[str, str] = {}
    for number in sorted(specs):
        name = f"Q{number}"
        spec = specs[number]
        step = db.monitor.begin_step("dialog", name, wp="SQL")
        with db.tracer.span("power.query", capture_metrics=True,
                            name=name, variant="rdbms") as qspan:
            elapsed, rows, reason = _guarded(
                db.clock, db.metrics, name, query_timeout_s,
                lambda s=spec: run_query(db, s))
            qspan.set(elapsed_s=elapsed, failed=reason is not None)
        db.monitor.end_step(
            step, outcome="completed" if reason is None else "failed")
        times[name] = elapsed
        if reason is None:
            counts[name] = len(rows.rows)
        else:
            failed[name] = reason
    if include_updates:
        for name, fn in (("UF1", lambda: run_uf1_rdbms(db, refresh)),
                         ("UF2", lambda: run_uf2_rdbms(db, doomed))):
            step = db.monitor.begin_step("update", name, wp="SQL")
            with db.tracer.span("power.query", capture_metrics=True,
                                name=name, variant="rdbms") as uspan:
                elapsed, _, reason = _guarded(
                    db.clock, db.metrics, name, query_timeout_s, fn)
                uspan.set(elapsed_s=elapsed, failed=reason is not None)
            db.monitor.end_step(
                step, outcome="completed" if reason is None else "failed")
            times[name] = elapsed
            if reason is not None:
                failed[name] = reason
    return times, counts, failed
