"""The paper's headline contribution: application-level benchmarking.

This package ties everything together: the TPC-D power test across all
measured configurations (:mod:`repro.core.powertest`), the auxiliary
experiments behind Tables 2/3/6/7/8/9 (:mod:`repro.core.experiments`),
calibration constants (:mod:`repro.core.calibration`), the paper's
published numbers (:mod:`repro.core.paperdata`) and result formatting
(:mod:`repro.core.results`).
"""

from repro.core.powertest import PowerTestResult, run_power_test

__all__ = ["PowerTestResult", "run_power_test"]
