"""Drivers for the paper's non-power-test experiments.

One function per paper artifact:

* :func:`table1_schema_mapping` — the SAP-table inventory (Table 1),
* :func:`table2_dbsize` — database/index sizes, original vs SAP,
* :func:`table3_loading` — batch-input load times,
* :func:`table6_plan_choice` — the parameterized-query optimizer trap,
* :func:`table7_aggregation` — complex aggregation, Native vs Open,
* :func:`table8_caching` — application-server table buffering,
* :func:`table9_warehouse` — warehouse extraction costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.r3.appserver import R3System, R3Version
from repro.sapschema.loader import LoadTimings, load_sap_batch_input
from repro.sapschema.tables import SAP_TABLE_INFO
from repro.sim.params import SimParams
from repro.tpcd.dbgen import TpcdData, generate
from repro.tpcd.loader import load_original
from repro.warehouse.extract import ExtractResult, extract_all

#: which SAP tables hold which original TPC-D entity (Table 2 grouping)
ENTITY_SAP_TABLES = {
    "REGION": ["t005u"],
    "NATION": ["t005", "t005t"],
    "SUPPLIER": ["lfa1"],
    "PART": ["mara", "makt", "kapol", "konp", "ausp"],
    "PARTSUPP": ["eina", "eine"],
    "CUSTOMER": ["kna1"],
    "ORDER": ["vbak"],
    "LINEITEM": ["vbap", "vbep", "koclu", "konv"],
}
#: STXL rows are attributed to entities by their TDOBJECT
STXL_ENTITY = {"LFA1": "SUPPLIER", "MARA": "PART", "KNA1": "CUSTOMER",
               "VBBK": "ORDER", "VBBP": "LINEITEM"}
ENTITIES = list(ENTITY_SAP_TABLES)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1_schema_mapping() -> list[tuple[str, str, str]]:
    """(SAP table, description, original TPC-D table) rows, as printed."""
    return [
        (info.name.upper(), info.description, info.original)
        for info in SAP_TABLE_INFO.values()
    ]


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    scale_factor: float
    #: entity -> dict(orig_data, orig_index, sap_data, sap_index) bytes
    entities: dict[str, dict[str, int]] = field(default_factory=dict)

    def totals(self) -> dict[str, int]:
        out = {"orig_data": 0, "orig_index": 0, "sap_data": 0,
               "sap_index": 0}
        for entry in self.entities.values():
            for key in out:
                out[key] += entry[key]
        return out

    @property
    def data_inflation(self) -> float:
        totals = self.totals()
        return totals["sap_data"] / max(totals["orig_data"], 1)

    @property
    def index_inflation(self) -> float:
        totals = self.totals()
        return totals["sap_index"] / max(totals["orig_index"], 1)


_ENTITY_ORIGINAL = {
    "REGION": "region", "NATION": "nation", "SUPPLIER": "supplier",
    "PART": "part", "PARTSUPP": "partsupp", "CUSTOMER": "customer",
    "ORDER": "orders", "LINEITEM": "lineitem",
}


def _stxl_shares(r3: R3System) -> dict[str, float]:
    """Fraction of STXL rows per entity (direct heap inspection)."""
    table = r3.db.catalog.table("stxl")
    counts: dict[str, int] = {}
    position = table.schema.column_index("tdobject")
    total = 0
    for _rowid, row in table.heap.scan():
        entity = STXL_ENTITY.get(row[position])
        if entity:
            counts[entity] = counts.get(entity, 0) + 1
            total += 1
    if not total:
        return {}
    return {entity: count / total for entity, count in counts.items()}


def table2_dbsize(
    scale_factor: float = 0.002,
    params: SimParams | None = None,
    data: TpcdData | None = None,
    db=None,
    r3: R3System | None = None,
) -> Table2Result:
    """Measure data + index bytes per entity, original vs SAP."""
    from repro.core.powertest import build_sap_system

    data = data or generate(scale_factor)
    if db is None:
        db = load_original(data, params=params, analyze=False)
    if r3 is None:
        r3 = build_sap_system(data, R3Version.V22, params)
    original = db.storage_report()
    sap = r3.db.storage_report()
    stxl_share = _stxl_shares(r3)
    stxl_entry = sap.get("stxl", {"data_bytes": 0, "index_bytes": 0})
    result = Table2Result(scale_factor=data.scale_factor)
    for entity in ENTITIES:
        orig = original[_ENTITY_ORIGINAL[entity]]
        sap_data = sap_index = 0
        for table_name in ENTITY_SAP_TABLES[entity]:
            entry = sap.get(table_name)
            if entry is None:
                continue
            sap_data += entry["data_bytes"]
            sap_index += entry["index_bytes"]
        share = stxl_share.get(entity, 0.0)
        sap_data += int(stxl_entry["data_bytes"] * share)
        sap_index += int(stxl_entry["index_bytes"] * share)
        result.entities[entity] = {
            "orig_data": orig["data_bytes"],
            "orig_index": orig["index_bytes"],
            "sap_data": sap_data,
            "sap_index": sap_index,
        }
    return result


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

def table3_loading(
    scale_factor: float = 0.001,
    processes: int = 2,
    params: SimParams | None = None,
    data: TpcdData | None = None,
    storage: str = "heap",
) -> LoadTimings:
    """Batch-input load of a fresh SAP system (the paper's Table 3)."""
    data = data or generate(scale_factor)
    r3 = R3System(R3Version.V22, params=params, storage=storage)
    return load_sap_batch_input(r3, data, processes=processes)


# ---------------------------------------------------------------------------
# Table 6
# ---------------------------------------------------------------------------

@dataclass
class Table6Result:
    #: (interface, selectivity) -> simulated seconds
    times: dict[tuple[str, str], float] = field(default_factory=dict)
    #: (interface, selectivity) -> rows returned
    rows: dict[tuple[str, str], int] = field(default_factory=dict)
    plans: dict[str, str] = field(default_factory=dict)


def table6_plan_choice(r3: R3System) -> Table6Result:
    """Figure 3 / Table 6: the parameterized-cursor optimizer trap.

    Requires a loaded 3.0 system; creates (and drops) the KWMENG index
    the experiment needs.  The paper's regime is a 4 GB database
    against a 10 MB buffer, so the buffer pool is temporarily shrunk to
    a quarter of VBAP's footprint (cold caches between runs) — random
    heap fetches must actually hit the disk for the trap to show.
    """
    result = Table6Result()
    r3.db.create_index("idx_vbap_kwmeng", "vbap", ["kwmeng"])
    r3.db.analyze("vbap")
    pool = r3.db.buffer_pool
    original_capacity = pool.capacity_pages
    vbap_pages = r3.db.catalog.table("vbap").heap.page_count
    pool.resize(max(vbap_pages // 4, 16))
    try:
        cases = {"high": 0.0, "low": 9999.0}
        for label, limit in cases.items():
            # Native SQL: the literal reaches the optimizer.
            pool.clear()
            span = r3.measure()
            native = r3.native_sql.exec_sql(
                f"SELECT kwmeng, netwr FROM vbap "
                f"WHERE kwmeng < {limit} AND mandt = '{r3.client}'"
            )
            result.times[("native", label)] = span.stop()
            result.rows[("native", label)] = len(native.rows)
            # Open SQL: translated to `kwmeng < ?` for cursor caching.
            pool.clear()
            span = r3.measure()
            open_rows = r3.open_sql.select(
                "SELECT kwmeng netwr FROM vbap WHERE kwmeng < :limit",
                {"limit": limit},
            )
            result.times[("open", label)] = span.stop()
            result.rows[("open", label)] = len(open_rows.rows)
        result.plans["native_low"] = r3.db.explain(
            f"SELECT kwmeng, netwr FROM vbap "
            f"WHERE kwmeng < 9999.0 AND mandt = '{r3.client}'"
        )
        result.plans["open_low"] = r3.db.prepare(
            f"SELECT kwmeng, netwr FROM vbap "
            f"WHERE kwmeng < ? AND mandt = '{r3.client}'"
        ).explain()
    finally:
        pool.resize(original_capacity)
        r3.db.drop_index("idx_vbap_kwmeng")
    return result


# ---------------------------------------------------------------------------
# Table 7
# ---------------------------------------------------------------------------

@dataclass
class Table7Result:
    native_s: float = 0.0
    open_s: float = 0.0
    rows_match: bool = False


def table7_aggregation(r3: R3System) -> Table7Result:
    """Figure 4 / Table 7: complex aggregation, pushed vs in ABAP.

    Requires a 3.0 system (KONV transparent so Native SQL can see it).
    The average discounted volume per order position: the arithmetic
    inside AVG cannot be expressed in Open SQL, so the Open report
    ships every qualifying KONV record and groups via EXTRACT/SORT.
    """
    from repro.r3.abap import group_aggregate

    result = Table7Result()
    span = r3.measure()
    native = r3.native_sql.exec_sql(f"""
        SELECT kposn, AVG(kawrt * (1 + kbetr / 1000)) AS avg_volume
        FROM konv
        WHERE mandt = '{r3.client}' AND stunr = '040' AND zaehk = '01'
          AND kschl = 'DISC'
        GROUP BY kposn
        ORDER BY kposn
    """)
    result.native_s = span.stop()

    span = r3.measure()
    shipped = r3.open_sql.select(
        "SELECT kposn kbetr kawrt FROM konv "
        "WHERE stunr = '040' AND zaehk = '01' AND kschl = 'DISC' "
        "ORDER BY kposn"
    )
    grouped = group_aggregate(
        r3, shipped.rows, lambda g: (g[0],),
        lambda key, group: key + (
            sum(g[2] * (1 + g[1] / 1000) for g in group) / len(group),
        ),
    )
    result.open_s = span.stop()
    native_rows = [(kposn, round(avg, 6)) for kposn, avg in native.rows]
    open_rows = [(kposn, round(avg, 6)) for kposn, avg in grouped]
    result.rows_match = native_rows == open_rows
    return result


# ---------------------------------------------------------------------------
# Table 8
# ---------------------------------------------------------------------------

@dataclass
class Table8Result:
    #: config -> (hit_ratio, mara_query_cost_s)
    configs: dict[str, tuple[float, float]] = field(default_factory=dict)
    lookups: int = 0


def table8_caching(r3: R3System) -> Table8Result:
    """Figure 5 / Table 8: buffering MARA in the application server.

    Cache sizes scale with the MARA table (the paper's 2 MB / 20 MB at
    SF=0.2 are ~20 % and ~200 % of MARA): the small cache thrashes, the
    large one holds the whole table.
    """
    mara = r3.db.catalog.table("mara")
    mara_bytes = mara.data_bytes
    configs = {
        "none": None,
        "small": max(int(mara_bytes * 0.2), 4096),
        "large": max(int(mara_bytes * 2.0), 8192),
    }
    result = Table8Result()
    # Baseline: the VBAP loop alone (subtracted per the paper's note).
    span = r3.measure()
    matnrs = r3.open_sql.select("SELECT matnr FROM vbap")
    for _row in matnrs.rows:
        r3.charge_abap(1)
    baseline_s = span.stop()
    result.lookups = len(matnrs.rows)

    for label, cache_bytes in configs.items():
        r3.buffers.deactivate("mara")
        if cache_bytes is not None:
            r3.buffers.configure("mara", cache_bytes)
        r3.db.buffer_pool.clear()
        span = r3.measure()
        rows = r3.open_sql.select("SELECT matnr FROM vbap")
        for (matnr,) in rows.rows:
            r3.charge_abap(1)
            r3.open_sql.select_single(
                "SELECT SINGLE * FROM mara WHERE matnr = :matnr",
                {"matnr": matnr},
            )
        elapsed = span.stop()
        stats = r3.buffers.stats("mara")
        hit_ratio = stats.hit_ratio if stats else 0.0
        result.configs[label] = (hit_ratio,
                                 max(elapsed - baseline_s, 0.0))
        r3.buffers.deactivate("mara")
    return result


# ---------------------------------------------------------------------------
# Table 9
# ---------------------------------------------------------------------------

def table9_warehouse(r3: R3System) -> dict[str, ExtractResult]:
    """Table 9: cost of reconstructing the original DB (3.0 system)."""
    return extract_all(r3)
