"""Result formatting: paper-style tables and paper-vs-measured views."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.clock import format_duration


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Monospace table renderer (right-aligned numeric columns)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def duration_cell(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    return format_duration(seconds)


def kb_cell(byte_count: int) -> str:
    return f"{byte_count // 1024:,}"


#: (metric name, printed label, 'count'|'duration') — the robustness
#: counters every fault-aware bench reports next to its timings.
#:
#: Error taxonomy behind the fault counters: *transient* errors
#: (``TransientError``: disk hiccups, connection drops, statement
#: timeouts, ``TornWriteError`` on a log tail) are retried or walked
#: past — the work survives; *permanent* errors (``PermanentError``:
#: ``WalCorruptionError`` mid-log, conversion errors) abort the
#: operation — retrying cannot help; ``SimulatedCrash`` is neither —
#: it kills the process, and no retry ladder may swallow it (only
#: ARIES recovery on reopen undoes its damage).
ROBUSTNESS_COUNTERS = [
    ("faults.disk_io_injected", "Disk I/O faults injected", "count"),
    ("faults.connection_drops_injected", "Connection drops injected",
     "count"),
    ("faults.crashes_injected", "Work-process crashes injected", "count"),
    ("disk.io_retries", "Disk retries", "count"),
    ("dbif.retries", "DBIF reconnect retries", "count"),
    ("dbif.backoff_s", "DBIF backoff charged", "duration"),
    ("dbif.statement_timeouts", "Statement timeouts", "count"),
    ("powertest.failures", "Power-test queries degraded", "count"),
    ("batchinput.checkpoints", "Checkpoints written", "count"),
    ("batchinput.checkpoint_overhead_s", "Checkpoint overhead", "duration"),
    ("batchinput.rollbacks", "Batch rollbacks", "count"),
    ("batchinput.journal_resumes", "Journal resumes", "count"),
    ("recovery.rows_rolled_back", "Rows rolled back", "count"),
    ("dispatcher.rejected", "Dispatcher admissions rejected", "count"),
    ("dispatcher.shed", "Dispatcher requests shed", "count"),
    ("dispatcher.shed_lowprio", "Low-priority requests shed", "count"),
    ("dispatcher.deadline_shed", "Queue-wait deadline sheds", "count"),
    ("dispatcher.requeued", "Crash requeues", "count"),
    ("dispatcher.wp_restarts", "Work processes restarted", "count"),
    ("dispatcher.queue_wait_s", "Dispatcher queue wait", "duration"),
    ("dbif.breaker.open", "Circuit breaker opened", "count"),
    ("dbif.breaker.fast_fails", "Breaker fast-fails", "count"),
    ("faults.torn_writes_injected", "Torn log writes injected", "count"),
    ("wal.commits", "WAL transactions committed", "count"),
    ("wal.autocommits", "WAL autocommitted mutations", "count"),
    ("wal.checkpoints", "Fuzzy checkpoints written", "count"),
    ("wal.checkpoint_pages", "Checkpoint pages flushed", "count"),
    ("wal.segments_rotated", "WAL segments rotated", "count"),
    ("wal.segments_truncated", "WAL segments truncated", "count"),
    ("recovery.runs", "ARIES recovery runs", "count"),
    ("recovery.redo_applied", "Redo records replayed", "count"),
    ("recovery.undo_applied", "Loser records undone", "count"),
    ("recovery.loser_txns", "Loser transactions", "count"),
    ("recovery.torn_tail_dropped", "Torn log tails dropped", "count"),
    ("recovery.time_s", "Recovery time", "duration"),
    ("cluster.server_crashes", "App servers crashed", "count"),
    ("cluster.server_rejoins", "App servers rejoined", "count"),
    ("cluster.sessions_rerouted", "Sticky sessions re-routed", "count"),
    ("cluster.ddlog_invalidations", "DDLOG invalidations appended",
     "count"),
    ("cluster.stale_reads_prevented", "Stale reads prevented by DDLOG",
     "count"),
    ("lsm.flushes", "LSM memtable flushes", "count"),
    ("lsm.flush_pages", "LSM pages flushed", "count"),
    ("lsm.compactions", "LSM compactions", "count"),
    ("lsm.compaction_pages", "LSM compaction pages", "count"),
    ("lsm.segment_reads", "LSM segment point reads", "count"),
    ("lsm.bloom_skips", "LSM bloom-filter skips", "count"),
    ("monitor.stat_records", "STAT records written", "count"),
    ("monitor.samples", "Monitor gauge samples", "count"),
    ("monitor.alerts_fired", "CCMS alerts fired", "count"),
    ("monitor.alerts_cleared", "CCMS alerts cleared", "count"),
    ("monitor.statements_dropped", "ST04 statements dropped", "count"),
]


def robustness_summary(metrics, title: str = "Robustness counters") -> str:
    """Fault/retry/checkpoint counters as a paper-style table.

    ``metrics`` is a :class:`~repro.sim.metrics.MetricsCollector` or a
    plain name→value mapping.  Zero counters are suppressed; an all-zero
    collector renders a single "no faults" line so a fault-free run is
    visibly fault-free rather than silent.
    """
    values = metrics.all() if hasattr(metrics, "all") else dict(metrics)
    rows: list[list[object]] = []
    for name, label, kind in ROBUSTNESS_COUNTERS:
        value = values.get(name, 0)
        if not value:
            continue
        if kind == "duration":
            rows.append([label, format_duration(value)])
        else:
            rows.append([label, f"{int(value):,}"])
    if not rows:
        rows.append(["(no faults injected, no retries, no checkpoints)",
                     "-"])
    return render_table(["Counter", "Value"], rows, title=title)


def ratio(a: float, b: float) -> float:
    """a / b with a guard for zero denominators."""
    if b == 0:
        return float("inf") if a > 0 else 1.0
    return a / b


def shape_report(
    measured: Mapping[str, float],
    paper: Mapping[str, float],
    baseline_measured: Mapping[str, float],
    baseline_paper: Mapping[str, float],
    names: Sequence[str],
) -> list[tuple[str, float, float]]:
    """Per-entry (name, measured ratio, paper ratio) vs a baseline.

    The reproduction's claim is that *ratios against the baseline*
    match the paper's, not absolute values.
    """
    out = []
    for name in names:
        out.append((
            name,
            ratio(measured[name], baseline_measured[name]),
            ratio(paper[name], baseline_paper[name]),
        ))
    return out
