"""Result formatting: paper-style tables and paper-vs-measured views."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.clock import format_duration


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Monospace table renderer (right-aligned numeric columns)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def duration_cell(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    return format_duration(seconds)


def kb_cell(byte_count: int) -> str:
    return f"{byte_count // 1024:,}"


def ratio(a: float, b: float) -> float:
    """a / b with a guard for zero denominators."""
    if b == 0:
        return float("inf") if a > 0 else 1.0
    return a / b


def shape_report(
    measured: Mapping[str, float],
    paper: Mapping[str, float],
    baseline_measured: Mapping[str, float],
    baseline_paper: Mapping[str, float],
    names: Sequence[str],
) -> list[tuple[str, float, float]]:
    """Per-entry (name, measured ratio, paper ratio) vs a baseline.

    The reproduction's claim is that *ratios against the baseline*
    match the paper's, not absolute values.
    """
    out = []
    for name in names:
        out.append((
            name,
            ratio(measured[name], baseline_measured[name]),
            ratio(paper[name], baseline_paper[name]),
        ))
    return out
