"""The TPC-D throughput test (the paper's footnote 1 deferral).

The paper ran only the power test; the TPC-D specification also
defines a *throughput* test: S query streams run concurrently, each
executing all 17 queries in a stream-specific permutation, while an
update stream applies UF1/UF2 pairs.  This extension implements it on
the simulator.

Concurrency model: the paper's configuration is a single machine whose
app server multiplexes users over a fixed work-process pool behind a
dispatcher queue — so the streams are scheduled *through* a simulated
:class:`~repro.r3.dispatcher.Dispatcher`.  Each stream is a closed
loop: it submits its next query as soon as the previous one resolves;
the dispatcher admits it (or rejects it at a full queue), rolls it
into a free work process and serves it on the shared simulated clock.
The spec's metric shape is reported as::

    throughput ~ (completed * 3600) / elapsed_seconds   [queries/hour]

With an unconstrained pool (the default: pool ≥ S, unbounded-enough
queue, zero roll costs) the schedule degenerates to exactly the fair
round-robin interleaving of the pre-dispatcher implementation — same
clock ticks, same per-query times.  Constrained pools add queue waits;
bounded queues add rejections; fault profiles add shed queries and
crash requeues — all recorded per stream in :class:`ThroughputResult`.

Interleaving is not a no-op: later streams find the buffer pool and
cursor cache warm, which is exactly the effect a throughput test adds
over S independent power tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.r3.dispatcher import (
    PRIORITY_UPDATE,
    Dispatcher,
    DispatcherConfig,
    Request,
)
from repro.r3.errors import DispatcherOverload

# The TPC-D ordering rules give each stream its own permutation; these
# are the spec's first eight (trimmed to Q1-Q17).  Streams beyond the
# eighth cycle through them with a per-cycle rotation (stream 8 runs
# permutation 0 rotated by one position, stream 16 by two, ...), so
# any stream count gets a distinct, deterministic ordering.
_STREAM_PERMUTATIONS = [
    [14, 2, 9, 17, 5, 7, 12, 8, 16, 13, 3, 6, 10, 15, 4, 11, 1],
    [1, 3, 13, 16, 10, 2, 15, 14, 17, 7, 8, 12, 6, 9, 11, 4, 5],
    [6, 17, 14, 16, 13, 10, 3, 15, 9, 11, 1, 8, 4, 7, 12, 2, 5],
    [8, 5, 4, 6, 17, 7, 1, 13, 16, 2, 15, 3, 10, 12, 14, 9, 11],
    [5, 3, 12, 14, 6, 17, 1, 15, 4, 9, 8, 16, 11, 2, 10, 13, 7],
    [15, 14, 6, 17, 9, 2, 4, 8, 5, 13, 12, 7, 1, 10, 16, 11, 3],
    [2, 8, 17, 1, 13, 11, 3, 4, 12, 16, 9, 6, 15, 14, 7, 10, 5],
    [13, 11, 2, 15, 8, 1, 12, 6, 16, 9, 14, 17, 10, 3, 5, 4, 7],
]


def stream_permutation(stream: int) -> list[int]:
    """The query ordering for ``stream`` (any non-negative index)."""
    if stream < 0:
        raise ValueError(f"stream must be >= 0: {stream}")
    base = _STREAM_PERMUTATIONS[stream % len(_STREAM_PERMUTATIONS)]
    cycle = stream // len(_STREAM_PERMUTATIONS)
    rotation = cycle % len(base)
    return base[rotation:] + base[:rotation]


@dataclass
class StreamStats:
    """Per-stream dispatcher accounting for one throughput run."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    requeued: int = 0
    queue_wait_s: float = 0.0

    @property
    def resolved(self) -> int:
        return self.completed + self.shed + self.rejected


@dataclass
class ThroughputResult:
    streams: int
    scale_factor: float
    elapsed_s: float
    #: (stream, query name) -> simulated service seconds (completed only)
    per_query: dict[tuple[int, str], float] = field(default_factory=dict)
    update_s: float = 0.0
    #: stream index -> dispatcher accounting
    per_stream: dict[int, StreamStats] = field(default_factory=dict)
    updates_submitted: int = 0
    updates_run: int = 0
    updates_shed: int = 0
    #: shed-reason class -> count (e.g. ``CircuitOpenError``)
    shed_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def queries_run(self) -> int:
        return len(self.per_query)

    @property
    def queries_per_hour(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf")
        return self.queries_run * 3600.0 / self.elapsed_s

    # -- dispatcher aggregates ----------------------------------------------

    @property
    def submitted(self) -> int:
        return sum(s.submitted for s in self.per_stream.values())

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.per_stream.values())

    @property
    def shed(self) -> int:
        return sum(s.shed for s in self.per_stream.values())

    @property
    def rejected(self) -> int:
        return sum(s.rejected for s in self.per_stream.values())

    @property
    def requeued(self) -> int:
        return sum(s.requeued for s in self.per_stream.values())

    @property
    def queue_wait_s(self) -> float:
        return sum(s.queue_wait_s for s in self.per_stream.values())

    def conservation_ok(self) -> bool:
        """No query lost, none double-counted: per stream and overall,
        submitted == completed + shed + rejected (and likewise for the
        update stream)."""
        for stats in self.per_stream.values():
            if stats.submitted != stats.resolved:
                return False
        if self.completed != self.queries_run:
            return False
        return self.updates_submitted == self.updates_run + self.updates_shed

    def stream_elapsed(self, stream: int) -> float:
        return sum(
            seconds for (s, _name), seconds in self.per_query.items()
            if s == stream
        )

    def stream_queue_wait(self, stream: int) -> float:
        return self.per_stream[stream].queue_wait_s


def run_throughput_test(
    r3,
    suite: dict[int, object],
    streams: int = 2,
    update_sets: list[tuple] | None = None,
    dispatcher: Dispatcher | DispatcherConfig | None = None,
) -> ThroughputResult:
    """Run ``streams`` query streams through the dispatcher.

    ``suite`` is a report suite from e.g. ``open30.make_queries(sf)``.
    ``update_sets`` is a list of ``(refresh_data, delete_orderkeys)``
    pairs (one distinct pair per update-stream slot, as the spec
    requires); one pair is submitted — at low priority, sheddable
    under queue pressure — after each full round of resolved dialog
    steps.

    ``dispatcher`` may be a ready :class:`Dispatcher`, a
    :class:`DispatcherConfig`, or ``None`` for the identity-preserving
    unconstrained default (pool ≥ S, zero roll costs: tick-for-tick
    the old round-robin schedule).
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1: {streams}")
    if dispatcher is None:
        disp = Dispatcher(r3, DispatcherConfig.unconstrained(streams))
    elif isinstance(dispatcher, DispatcherConfig):
        disp = Dispatcher(r3, dispatcher)
    else:
        disp = dispatcher
    result = ThroughputResult(streams=streams, scale_factor=0.0,
                              elapsed_s=0.0)
    result.per_stream = {s: StreamStats() for s in range(streams)}
    permutations = [stream_permutation(s) for s in range(streams)]
    length = len(permutations[0])
    positions = [0] * streams
    waiting = [False] * streams
    pending_updates = list(update_sets or [])
    updates_taken = 0
    resolved_steps = 0

    def note_shed(reason: str | None) -> None:
        key = (reason or "unknown").split(":")[0].strip()
        result.shed_reasons[key] = result.shed_reasons.get(key, 0) + 1

    def query_request(stream: int) -> Request:
        number = permutations[stream][positions[stream]]
        return Request(stream=stream, label=f"Q{number}",
                       fn=lambda n=number: suite[n](r3))

    def update_request(index: int, pair: tuple) -> Request:
        refresh, doomed = pair

        def body() -> None:
            from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap

            if refresh is not None:
                run_uf1_sap(r3, refresh)
            if doomed:
                run_uf2_sap(r3, doomed)

        return Request(stream=-1, label=f"UF-pair-{index}", fn=body,
                       priority=PRIORITY_UPDATE)

    total_span = r3.measure()
    while True:
        # 1. Submission: every idle stream offers its next query.  A
        # rejected query resolves on the spot (the "user" moves on);
        # one attempt per stream per round bounds the reject rate.
        for stream in range(streams):
            if waiting[stream] or positions[stream] >= length:
                continue
            stats = result.per_stream[stream]
            stats.submitted += 1
            try:
                disp.submit(query_request(stream))
                waiting[stream] = True
            except DispatcherOverload:
                stats.rejected += 1
                positions[stream] += 1
                resolved_steps += 1
        # 2. Dispatch: roll queued requests into idle work processes.
        for comp in disp.dispatch_round():
            request = comp.request
            if request.stream < 0:
                if comp.kind == "completed":
                    result.updates_run += 1
                    result.update_s += comp.service_s
                elif comp.kind == "shed":
                    result.updates_shed += 1
                    note_shed(comp.reason)
                continue  # "requeued" stays in the queue
            stats = result.per_stream[request.stream]
            if comp.kind == "requeued":
                stats.requeued += 1
                continue
            stats.queue_wait_s += comp.queue_wait_s
            if comp.kind == "completed":
                stats.completed += 1
                result.per_query[(request.stream, request.label)] = \
                    comp.service_s
            else:
                stats.shed += 1
                note_shed(comp.reason)
            positions[request.stream] += 1
            waiting[request.stream] = False
            resolved_steps += 1
        # 3. Update slot: after each full round of resolved dialog
        # steps the update stream gets one (sheddable) slot.
        if pending_updates and updates_taken < resolved_steps // streams:
            pair = pending_updates.pop(0)
            req = update_request(updates_taken, pair)
            updates_taken += 1
            result.updates_submitted += 1
            try:
                disp.submit(req)
            except DispatcherOverload as exc:
                result.updates_shed += 1
                note_shed(f"admission {type(exc).__name__}")
        # 4. Done when every stream ran dry and the queue drained.
        if disp.queue_depth == 0 \
                and all(pos >= length for pos in positions):
            break
    r3.monitor.finish()
    result.elapsed_s = total_span.stop()
    return result


# -- multi-app-server scheduling ------------------------------------------


@dataclass
class _ClusterRequest(Request):
    """A request whose body is parameterized by the serving app server.

    The balancer binds ``fn`` to the routed server at submission; when
    an app-server crash drains the request back to the balancer, the
    re-route re-binds ``body`` to the surviving server (the queued step
    never rolled in, so re-binding is idempotent).
    """

    body: Callable[[object], object] | None = None

    def bind(self, server) -> "_ClusterRequest":
        body = self.body
        self.fn = lambda: body(server)
        return self


@dataclass
class ClusterThroughputResult(ThroughputResult):
    """Throughput-test result plus cluster-level accounting."""

    n_servers: int = 1
    routing: str = "round_robin"
    sync_period_s: float | None = None
    #: server name -> dialog steps completed there
    per_server_completed: dict[str, int] = field(default_factory=dict)
    kills: int = 0
    rejoins: int = 0
    sessions_rerouted: int = 0
    #: worst staleness bound any buffered read was served under
    max_read_staleness_s: float = 0.0
    #: cluster-wide current-generation buffer hit ratio
    buffer_quality: float | None = None


def run_cluster_throughput_test(
    cluster,
    suite: dict[int, object],
    streams: int = 2,
    update_sets: list[tuple] | None = None,
    dispatcher: DispatcherConfig | None = None,
    failover: list | None = None,
) -> ClusterThroughputResult:
    """Run ``streams`` query streams across the cluster's app servers.

    Each stream is one logged-in session: every submission asks the
    login balancer for a server (``sticky`` keeps going back; the
    update stream is its own session) and the step runs through that
    server's dispatcher, buffers and DBIF — all servers share one
    engine and one simulated clock, so the schedule is deterministic.

    ``dispatcher`` is one :class:`DispatcherConfig` instantiated *per
    server* (``None`` = the identity-preserving unconstrained config).
    ``failover`` is a list of :class:`~repro.r3.cluster.ServerKill`
    events, processed at round boundaries: a kill drains the dead
    server's queue back through the balancer (each drained step spends
    one unit of its crash-requeue budget), a rejoin charges the
    restart time and cold-starts the server.

    With one server and coherence disabled the schedule is
    tick-identical to :func:`run_throughput_test` (pinned by
    regression test).
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1: {streams}")
    servers = cluster.servers
    config = dispatcher or DispatcherConfig.unconstrained(streams)
    disps = [Dispatcher(server, config) for server in servers]
    index_of = {server.name: i for i, server in enumerate(servers)}
    balancer = cluster.balancer
    events = list(failover or [])
    result = ClusterThroughputResult(
        streams=streams, scale_factor=0.0, elapsed_s=0.0,
        n_servers=len(servers), routing=balancer.policy,
        sync_period_s=cluster.sync_period_s)
    result.per_stream = {s: StreamStats() for s in range(streams)}
    result.per_server_completed = {server.name: 0 for server in servers}
    permutations = [stream_permutation(s) for s in range(streams)]
    length = len(permutations[0])
    positions = [0] * streams
    waiting = [False] * streams
    pending_updates = list(update_sets or [])
    updates_taken = 0
    resolved_steps = 0
    clock = cluster.clock

    def note_shed(reason: str | None) -> None:
        key = (reason or "unknown").split(":")[0].strip()
        result.shed_reasons[key] = result.shed_reasons.get(key, 0) + 1

    def resolve_shed(request: Request, reason: str) -> None:
        """A drained request that cannot be re-routed is shed."""
        note_shed(reason)
        if request.stream < 0:
            result.updates_shed += 1
            return
        stats = result.per_stream[request.stream]
        stats.shed += 1
        positions[request.stream] += 1
        waiting[request.stream] = False
        nonlocal resolved_steps
        resolved_steps += 1

    def query_request(stream: int) -> _ClusterRequest:
        number = permutations[stream][positions[stream]]
        return _ClusterRequest(stream=stream, label=f"Q{number}", fn=None,
                               body=suite[number])

    def update_request(index: int, pair: tuple) -> _ClusterRequest:
        refresh, doomed = pair

        def body(server) -> None:
            from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap

            if refresh is not None:
                run_uf1_sap(server, refresh)
            if doomed:
                run_uf2_sap(server, doomed)

        return _ClusterRequest(stream=-1, label=f"UF-pair-{index}",
                               fn=None, priority=PRIORITY_UPDATE, body=body)

    def session_of(request: Request):
        return "update-stream" if request.stream < 0 else request.stream

    def process_failover() -> None:
        # Event times are relative to the start of the run (the shared
        # clock already carries the load/upgrade time).
        for event in events:
            if not event.killed and clock.now - start_t >= event.at_s \
                    and servers[event.server].up:
                cluster.kill(event.server)
                event.killed = True
                event.kill_t = clock.now
                result.kills += 1
                for request in disps[event.server].drain():
                    request.requeues += 1
                    if request.requeues > config.max_requeues:
                        cluster.metrics.count("dispatcher.shed")
                        resolve_shed(
                            request,
                            f"requeue budget exhausted at "
                            f"{servers[event.server].name} crash")
                        continue
                    age = request.submitted_at
                    target = balancer.route(session_of(request))
                    try:
                        disps[index_of[target.name]].submit(
                            request.bind(target))
                    except DispatcherOverload:
                        resolve_shed(
                            request,
                            "failover overflow: surviving queue full")
                        continue
                    # The step keeps its original queue age across the
                    # re-route — the user has been waiting since then.
                    request.submitted_at = age
                    cluster.metrics.count("dispatcher.requeued")
                    if request.stream >= 0:
                        result.per_stream[request.stream].requeued += 1
            elif event.killed and not event.rejoined \
                    and event.rejoin_after_s is not None \
                    and clock.now >= event.kill_t + event.rejoin_after_s:
                cluster.rejoin(event.server)
                event.rejoined = True
                result.rejoins += 1

    start_t = clock.now
    total_span = cluster.primary.measure()
    while True:
        if events:
            process_failover()
        # 1. Submission: every idle stream logs its next query in at
        # the balancer-routed server.
        for stream in range(streams):
            if waiting[stream] or positions[stream] >= length:
                continue
            stats = result.per_stream[stream]
            stats.submitted += 1
            server = balancer.route(stream)
            try:
                disps[index_of[server.name]].submit(
                    query_request(stream).bind(server))
                waiting[stream] = True
            except DispatcherOverload:
                stats.rejected += 1
                positions[stream] += 1
                resolved_steps += 1
        # 2. Dispatch: every healthy server rolls its queue into its
        # own work-process pool, in server order on the shared clock.
        for index, server in enumerate(servers):
            if not server.up:
                continue
            for comp in disps[index].dispatch_round():
                request = comp.request
                if request.stream < 0:
                    if comp.kind == "completed":
                        result.updates_run += 1
                        result.update_s += comp.service_s
                    elif comp.kind == "shed":
                        result.updates_shed += 1
                        note_shed(comp.reason)
                    continue  # "requeued" stays in the queue
                stats = result.per_stream[request.stream]
                if comp.kind == "requeued":
                    stats.requeued += 1
                    continue
                stats.queue_wait_s += comp.queue_wait_s
                if comp.kind == "completed":
                    stats.completed += 1
                    result.per_server_completed[server.name] += 1
                    result.per_query[(request.stream, request.label)] = \
                        comp.service_s
                else:
                    stats.shed += 1
                    note_shed(comp.reason)
                positions[request.stream] += 1
                waiting[request.stream] = False
                resolved_steps += 1
        # 3. Update slot: one (sheddable) low-priority UF pair per full
        # round of resolved dialog steps, as its own balancer session.
        if pending_updates and updates_taken < resolved_steps // streams:
            pair = pending_updates.pop(0)
            request = update_request(updates_taken, pair)
            updates_taken += 1
            result.updates_submitted += 1
            server = balancer.route(session_of(request))
            try:
                disps[index_of[server.name]].submit(request.bind(server))
            except DispatcherOverload as exc:
                result.updates_shed += 1
                note_shed(f"admission {type(exc).__name__}")
        # 4. Done when every stream ran dry and every queue drained.
        if all(disp.queue_depth == 0 for disp in disps) \
                and all(pos >= length for pos in positions):
            break
    # Rejoins scheduled beyond the workload's end still happen: the
    # cluster idles (simulated time passes) until the restart window.
    for event in events:
        if event.killed and not event.rejoined \
                and event.rejoin_after_s is not None:
            target_t = event.kill_t + event.rejoin_after_s
            if clock.now < target_t:
                clock.charge(target_t - clock.now)
            cluster.rejoin(event.server)
            event.rejoined = True
            result.rejoins += 1
    cluster.monitor.finish()
    result.elapsed_s = total_span.stop()
    result.sessions_rerouted = balancer.sessions_rerouted
    result.max_read_staleness_s = cluster.max_read_staleness_s
    result.buffer_quality = cluster.buffer_quality()
    return result
