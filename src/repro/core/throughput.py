"""The TPC-D throughput test (the paper's footnote 1 deferral).

The paper ran only the power test; the TPC-D specification also
defines a *throughput* test: S query streams run concurrently, each
executing all 17 queries in a stream-specific permutation, while an
update stream applies UF1/UF2 pairs.  This extension implements it on
the simulator.

Concurrency model: the paper's configuration is a single machine, so
streams time-share it.  The simulated clock is serial; we interleave
the streams query-by-query (round-robin), which is what a fair
scheduler converges to, and report the spec's metric shape::

    throughput ~ (S * 17 * 3600) / elapsed_seconds   [queries/hour]

Interleaving is not a no-op: later streams find the buffer pool and
cursor cache warm, which is exactly the effect a throughput test adds
over S independent power tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# The TPC-D ordering rules give each stream its own permutation; these
# are the spec's first eight (trimmed to Q1-Q17).
_STREAM_PERMUTATIONS = [
    [14, 2, 9, 17, 5, 7, 12, 8, 16, 13, 3, 6, 10, 15, 4, 11, 1],
    [1, 3, 13, 16, 10, 2, 15, 14, 17, 7, 8, 12, 6, 9, 11, 4, 5],
    [6, 17, 14, 16, 13, 10, 3, 15, 9, 11, 1, 8, 4, 7, 12, 2, 5],
    [8, 5, 4, 6, 17, 7, 1, 13, 16, 2, 15, 3, 10, 12, 14, 9, 11],
    [5, 3, 12, 14, 6, 17, 1, 15, 4, 9, 8, 16, 11, 2, 10, 13, 7],
    [15, 14, 6, 17, 9, 2, 4, 8, 5, 13, 12, 7, 1, 10, 16, 11, 3],
    [2, 8, 17, 1, 13, 11, 3, 4, 12, 16, 9, 6, 15, 14, 7, 10, 5],
    [13, 11, 2, 15, 8, 1, 12, 6, 16, 9, 14, 17, 10, 3, 5, 4, 7],
]


@dataclass
class ThroughputResult:
    streams: int
    scale_factor: float
    elapsed_s: float
    #: (stream, query name) -> simulated seconds
    per_query: dict[tuple[int, str], float] = field(default_factory=dict)
    update_s: float = 0.0

    @property
    def queries_run(self) -> int:
        return len(self.per_query)

    @property
    def queries_per_hour(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf")
        return self.queries_run * 3600.0 / self.elapsed_s

    def stream_elapsed(self, stream: int) -> float:
        return sum(
            seconds for (s, _name), seconds in self.per_query.items()
            if s == stream
        )


def run_throughput_test(
    r3,
    suite: dict[int, object],
    streams: int = 2,
    update_sets: list[tuple] | None = None,
) -> ThroughputResult:
    """Run ``streams`` interleaved query streams on one SAP system.

    ``suite`` is a report suite from e.g. ``open30.make_queries(sf)``.
    ``update_sets`` is a list of ``(refresh_data, delete_orderkeys)``
    pairs (one distinct pair per update-stream slot, as the spec
    requires); a pair is consumed after each full round-robin round.
    """
    if not 1 <= streams <= len(_STREAM_PERMUTATIONS):
        raise ValueError(
            f"streams must be 1..{len(_STREAM_PERMUTATIONS)}"
        )
    result = ThroughputResult(streams=streams, scale_factor=0.0,
                              elapsed_s=0.0)
    pending_updates = list(update_sets or [])
    positions = [0] * streams
    total_span = r3.measure()
    step = 0
    while any(pos < 17 for pos in positions):
        stream = step % streams
        step += 1
        pos = positions[stream]
        if pos >= 17:
            continue
        number = _STREAM_PERMUTATIONS[stream][pos]
        span = r3.measure()
        suite[number](r3)
        result.per_query[(stream, f"Q{number}")] = span.stop()
        positions[stream] += 1
        # After each full round, the update stream gets a slot.
        if pending_updates and step % streams == 0:
            from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap

            refresh, doomed = pending_updates.pop(0)
            span = r3.measure()
            if refresh is not None:
                run_uf1_sap(r3, refresh)
            if doomed:
                run_uf2_sap(r3, doomed)
            result.update_s += span.stop()
    result.elapsed_s = total_span.stop()
    return result
