"""The paper's published numbers, transcribed for shape comparison.

All durations in seconds; all sizes in KB, exactly as printed in the
paper.  EXPERIMENTS.md and the shape tests compare reproduced ratios
(not absolute values) against these.
"""

from __future__ import annotations

QUERIES = [f"Q{n}" for n in range(1, 18)]
UPDATES = ["UF1", "UF2"]

# ---------------------------------------------------------------------------
# Table 2: database sizes in KB (data, indexes)
# ---------------------------------------------------------------------------

TABLE2_ORIGINAL_KB = {
    "REGION": (16, 0), "NATION": (16, 0), "SUPPLIER": (451, 120),
    "PART": (6144, 1792), "PARTSUPP": (32310, 5275),
    "CUSTOMER": (7929, 1463), "ORDER": (52578, 21312),
    "LINEITEM": (171704, 72860),
}
TABLE2_SAP_KB = {
    "REGION": (320, 400), "NATION": (400, 400), "SUPPLIER": (2127, 1884),
    "PART": (79485, 83525), "PARTSUPP": (102045, 44455),
    "CUSTOMER": (37805, 26355), "ORDER": (399190, 125243),
    "LINEITEM": (2191844, 558746),
}
TABLE2_TOTAL_ORIGINAL_KB = (271139, 102822)
TABLE2_TOTAL_SAP_KB = (2813216, 841008)

# ---------------------------------------------------------------------------
# Table 3: batch-input loading times (two parallel processes), seconds
# ---------------------------------------------------------------------------

TABLE3_LOADING_S = {
    "SUPPLIER": 18 * 60,
    "PART": 15 * 3600 + 56 * 60,
    "PARTSUPP": 30 * 3600 + 24 * 60,
    "CUSTOMER": 7 * 3600 + 33 * 60,
    "ORDER+LINEITEM": 25 * 86400 + 19 * 3600 + 55 * 60,
}

# ---------------------------------------------------------------------------
# Tables 4 and 5: TPC-D power test, seconds per query
# ---------------------------------------------------------------------------

TABLE4_22G_S = {
    "rdbms": {
        "Q1": 317, "Q2": 34, "Q3": 355, "Q4": 181, "Q5": 1273, "Q6": 78,
        "Q7": 302, "Q8": 164, "Q9": 554, "Q10": 300, "Q11": 5,
        "Q12": 179, "Q13": 8, "Q14": 301, "Q15": 226, "Q16": 900,
        "Q17": 14, "UF1": 119, "UF2": 108,
    },
    "native": {
        "Q1": 8096, "Q2": 76, "Q3": 1182, "Q4": 432, "Q5": 1325,
        "Q6": 502, "Q7": 2353, "Q8": 962, "Q9": 2166, "Q10": 1362,
        "Q11": 122, "Q12": 2195, "Q13": 21, "Q14": 553, "Q15": 744,
        "Q16": 536, "Q17": 552, "UF1": 2666, "UF2": 529,
    },
    "open": {
        "Q1": 8133, "Q2": 199, "Q3": 11577, "Q4": 511, "Q5": 4102,
        "Q6": 652, "Q7": 2311, "Q8": 1706, "Q9": 9096, "Q10": 1541,
        "Q11": 115, "Q12": 4645, "Q13": 23, "Q14": 687, "Q15": 1158,
        "Q16": 509, "Q17": 727, "UF1": 2666, "UF2": 529,
    },
}

TABLE5_30E_S = {
    "rdbms": {
        "Q1": 369, "Q2": 53, "Q3": 243, "Q4": 105, "Q5": 399, "Q6": 80,
        "Q7": 543, "Q8": 114, "Q9": 522, "Q10": 318, "Q11": 5,
        "Q12": 195, "Q13": 8, "Q14": 383, "Q15": 205, "Q16": 804,
        "Q17": 11, "UF1": 100, "UF2": 108,
    },
    "native": {
        "Q1": 3539, "Q2": 189, "Q3": 542, "Q4": 378, "Q5": 882,
        "Q6": 448, "Q7": 1385, "Q8": 1144, "Q9": 1893, "Q10": 1986,
        "Q11": 277, "Q12": 588, "Q13": 19, "Q14": 625, "Q15": 831,
        "Q16": 196, "Q17": 110, "UF1": 6414, "UF2": 695,
    },
    "open": {
        "Q1": 3378, "Q2": 34, "Q3": 711, "Q4": 398, "Q5": 2247,
        "Q6": 846, "Q7": 1764, "Q8": 997, "Q9": 4034, "Q10": 3469,
        "Q11": 143, "Q12": 576, "Q13": 25, "Q14": 1314, "Q15": 1711,
        "Q16": 202, "Q17": 133, "UF1": 6414, "UF2": 695,
    },
}

# ---------------------------------------------------------------------------
# Table 6: one-table query with an index on quantity, seconds
# ---------------------------------------------------------------------------

TABLE6_S = {
    ("native", "high"): 1, ("native", "low"): 296,
    ("open", "high"): 1, ("open", "low"): 6602,
}

# ---------------------------------------------------------------------------
# Table 7: grouping with a complex aggregation, seconds
# ---------------------------------------------------------------------------

TABLE7_S = {"native": 251, "open": 828}

# ---------------------------------------------------------------------------
# Table 8: table-buffer effectiveness (hit ratio, cost in seconds)
# ---------------------------------------------------------------------------

TABLE8 = {
    "none": (0.00, 6514),
    "small": (0.11, 6651),
    "large": (0.85, 2141),
}

# ---------------------------------------------------------------------------
# Table 9: warehouse extraction, seconds
# ---------------------------------------------------------------------------

TABLE9_S = {
    "REGION": 13, "NATION": 4, "SUPPLIER": 41, "PART": 751,
    "PARTSUPP": 668, "CUSTOMER": 355, "ORDER": 3451, "LINEITEM": 16622,
}
TABLE9_TOTAL_S = 21905


def total(table: dict[str, float], queries_only: bool = False) -> float:
    names = QUERIES if queries_only else QUERIES + UPDATES
    return sum(table[name] for name in names)
