"""Calibration of the simulated cost model.

Every constant the reproduction uses lives in
:class:`repro.sim.params.SimParams`; this module documents the
calibration and provides the canonical instances.

Calibration philosophy
----------------------

The paper's absolute numbers come from a 1996 SPARCstation 20 with
four to five SCSI disks.  We do not chase absolute seconds; we pick
constants of the right *order* for that hardware class and verify that
the reproduced shapes (who wins, by what factor, where crossovers sit)
are insensitive to the exact values.  ``perturbed()`` exists so tests
can check that robustness mechanically: doubling or halving any single
constant must not flip any of the paper's qualitative conclusions.

The constants and their anchors:

=====================  =========  =========================================
constant               value      anchor
=====================  =========  =========================================
seq_read_s             1.5 ms     ~5 MB/s sequential SCSI at 8 KB pages
random_read_s          12 ms      seek + rotational latency, mid-90s disk
write_s                10 ms      write incl. positioning
tuple_cpu_s            20 µs      60 MHz SuperSPARC, interpreted row ops
roundtrip_s            2 ms       local IPC + SQL layer per DB call
ship_tuple_s           40 µs      row marshalling app server <-> RDBMS
abap_row_s             120 µs     interpreted ABAP statement dispatch
pool_decode_s          100 µs     VARDATA decode per logical row
screen_s               120 ms     one Dynpro round trip
batch_record_overhead  250 ms     transaction machinery per record
=====================  =========  =========================================
"""

from __future__ import annotations

from dataclasses import replace

from repro.sim.params import SimParams


def paper_calibrated_params() -> SimParams:
    """The calibrated constants (currently SimParams defaults)."""
    return SimParams()


def perturbed(factor: float, field_name: str | None = None) -> SimParams:
    """A perturbed parameter set for robustness tests.

    With ``field_name`` set, only that constant is scaled; otherwise
    every time constant is scaled by ``factor`` (a pure clock-speed
    change, which must leave all ratios identical).
    """
    params = SimParams()
    time_fields = [
        "seq_read_s", "random_read_s", "write_s", "buffer_hit_s",
        "tuple_cpu_s", "index_traverse_s", "sort_cmp_s", "plan_cpu_s",
        "roundtrip_s",
        "ship_tuple_s", "ship_byte_s", "abap_row_s", "abap_extract_s",
        "pool_decode_s", "cache_lookup_s", "cache_insert_s", "screen_s",
        "batch_record_overhead_s", "commit_s",
    ]
    if field_name is not None:
        if field_name not in time_fields:
            raise ValueError(f"unknown time constant {field_name}")
        return replace(params,
                       **{field_name: getattr(params, field_name) * factor})
    return replace(params, **{
        name: getattr(params, name) * factor for name in time_fields
    })
