"""Loading the TPC-D data into SAP R/3.

Two paths:

* :func:`load_sap_batch_input` — the paper's path (Table 3): every
  record goes through the batch-input facility with screen simulation,
  consistency checks and tuple-at-a-time inserts.  Region and nation
  are "typed in interactively" as in the paper (they have 5 and 25
  rows), which we model as direct inserts.
* :func:`load_sap_fast` — a simulator convenience for setting up query
  experiments without paying the month-long load each time; it uses
  the bulk write path and is *not* something SAP R/3 offers (the
  absence of exactly this path is the paper's Table 3 finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.r3.appserver import R3System, R3Version
from repro.r3.batchinput import (
    BatchInputSession,
    BatchTransaction,
    LoadJournal,
    effective_parallel_time,
)
from repro.sapschema import mapping
from repro.sapschema.tables import activate_sap_schema
from repro.sapschema.views import create_sap_join_views
from repro.tpcd.dbgen import TpcdData


@dataclass
class LoadTimings:
    """Per-TPC-D-entity batch-input load times (paper Table 3)."""

    processes: int = 2
    elapsed: dict[str, float] = field(default_factory=dict)

    def effective(self, entity: str) -> float:
        return effective_parallel_time(self.elapsed[entity],
                                       self.processes)


def _check(table: str, conditions: str, host_vars: dict) -> tuple[str, dict]:
    fields = "*"
    return (f"SELECT SINGLE {fields} FROM {table} WHERE {conditions}",
            host_vars)


def supplier_transactions(data: TpcdData):
    rows = mapping.supplier_rows(data)
    for lfa1, stxl in zip(rows["lfa1"], rows["stxl"]):
        land1 = lfa1[3]
        yield BatchTransaction(
            screens=3,
            checks=[_check("t005", "land1 = :land1", {"land1": land1})],
            inserts=[("lfa1", lfa1), ("stxl", stxl)],
        )


def part_transactions(data: TpcdData):
    rows = mapping.part_rows(data)
    for mara, makt, a004, konp, ausp, stxl in zip(
            rows["mara"], rows["makt"], rows["a004"], rows["konp"],
            rows["ausp"], rows["stxl"]):
        yield BatchTransaction(
            screens=4,
            inserts=[("mara", mara), ("makt", makt), ("a004", a004),
                     ("konp", konp), ("ausp", ausp), ("stxl", stxl)],
        )


def partsupp_transactions(data: TpcdData):
    rows = mapping.partsupp_rows(data)
    for eina, eine in zip(rows["eina"], rows["eine"]):
        matnr, lifnr = eina[1], eina[2]
        yield BatchTransaction(
            screens=3,
            checks=[
                _check("mara", "matnr = :matnr", {"matnr": matnr}),
                _check("lfa1", "lifnr = :lifnr", {"lifnr": lifnr}),
            ],
            inserts=[("eina", eina), ("eine", eine)],
        )


def customer_transactions(data: TpcdData):
    rows = mapping.customer_rows(data)
    for kna1, stxl in zip(rows["kna1"], rows["stxl"]):
        land1 = kna1[3]
        yield BatchTransaction(
            screens=3,
            checks=[_check("t005", "land1 = :land1", {"land1": land1})],
            inserts=[("kna1", kna1), ("stxl", stxl)],
        )


def order_transactions(data: TpcdData):
    """Orders + lineitems load jointly (one transaction per document)."""
    for document in mapping.order_documents(data):
        checks = [
            _check("kna1", "kunnr = :kunnr",
                   {"kunnr": mapping.KeyCodec.kunnr(document.custkey)}),
        ]
        for partkey in document.partkeys:
            checks.append(_check(
                "mara", "matnr = :matnr",
                {"matnr": mapping.KeyCodec.matnr(partkey)},
            ))
        inserts = [("vbak", document.vbak)]
        inserts.extend(("vbap", row) for row in document.vbap)
        inserts.extend(("vbep", row) for row in document.vbep)
        inserts.extend(("stxl", row) for row in document.stxl)
        yield BatchTransaction(
            screens=2 + len(document.vbap),
            checks=checks,
            inserts=inserts,
            cluster_inserts=[("konv", document.konv_key,
                              document.konv_rows)],
        )


def _load_tiny_master_data(r3: R3System, data: TpcdData) -> None:
    """Region/nation entered 'interactively' (5 + 25 records)."""
    for table, rows in {**mapping.region_rows(data),
                        **mapping.nation_rows(data)}.items():
        for row in rows:
            r3.insert_logical(table, row)


LOAD_PHASES = [
    ("SUPPLIER", supplier_transactions),
    ("PART", part_transactions),
    ("PARTSUPP", partsupp_transactions),
    ("CUSTOMER", customer_transactions),
    ("ORDER+LINEITEM", order_transactions),
]


def load_sap_batch_input(r3: R3System, data: TpcdData,
                         processes: int = 2,
                         commit_interval: int | None = None,
                         journal: LoadJournal | None = None,
                         timings: LoadTimings | None = None) -> LoadTimings:
    """The paper's load: batch input for everything but region/nation.

    With ``commit_interval`` set (and a ``journal``, created on demand)
    the load checkpoints every N transactions and becomes crash
    recoverable: if a :class:`~repro.r3.errors.WorkProcessCrash` (or
    any other error) aborts it, calling this function again with the
    *same* ``r3``/``journal``/``timings`` resumes from the last
    checkpoint — schema activation and committed transactions are
    skipped, uncommitted rows were already rolled back, so the finished
    load is row-identical to a fault-free one.  Per-entity ``timings``
    accumulate across crash/resume rounds.
    """
    if journal is None and commit_interval is not None:
        journal = LoadJournal()
    if journal is None or not journal.setup_done:
        # With engine durability on, setup (schema DDL + tiny master
        # data) is one engine transaction: a crash inside it undoes
        # everything, so resume re-runs it from scratch — no partially
        # activated schema can ever be journalled as done.
        durable = r3.db.wal is not None and not r3.db.wal.dead
        if durable and not r3.db.wal.in_txn:
            r3.db.begin()
        activate_sap_schema(r3)
        create_sap_join_views(r3)
        _load_tiny_master_data(r3, data)
        if journal is not None:
            journal.setup_done = True
        if durable and r3.db.wal.in_txn:
            r3.db.commit(
                journal=journal.to_wire() if journal is not None else None
            )
    timings = timings or LoadTimings(processes=processes)
    session = BatchInputSession(r3, commit_interval=commit_interval,
                                journal=journal)
    for entity, generator in LOAD_PHASES:
        span = r3.measure()
        try:
            session.run_phase(entity, generator(data))
        finally:
            # Crash mid-phase: bank the partial time so resumed rounds
            # accumulate into the same per-entity totals.
            timings.elapsed[entity] = (
                timings.elapsed.get(entity, 0.0) + span.stop()
            )
    r3.db.analyze()
    return timings


def recover_sap_system(store, version: R3Version = R3Version.V22,
                       params=None, degree: int = 1):
    """Reopen a crashed durable store as a ready-to-resume R/3 system.

    Composes the two recovery layers the crash-fuzz harness exercises:

    1. **Engine recovery** — :meth:`~repro.engine.database.Database.open`
       runs the ARIES passes (analysis/redo/undo) over the store's log
       and checkpoint image.
    2. **App-tier reconstruction** — a fresh :class:`R3System` attaches
       to the recovered engine; the data dictionary, pool/cluster
       registries and table buffers are app-server memory and died with
       the process, so schema activation re-runs idempotently against
       the recovered catalog.  The batch-input
       :class:`~repro.r3.batchinput.LoadJournal` is rebuilt from the
       committed journal history (walking past torn records).

    Returns ``(r3, journal, report)``; pass ``r3`` and ``journal`` back
    into :func:`load_sap_batch_input` to resume the load.
    """
    from repro.engine.database import Database

    db, report = Database.open(store, params=params, degree=degree)
    r3 = R3System(version=version, database=db)
    journal = LoadJournal.recover(report.app_journal_history)
    if journal.setup_done:
        # Schema is durably committed: repopulate the app-tier DDIC and
        # container registries without issuing engine DDL — the
        # recovered catalog already carries every table/index that
        # should exist (including the effect of post-setup drops).
        activate_sap_schema(r3, engine_ddl=False)
        create_sap_join_views(r3)
        # Reconcile conversion state: a table the dictionary knows as
        # pool/cluster but that exists transparently in the recovered
        # engine was converted (the 3.0 upgrade) before the crash.
        for name in list(r3.ddic.tables):
            entry = r3.ddic.tables[name]
            if entry.encapsulated and db.catalog.has_table(name):
                r3.ddic.convert_to_transparent(name)
    return r3, journal, report


def load_sap_fast(r3: R3System, data: TpcdData,
                  analyze: bool = True) -> None:
    """Bulk-path load for experiment setup (simulator convenience)."""
    activate_sap_schema(r3)
    create_sap_join_views(r3)
    _load_tiny_master_data(r3, data)
    for table, rows in mapping.supplier_rows(data).items():
        for row in rows:
            r3.insert_logical(table, row, bulk=True)
    for loader in (mapping.part_rows, mapping.partsupp_rows,
                   mapping.customer_rows):
        for table, rows in loader(data).items():
            for row in rows:
                r3.insert_logical(table, row, bulk=True)
    for document in mapping.order_documents(data):
        r3.insert_logical("vbak", document.vbak, bulk=True)
        for row in document.vbap:
            r3.insert_logical("vbap", row, bulk=True)
        for row in document.vbep:
            r3.insert_logical("vbep", row, bulk=True)
        for row in document.stxl:
            r3.insert_logical("stxl", row, bulk=True)
        r3.insert_cluster("konv", document.konv_key, document.konv_rows,
                          bulk=True)
    if analyze:
        r3.db.analyze()


def load_sap_direct(r3: R3System, data: TpcdData,
                    analyze: bool = True) -> LoadTimings:
    """Direct-path load: the fast path batch input forgoes (Table 3).

    All logical rows are first rendered to their physical form (MANDT
    prefix, pool/cluster encoding) and grouped per physical table in
    storage order, then each table is ingested in one
    :meth:`~repro.engine.database.Database.direct_path_load` call:
    pre-sorted append with sequential page writes, deferred index
    build, WAL bypass, and a sealing checkpoint per table.

    Idempotent under crash recovery: a table that already holds its
    expected row count (a previously *sealed* table) is skipped on
    re-run.  Partial tables cannot survive a crash — nothing of an
    unsealed table is durable — so the skip check is exact.
    """
    from repro.r3.ddic import TableKind

    if "lfa1" not in r3.ddic.tables:
        activate_sap_schema(r3)
        create_sap_join_views(r3)
    timings = LoadTimings(processes=1)

    physical: dict[str, list[tuple]] = {}
    logical_of: dict[str, set[str]] = {}

    def add(logical_name: str, row: tuple) -> None:
        table = r3.ddic.lookup(logical_name)
        full_row = (r3.client,) + tuple(row)
        if table.kind is TableKind.TRANSPARENT:
            physical.setdefault(table.name, []).append(full_row)
            logical_of.setdefault(table.name, set()).add(table.name)
        else:
            container = r3.pools[table.container]
            physical.setdefault(container.name, []).append(
                container.physical_row(table, full_row))
            logical_of.setdefault(container.name, set()).add(table.name)

    def add_cluster(logical_name: str, key: tuple,
                    rows: list[tuple]) -> None:
        table = r3.ddic.lookup(logical_name)
        if table.kind is TableKind.TRANSPARENT:
            for row in rows:
                add(logical_name, row)
            return
        container = r3.clusters[table.container]
        for phys in container.physical_rows(r3.client, key, rows):
            physical.setdefault(container.name, []).append(phys)
        logical_of.setdefault(container.name, set()).add(table.name)

    for loader in (mapping.region_rows, mapping.nation_rows,
                   mapping.supplier_rows, mapping.part_rows,
                   mapping.partsupp_rows, mapping.customer_rows):
        for logical_name, rows in loader(data).items():
            for row in rows:
                add(logical_name, row)
    for document in mapping.order_documents(data):
        add("vbak", document.vbak)
        for row in document.vbap:
            add("vbap", row)
        for row in document.vbep:
            add("vbep", row)
        for row in document.stxl:
            add("stxl", row)
        add_cluster("konv", document.konv_key, document.konv_rows)

    start = r3.clock.now
    for name, rows in physical.items():
        table = r3.db.catalog.table(name)
        if table.row_count >= len(rows):
            continue  # sealed by a pre-crash run of this loader
        r3.db.direct_path_load(name, rows)
        for logical_name in logical_of[name]:
            r3.note_write(logical_name)
    timings.elapsed["DIRECT"] = r3.clock.now - start
    if analyze:
        r3.db.analyze()
    return timings
