"""TPC-D record → SAP record mapping.

Implements the vertical partitioning of the paper's Table 1: every
TPC-D row becomes one or more SAP rows across the 17 tables, integer
keys become padded strings, comments move to STXL, part names to MAKT,
retail prices behind A004→KONP, part sizes into AUSP, and per-lineitem
discount/tax into two KONV condition records hanging off the order's
pricing document (VBAK.KNUMV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sapschema.tables import SAP_TABLE_INFO
from repro.tpcd.dbgen import TpcdData

LANGUAGE = "E"


class KeyCodec:
    """Integer TPC-D keys <-> padded SAP string keys (the 16-byte-string
    representation the paper blames for index inflation)."""

    @staticmethod
    def land1(nationkey: int) -> str:
        return f"{nationkey:03d}"

    @staticmethod
    def regio(regionkey: int) -> str:
        return f"R{regionkey:02d}"

    @staticmethod
    def matnr(partkey: int) -> str:
        return f"{partkey:018d}"

    @staticmethod
    def lifnr(suppkey: int) -> str:
        return f"{suppkey:010d}"

    @staticmethod
    def kunnr(custkey: int) -> str:
        return f"{custkey:010d}"

    @staticmethod
    def vbeln(orderkey: int) -> str:
        return f"{orderkey:010d}"

    @staticmethod
    def posnr(linenumber: int) -> str:
        return f"{linenumber:06d}"

    @staticmethod
    def knumv(orderkey: int) -> str:
        return f"V{orderkey:09d}"

    @staticmethod
    def infnr(partkey: int, suppkey: int) -> str:
        return f"{partkey:08d}{suppkey:08d}"

    @staticmethod
    def knumh(partkey: int) -> str:
        return f"H{partkey:09d}"

    # inverse mappings (used when reconstructing the warehouse)

    @staticmethod
    def orderkey(vbeln: str) -> int:
        return int(vbeln)

    @staticmethod
    def partkey(matnr: str) -> int:
        return int(matnr)

    @staticmethod
    def suppkey(lifnr: str) -> int:
        return int(lifnr)

    @staticmethod
    def custkey(kunnr: str) -> int:
        return int(kunnr)

    @staticmethod
    def nationkey(land1: str) -> int:
        return int(land1)

    @staticmethod
    def linenumber(posnr: str) -> int:
        return int(posnr)


def _fill(table: str, *semantic_values) -> tuple:
    """Semantic values + that table's filler defaults."""
    info = SAP_TABLE_INFO[table]
    if len(semantic_values) != len(info.semantic_fields):
        raise ValueError(
            f"{table}: {len(semantic_values)} values for "
            f"{len(info.semantic_fields)} semantic fields"
        )
    return tuple(semantic_values) + info.filler_defaults


@dataclass
class OrderDocument:
    """One business transaction's worth of SAP rows (order + items)."""

    orderkey: int
    vbak: tuple
    vbap: list[tuple] = field(default_factory=list)
    vbep: list[tuple] = field(default_factory=list)
    konv_key: tuple = ()
    konv_rows: list[tuple] = field(default_factory=list)
    stxl: list[tuple] = field(default_factory=list)
    custkey: int = 0
    partkeys: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# master data
# ---------------------------------------------------------------------------

def nation_rows(data: TpcdData) -> dict[str, list[tuple]]:
    t005, t005t = [], []
    for nationkey, name, regionkey, _comment in data.nation:
        t005.append(_fill(
            "t005", KeyCodec.land1(nationkey), KeyCodec.regio(regionkey)
        ))
        t005t.append(_fill(
            "t005t", LANGUAGE, KeyCodec.land1(nationkey), name
        ))
    return {"t005": t005, "t005t": t005t}


def region_rows(data: TpcdData) -> dict[str, list[tuple]]:
    t005u = [
        _fill("t005u", LANGUAGE, KeyCodec.regio(regionkey), name)
        for regionkey, name, _comment in data.region
    ]
    return {"t005u": t005u}


def part_rows(data: TpcdData) -> dict[str, list[tuple]]:
    import datetime

    mara, makt, a004, konp, ausp, stxl = [], [], [], [], [], []
    far_future = datetime.date(9999, 12, 31)
    epoch = datetime.date(1990, 1, 1)
    for (partkey, name, mfgr, brand, p_type, size, container, price,
         comment) in data.part:
        matnr = KeyCodec.matnr(partkey)
        mara.append(_fill("mara", matnr, p_type, brand, mfgr, container))
        makt.append(_fill("makt", matnr, LANGUAGE, name))
        knumh = KeyCodec.knumh(partkey)
        a004.append(_fill("a004", "V", "PR00", matnr, far_future, epoch,
                          knumh))
        konp.append(_fill("konp", knumh, "01", "PR00", price, "USD"))
        ausp.append(_fill("ausp", matnr, "SIZE", str(size), float(size)))
        stxl.append(_fill("stxl", "MARA", matnr, "0001", LANGUAGE, 0,
                          comment))
    return {"mara": mara, "makt": makt, "a004": a004, "konp": konp,
            "ausp": ausp, "stxl": stxl}


def supplier_rows(data: TpcdData) -> dict[str, list[tuple]]:
    lfa1, stxl = [], []
    for (suppkey, name, address, nationkey, phone, acctbal,
         comment) in data.supplier:
        lifnr = KeyCodec.lifnr(suppkey)
        lfa1.append(_fill(
            "lfa1", lifnr, name, address, KeyCodec.land1(nationkey),
            phone, acctbal,
        ))
        stxl.append(_fill(
            "stxl", "LFA1", lifnr, "0001", LANGUAGE, 0, comment
        ))
    return {"lfa1": lfa1, "stxl": stxl}


def partsupp_rows(data: TpcdData) -> dict[str, list[tuple]]:
    eina, eine = [], []
    for partkey, suppkey, availqty, supplycost, _comment in data.partsupp:
        infnr = KeyCodec.infnr(partkey, suppkey)
        eina.append(_fill(
            "eina", infnr, KeyCodec.matnr(partkey), KeyCodec.lifnr(suppkey)
        ))
        eine.append(_fill(
            "eine", infnr, "1000", "0", "0001", supplycost, availqty
        ))
    return {"eina": eina, "eine": eine}


def customer_rows(data: TpcdData) -> dict[str, list[tuple]]:
    kna1, stxl = [], []
    for (custkey, name, address, nationkey, phone, acctbal, segment,
         comment) in data.customer:
        kunnr = KeyCodec.kunnr(custkey)
        kna1.append(_fill(
            "kna1", kunnr, name, address, KeyCodec.land1(nationkey),
            phone, acctbal, segment,
        ))
        stxl.append(_fill(
            "stxl", "KNA1", kunnr, "0001", LANGUAGE, 0, comment
        ))
    return {"kna1": kna1, "stxl": stxl}


# ---------------------------------------------------------------------------
# transactional data
# ---------------------------------------------------------------------------

def order_documents(data: TpcdData) -> list[OrderDocument]:
    """Group orders + their lineitems into SAP business documents."""
    lineitems_by_order: dict[int, list[tuple]] = {}
    for row in data.lineitem:
        lineitems_by_order.setdefault(row[0], []).append(row)

    documents: list[OrderDocument] = []
    for (orderkey, custkey, status, totalprice, orderdate, priority,
         clerk, shippriority, comment) in data.orders:
        vbeln = KeyCodec.vbeln(orderkey)
        knumv = KeyCodec.knumv(orderkey)
        document = OrderDocument(
            orderkey=orderkey,
            custkey=custkey,
            vbak=_fill(
                "vbak", vbeln, KeyCodec.kunnr(custkey), orderdate,
                totalprice, status, priority, clerk, shippriority, knumv,
            ),
            konv_key=(knumv,),
        )
        document.stxl.append(_fill(
            "stxl", "VBBK", vbeln, "0001", LANGUAGE, 0, comment
        ))
        for line in lineitems_by_order.get(orderkey, []):
            (_ok, partkey, suppkey, linenumber, quantity, extendedprice,
             discount, tax, returnflag, linestatus, shipdate, commitdate,
             receiptdate, shipinstruct, shipmode, l_comment) = line
            posnr = KeyCodec.posnr(linenumber)
            document.partkeys.append(partkey)
            document.vbap.append(_fill(
                "vbap", vbeln, posnr, KeyCodec.matnr(partkey),
                KeyCodec.lifnr(suppkey), quantity, extendedprice,
                returnflag, linestatus, shipmode, shipinstruct,
            ))
            document.vbep.append(_fill(
                "vbep", vbeln, posnr, "0001", shipdate, commitdate,
                receiptdate,
            ))
            base = extendedprice
            document.konv_rows.append(_fill(
                "konv", knumv, posnr, "040", "01", "DISC",
                -discount * 1000.0, base, round(-base * discount, 2),
            ))
            taxed_base = base * (1 - discount)
            document.konv_rows.append(_fill(
                "konv", knumv, posnr, "050", "01", "TAX",
                tax * 1000.0, taxed_base, round(taxed_base * tax, 2),
            ))
            document.stxl.append(_fill(
                "stxl", "VBBP", (vbeln + posnr), "0001",
                LANGUAGE, 0, l_comment,
            ))
        documents.append(document)
    return documents
