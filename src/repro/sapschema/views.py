"""2.2-era join views.

Release 2.2 Open SQL cannot express joins, but it *can* read database
views, and SAP allows defining join views over transparent tables
along primary/foreign-key relationships (paper Section 2.3).  The
paper's authors "made extensive use of this feature"; these are the
views our 2.2 reports use.  Note what is absent: nothing involving
KONV (a cluster table in 2.2 — views over encapsulated tables are
impossible), which is why KONV joins stay in the application server
until the 3.0 upgrade.
"""

from __future__ import annotations

from repro.r3.appserver import R3System

JOIN_VIEWS: dict[str, str] = {
    # lineitem positions with their schedule-line dates
    "wvbapep": """
        SELECT vbap.mandt AS mandt, vbap.vbeln AS vbeln,
               vbap.posnr AS posnr, vbap.matnr AS matnr,
               vbap.lifnr AS lifnr, vbap.kwmeng AS kwmeng,
               vbap.netwr AS netwr, vbap.rkflg AS rkflg,
               vbap.gbsta AS gbsta, vbap.vsart AS vsart,
               vbap.sdabw AS sdabw, vbep.edatu AS edatu,
               vbep.mbdat AS mbdat, vbep.lfdat AS lfdat
        FROM vbap, vbep
        WHERE vbap.mandt = vbep.mandt AND vbap.vbeln = vbep.vbeln
          AND vbap.posnr = vbep.posnr
    """,
    # order headers joined to their positions
    "wvbakap": """
        SELECT vbak.mandt AS mandt, vbak.vbeln AS vbeln,
               vbap.posnr AS posnr, vbak.kunnr AS kunnr,
               vbak.audat AS audat, vbak.knumv AS knumv,
               vbak.prior AS prior, vbak.sprio AS sprio,
               vbak.gbstk AS gbstk, vbap.matnr AS matnr,
               vbap.lifnr AS lifnr, vbap.kwmeng AS kwmeng,
               vbap.netwr AS netwr, vbap.rkflg AS rkflg,
               vbap.vsart AS vsart
        FROM vbak, vbap
        WHERE vbak.mandt = vbap.mandt AND vbak.vbeln = vbap.vbeln
    """,
    # purchasing info records with their terms
    "weinaine": """
        SELECT eina.mandt AS mandt, eina.infnr AS infnr,
               eina.matnr AS matnr, eina.lifnr AS lifnr,
               eine.netpr AS netpr, eine.avlqt AS avlqt
        FROM eina, eine
        WHERE eina.mandt = eine.mandt AND eina.infnr = eine.infnr
    """,
    # parts with their language-dependent descriptions
    "wmaramkt": """
        SELECT mara.mandt AS mandt, mara.matnr AS matnr,
               mara.mtart AS mtart, mara.extwg AS extwg,
               mara.mfrpn AS mfrpn, mara.magrv AS magrv,
               makt.maktx AS maktx
        FROM mara, makt
        WHERE mara.mandt = makt.mandt AND mara.matnr = makt.matnr
          AND makt.spras = 'E'
    """,
    # countries with names
    "wt005tx": """
        SELECT t005.mandt AS mandt, t005.land1 AS land1,
               t005.regio AS regio, t005t.landx AS landx
        FROM t005, t005t
        WHERE t005.mandt = t005t.mandt AND t005.land1 = t005t.land1
          AND t005t.spras = 'E'
    """,
}


def create_sap_join_views(r3: R3System) -> list[str]:
    """Register the 2.2 join views in the back-end catalog."""
    created = []
    for name, sql in JOIN_VIEWS.items():
        if not r3.db.catalog.has_view(name):
            r3.db.create_view(name, sql)
            created.append(name)
    return created
