"""The TPC-D data inside SAP R/3's business schema.

Implements the paper's Table 1: the 17 pre-defined SAP tables that end
up storing the eight TPC-D tables, the vertical partitioning between
them, the 16-byte-string key style, the default business fields that
inflate the data ~10x, the A004 pool table and the KONV cluster table,
and the 2.2-era join views.
"""

from repro.sapschema.tables import SAP_TABLE_INFO, activate_sap_schema
from repro.sapschema.mapping import KeyCodec

__all__ = ["SAP_TABLE_INFO", "activate_sap_schema", "KeyCodec"]
