"""Definitions of the 17 SAP tables used for the TPC-D data (Table 1).

Each table lists its *semantic* fields (the ones carrying TPC-D
attributes) first, followed by default business fields ("fillers") of
the kind every real SAP table carries.  The fillers are what inflates
the SAP database ~10x over the original TPC-D database; their widths
are modelled on the real tables' field inventories.

Kinds: A004 is a pool table, KONV is a cluster table (both by default,
as in the paper); the remaining 15 are transparent.
"""

from __future__ import annotations

import datetime

from repro.engine.types import SqlType, TypeKind
from repro.r3.appserver import R3System
from repro.r3.ddic import DDicField, DDicTable, TableKind

# Shorthand type constructors.
C = SqlType.char
V = SqlType.varchar
D = SqlType.decimal
I = SqlType.integer
DT = SqlType.date

#: container names
POOL_CONTAINER = "kapol"
CLUSTER_CONTAINER = "koclu"

#: default value per type kind for filler fields
_DEFAULTS = {
    TypeKind.CHAR: "",
    TypeKind.VARCHAR: "",
    TypeKind.INTEGER: 0,
    TypeKind.DECIMAL: 0.0,
    TypeKind.DATE: datetime.date(1990, 1, 1),
}


def _fields(spec: list[tuple]) -> list[DDicField]:
    """spec rows: (name, type) or (name, type, 'key')."""
    out = []
    for entry in spec:
        name, sql_type = entry[0], entry[1]
        key = len(entry) > 2 and entry[2] == "key"
        out.append(DDicField(name, sql_type, key=key))
    return out


class SapTableInfo:
    """One logical table: definition + semantic/filler split."""

    def __init__(self, name: str, kind: TableKind, description: str,
                 original: str, semantic: list[tuple],
                 fillers: list[tuple]) -> None:
        self.name = name
        self.kind = kind
        self.description = description
        self.original = original  # TPC-D table(s), for the Table 1 printout
        self.semantic_fields = _fields(semantic)
        self.filler_fields = _fields(fillers)

    @property
    def fields(self) -> list[DDicField]:
        return self.semantic_fields + self.filler_fields

    @property
    def filler_defaults(self) -> tuple:
        return tuple(
            _DEFAULTS[f.sql_type.kind] for f in self.filler_fields
        )

    def ddic_table(self) -> DDicTable:
        container = None
        cluster_key_length = 0
        if self.kind is TableKind.POOL:
            container = POOL_CONTAINER
        elif self.kind is TableKind.CLUSTER:
            container = CLUSTER_CONTAINER
            cluster_key_length = 1  # KNUMV
        return DDicTable(
            name=self.name, kind=self.kind, fields=self.fields,
            container=container, cluster_key_length=cluster_key_length,
            description=self.description,
        )


SAP_TABLE_INFO: dict[str, SapTableInfo] = {}


def _register(info: SapTableInfo) -> None:
    SAP_TABLE_INFO[info.name] = info


_register(SapTableInfo(
    "t005", TableKind.TRANSPARENT, "Country: general info", "NATION",
    semantic=[
        ("land1", C(3), "key"),   # nation key
        ("regio", C(3)),          # region key
    ],
    fillers=[
        ("landk", C(3)), ("lnplz", C(2)), ("waers", C(5)), ("spras", C(1)),
        ("kalsm", C(6)), ("xegld", C(1)), ("intca", C(2)), ("nmfmt", C(2)),
    ],
))

_register(SapTableInfo(
    "t005t", TableKind.TRANSPARENT, "Country: names", "NATION",
    semantic=[
        ("spras", C(1), "key"),
        ("land1", C(3), "key"),
        ("landx", C(25)),         # nation name
    ],
    fillers=[
        ("natio", C(25)), ("land50", C(50)), ("prq_spregt", C(1)),
    ],
))

_register(SapTableInfo(
    "t005u", TableKind.TRANSPARENT, "Regions", "REGION",
    semantic=[
        ("spras", C(1), "key"),
        ("regio", C(3), "key"),
        ("bezei", C(25)),         # region name
    ],
    fillers=[
        ("fprcd", C(3)),
    ],
))

_register(SapTableInfo(
    "mara", TableKind.TRANSPARENT, "Parts: general info", "PART",
    semantic=[
        ("matnr", C(18), "key"),  # part key
        ("mtart", C(25)),         # p_type
        ("extwg", C(18)),         # p_brand
        ("mfrpn", C(25)),         # p_mfgr
        ("magrv", C(10)),         # p_container
    ],
    fillers=[
        ("meins", C(3)), ("matkl", C(9)), ("bismt", C(18)), ("mbrsh", C(1)),
        ("brgew", D()), ("ntgew", D()), ("gewei", C(3)), ("volum", D()),
        ("voleh", C(3)), ("spart", C(2)), ("wrkst", C(48)),
        ("normt", C(18)), ("kzkfg", C(1)), ("vpsta", C(15)),
        ("prdha", C(18)), ("mstae", C(2)), ("mstav", C(2)), ("taklv", C(1)),
        ("erdat", DT()), ("ernam", C(12)), ("laeda", DT()),
        ("aenam", C(12)), ("pstat", C(15)), ("lvorm", C(1)),
    ],
))

_register(SapTableInfo(
    "makt", TableKind.TRANSPARENT, "Parts: description", "PART",
    semantic=[
        ("matnr", C(18), "key"),
        ("spras", C(1), "key"),
        ("maktx", C(55)),          # p_name
    ],
    fillers=[
        ("maktg", C(55)),          # uppercase copy SAP keeps for matchcodes
    ],
))

_register(SapTableInfo(
    "a004", TableKind.POOL, "Parts: terms", "PART",
    semantic=[
        ("kappl", C(2), "key"),
        ("kschl", C(4), "key"),
        ("matnr", C(18), "key"),
        ("datbi", DT(), "key"),    # valid-to
        ("datab", DT()),           # valid-from
        ("knumh", C(10)),          # link to KONP
    ],
    fillers=[
        ("kfrst", C(1)),
    ],
))

_register(SapTableInfo(
    "konp", TableKind.TRANSPARENT, "Terms: positions", "PART",
    semantic=[
        ("knumh", C(10), "key"),
        ("kopos", C(2), "key"),
        ("kschl", C(4)),
        ("kbetr", D()),            # p_retailprice
        ("konwa", C(5)),
    ],
    fillers=[
        ("kpein", D()), ("kmein", C(3)), ("krech", C(1)), ("stfkz", C(1)),
        ("kznep", C(1)), ("loevm_ko", C(1)),
    ],
))

_register(SapTableInfo(
    "lfa1", TableKind.TRANSPARENT, "Supplier: general info", "SUPPLIER",
    semantic=[
        ("lifnr", C(10), "key"),
        ("name1", C(35)),          # s_name
        ("stras", C(35)),          # s_address
        ("land1", C(3)),           # s_nationkey
        ("telf1", C(16)),          # s_phone
        ("saldo", D()),            # s_acctbal
    ],
    fillers=[
        ("ort01", C(35)), ("pstlz", C(10)), ("regio", C(3)),
        ("sortl", C(10)), ("adrnr", C(10)), ("mcod1", C(25)),
        ("mcod2", C(25)), ("mcod3", C(25)), ("anred", C(15)),
        ("bahns", C(25)), ("spras", C(1)), ("stceg", C(20)),
        ("ktokk", C(4)), ("erdat", DT()), ("ernam", C(12)),
        ("sperr", C(1)), ("loevm", C(1)),
    ],
))

_register(SapTableInfo(
    "eina", TableKind.TRANSPARENT, "Part-Supplier: general info",
    "PARTSUPP",
    semantic=[
        ("infnr", C(16), "key"),   # purchasing info record
        ("matnr", C(18)),
        ("lifnr", C(10)),
    ],
    fillers=[
        ("meins", C(3)), ("umrez", D()), ("umren", D()), ("idnlf", C(35)),
        ("verkf", C(30)), ("telf1", C(16)), ("urzdt", DT()),
        ("urzla", C(3)), ("lmein", C(3)), ("regio", C(3)),
        ("loekz", C(1)), ("erdat", DT()), ("ernam", C(12)),
    ],
))

_register(SapTableInfo(
    "eine", TableKind.TRANSPARENT, "Part-Supplier: terms", "PARTSUPP",
    semantic=[
        ("infnr", C(16), "key"),
        ("ekorg", C(4), "key"),
        ("esokz", C(1), "key"),
        ("werks", C(4), "key"),
        ("netpr", D()),            # ps_supplycost
        ("avlqt", I()),            # ps_availqty
    ],
    fillers=[
        ("waers", C(5)), ("peinh", D()), ("bprme", C(3)), ("mwskz", C(2)),
        ("aplfz", D()), ("norbm", D()), ("minbm", D()), ("bstae", C(4)),
        ("angdt", DT()), ("prdat", DT()), ("loekz", C(1)),
    ],
))

_register(SapTableInfo(
    "ausp", TableKind.TRANSPARENT, "Characteristic values",
    "PART, SUPP, PARTS",
    semantic=[
        ("objek", C(50), "key"),   # object key (e.g. MATNR)
        ("atinn", C(10), "key"),   # characteristic ('SIZE')
        ("atwrt", C(30)),          # character value
        ("atflv", D()),            # numeric value (p_size)
    ],
    fillers=[
        ("klart", C(3)), ("adzhl", C(4)), ("mafid", C(1)), ("atcod", I()),
    ],
))

_register(SapTableInfo(
    "kna1", TableKind.TRANSPARENT, "Customer: general info", "CUSTOMER",
    semantic=[
        ("kunnr", C(10), "key"),
        ("name1", C(35)),          # c_name
        ("stras", C(35)),          # c_address
        ("land1", C(3)),           # c_nationkey
        ("telf1", C(16)),          # c_phone
        ("saldo", D()),            # c_acctbal
        ("brsch", C(10)),          # c_mktsegment
    ],
    fillers=[
        ("ort01", C(35)), ("pstlz", C(10)), ("regio", C(3)),
        ("sortl", C(10)), ("adrnr", C(10)), ("mcod1", C(25)),
        ("mcod2", C(25)), ("mcod3", C(25)), ("anred", C(15)),
        ("spras", C(1)), ("stceg", C(20)), ("ktokd", C(4)),
        ("erdat", DT()), ("ernam", C(12)), ("aufsd", C(2)),
        ("lifsd", C(2)), ("faksd", C(2)), ("loevm", C(1)),
    ],
))

_register(SapTableInfo(
    "vbak", TableKind.TRANSPARENT, "Order: general info", "ORDER",
    semantic=[
        ("vbeln", C(10), "key"),
        ("kunnr", C(10)),          # o_custkey
        ("audat", DT()),           # o_orderdate
        ("netwr", D()),            # o_totalprice
        ("gbstk", C(1)),           # o_orderstatus
        ("prior", C(15)),          # o_orderpriority
        ("ernam", C(15)),          # o_clerk
        ("sprio", I()),            # o_shippriority
        ("knumv", C(10)),          # pricing document (KONV key)
    ],
    fillers=[
        ("erdat", DT()), ("erzet", C(6)), ("angdt", DT()), ("bnddt", DT()),
        ("auart", C(4)), ("submi", C(10)), ("lifsk", C(2)), ("faksk", C(2)),
        ("waerk", C(5)), ("vkorg", C(4)), ("vtweg", C(2)), ("spart", C(2)),
        ("vkgrp", C(3)), ("vkbur", C(4)), ("gsber", C(4)), ("guebg", DT()),
        ("gueen", DT()), ("ktext", C(40)), ("bstnk", C(20)),
        ("bsark", C(4)), ("ihrez", C(12)), ("telf1", C(16)),
        ("kzwi1", D()), ("kzwi2", D()), ("kzwi3", D()), ("kzwi4", D()),
        ("kzwi5", D()), ("kzwi6", D()), ("vsbed", C(2)), ("fkara", C(4)),
        ("awahr", C(3)), ("kokrs", C(4)),
    ],
))

_register(SapTableInfo(
    "vbap", TableKind.TRANSPARENT, "Lineitem: position", "LINEITEM",
    semantic=[
        ("vbeln", C(10), "key"),
        ("posnr", C(6), "key"),
        ("matnr", C(18)),          # l_partkey
        ("lifnr", C(10)),          # l_suppkey
        ("kwmeng", D()),           # l_quantity
        ("netwr", D()),            # l_extendedprice
        ("rkflg", C(1)),           # l_returnflag
        ("gbsta", C(1)),           # l_linestatus
        ("vsart", C(10)),          # l_shipmode
        ("sdabw", C(25)),          # l_shipinstruct
    ],
    fillers=[
        ("werks", C(4)), ("lgort", C(4)), ("matkl", C(9)), ("arktx", C(40)),
        ("pstyv", C(4)), ("spart", C(2)), ("gsber", C(4)), ("netpr", D()),
        ("waerk", C(5)), ("kzwi1", D()), ("kzwi2", D()), ("kzwi3", D()),
        ("kzwi4", D()), ("kzwi5", D()), ("kzwi6", D()), ("ntgew", D()),
        ("brgew", D()), ("gewei", C(3)), ("vstel", C(4)), ("route", C(6)),
        ("zmeng", D()), ("meins", C(3)), ("stcur", D()), ("uebto", D()),
        ("abgru", C(2)), ("kondm", C(2)), ("ktgrm", C(2)), ("mvgr1", C(3)),
        ("mvgr2", C(3)), ("mvgr3", C(3)), ("mvgr4", C(3)), ("mvgr5", C(3)),
        ("prodh", C(18)), ("vgbel", C(10)), ("vgpos", C(6)),
        ("erdat", DT()), ("ernam", C(12)),
    ],
))

_register(SapTableInfo(
    "vbep", TableKind.TRANSPARENT, "Lineitem: terms", "LINEITEM",
    semantic=[
        ("vbeln", C(10), "key"),
        ("posnr", C(6), "key"),
        ("etenr", C(4), "key"),
        ("edatu", DT()),           # l_shipdate
        ("mbdat", DT()),           # l_commitdate
        ("lfdat", DT()),           # l_receiptdate
    ],
    fillers=[
        ("wmeng", D()), ("bmeng", D()), ("meins", C(3)), ("ettyp", C(1)),
        ("lifsp", C(2)), ("grkor", C(3)), ("abart", C(1)), ("banfn", C(10)),
        ("plart", C(1)), ("rsnum", C(10)), ("wadat", DT()), ("tddat", DT()),
        ("lddat", DT()), ("idnnr", C(16)), ("ezeit", C(6)),
    ],
))

_register(SapTableInfo(
    "konv", TableKind.CLUSTER, "Pricing terms", "LINEITEM",
    semantic=[
        ("knumv", C(10), "key"),   # cluster key (per order document)
        ("kposn", C(6), "key"),    # position (lineitem)
        ("stunr", C(3), "key"),    # step number
        ("zaehk", C(2), "key"),    # counter
        ("kschl", C(4)),           # condition type: 'DISC' / 'TAX'
        ("kbetr", D()),            # rate in per-mille (discount < 0)
        ("kawrt", D()),            # condition base value
        ("kwert", D()),            # condition value
    ],
    fillers=[
        ("waers", C(5)), ("kkurs", D()), ("kpein", D()), ("kmein", C(3)),
        ("krech", C(1)), ("kinak", C(1)), ("koaid", C(1)), ("kntyp", C(1)),
        ("kstat", C(1)), ("sakn1", C(10)), ("mwsk1", C(2)),
    ],
))

_register(SapTableInfo(
    "stxl", TableKind.TRANSPARENT, "Text of comments", "all",
    semantic=[
        ("tdobject", C(10), "key"),  # object class (VBBK, LFA1, ...)
        ("tdname", C(32), "key"),    # object key
        ("tdid", C(4), "key"),
        ("tdspras", C(1), "key"),
        ("srtf2", I(), "key"),       # line counter
        ("tdline", V(132)),          # the text
    ],
    fillers=[
        ("clustr", I()), ("tdformat", C(2)),
    ],
))


#: secondary indexes SAP's installation defines for these tables
SAP_SECONDARY_INDEXES = [
    ("idx_vbak_kunnr", "vbak", ["kunnr"]),
    ("idx_vbak_audat", "vbak", ["audat"]),
    ("idx_vbak_knumv", "vbak", ["knumv"]),
    ("idx_vbap_matnr", "vbap", ["matnr"]),
    ("idx_vbap_lifnr", "vbap", ["lifnr"]),
    # the default shipdate index the paper deletes for the 3.0 run:
    ("idx_vbep_edatu", "vbep", ["edatu"]),
    ("idx_kna1_land1", "kna1", ["land1"]),
    ("idx_lfa1_land1", "lfa1", ["land1"]),
    ("idx_eina_matnr", "eina", ["matnr"]),
    ("idx_eina_lifnr", "eina", ["lifnr"]),
]


def activate_sap_schema(r3: R3System, engine_ddl: bool = True) -> None:
    """Create containers, activate the 17 tables, build indexes.

    ``engine_ddl=False`` re-registers the app-tier dictionary against a
    crash-recovered engine without issuing any new engine DDL: the
    recovered catalog is the authority there (it replayed both the
    CREATEs *and* any later DROPs, which a blind re-activation would
    wrongly re-create).
    """
    from repro.engine.types import SqlType as _S

    r3.define_pool(POOL_CONTAINER)
    r3.define_cluster(
        CLUSTER_CONTAINER, [DDicField("knumv", _S.char(10), key=True)]
    )
    for info in SAP_TABLE_INFO.values():
        r3.activate_table(info.ddic_table())
    if not engine_ddl:
        return
    for index_name, table, columns in SAP_SECONDARY_INDEXES:
        # Idempotent against a crash-recovered catalog that already
        # replayed the CREATE INDEX from the log or checkpoint image.
        if not r3.db.catalog.has_index(index_name):
            r3.db.create_index(index_name, table, columns)
