"""The 2.2G → 3.0E upgrade.

Per the paper (Section 3.4): the upgrade keeps all data, takes the
system offline for an extended reorganisation, converts KONV from a
cluster into a transparent table (tripling its footprint), and unlocks
the new Open SQL features.  Old 2.2 reports still run afterwards with
unchanged performance — only *rewritten* reports benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.r3.appserver import R3System, R3Version
from repro.r3.errors import R3Error


@dataclass
class UpgradeReport:
    converted_tables: list[str]
    elapsed_simulated_s: float
    db_bytes_before: int
    db_bytes_after: int


def _total_db_bytes(r3: R3System) -> int:
    report = r3.db.storage_report()
    return sum(
        entry["data_bytes"] + entry["index_bytes"]
        for entry in report.values()
    )


def upgrade_to_30(r3: R3System,
                  convert: tuple[str, ...] = ("konv",)) -> UpgradeReport:
    """Upgrade an R/3 2.2G system in place to 3.0E."""
    if r3.version is not R3Version.V22:
        raise R3Error(f"system is already at {r3.version.value}")
    before = _total_db_bytes(r3)
    span = r3.measure()
    r3.version = R3Version.V30
    converted: list[str] = []
    for name in convert:
        if r3.ddic.has(name) and r3.ddic.lookup(name).encapsulated:
            r3.convert_table(name)
            converted.append(name)
    # The upgrade rewrites dictionary content, recompiles reports and
    # reorganises storage; we charge the data-volume-proportional part
    # (the conversions above) plus a fixed administrative overhead.
    r3.clock.charge(4 * 3600.0)
    r3.dbif.flush_cursor_cache()
    elapsed = span.stop()
    return UpgradeReport(
        converted_tables=converted,
        elapsed_simulated_s=elapsed,
        db_bytes_before=before,
        db_bytes_after=_total_db_bytes(r3),
    )
