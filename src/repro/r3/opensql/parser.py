"""Open SQL parser (ABAP SELECT flavour).

Grammar sketch::

    SELECT [SINGLE] ( * | item... )
    FROM table [AS a] [ [INNER] JOIN table [AS b] ON cond [AND cond]... ]...
    [WHERE cond]
    [GROUP BY field...]
    [ORDER BY field [DESCENDING]...]
    [UP TO n ROWS]

    item  := field | SUM( field ) | AVG( field ) | MIN( field )
           | MAX( field ) | COUNT( * )
    field := name | alias~name
    value := 'literal' | number | :hostvar

Field lists are space separated (no commas), qualification uses ``~``
— both faithful to ABAP/4.  Version feature gates (joins, aggregates)
are enforced by the executor, not here, so 2.2 reports that *try* the
new syntax fail the way the paper describes.
"""

from __future__ import annotations

import re

from repro.r3.errors import OpenSqlError
from repro.r3.opensql.ast import (
    OSAgg,
    OSBetween,
    OSBool,
    OSComp,
    OSCond,
    OSField,
    OSHost,
    OSIn,
    OSJoin,
    OSLike,
    OSLiteral,
    OSNot,
    OSOperand,
    OSSelect,
    OSStar,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<host>:[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><>|<=|>=|=|<|>|~|\(|\)|\*|,)"
    r")"
)

_KEYWORDS = {
    "SELECT", "SINGLE", "FROM", "AS", "INNER", "JOIN", "ON", "WHERE",
    "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN", "GROUP", "ORDER", "BY",
    "DESCENDING", "ASCENDING", "UP", "TO", "ROWS", "SUM", "AVG", "MIN",
    "MAX", "COUNT",
}

_AGGS = ("SUM", "AVG", "MIN", "MAX", "COUNT")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise OpenSqlError(
                    f"bad Open SQL token at: {text[pos:pos + 20]!r}"
                )
            break
        pos = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")
            tokens.append(("string", raw[1:-1].replace("''", "'")))
        elif match.lastgroup == "number":
            tokens.append(("number", match.group("number")))
        elif match.lastgroup == "host":
            tokens.append(("host", match.group("host")[1:]))
        elif match.lastgroup == "word":
            word = match.group("word")
            if word.upper() in _KEYWORDS:
                tokens.append(("kw", word.upper()))
            else:
                tokens.append(("name", word))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("eof", ""))
    return tokens


def parse_open_sql(text: str) -> OSSelect:
    return _OSParser(text).parse()


class _OSParser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._pos = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._pos]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _accept_kw(self, *words: str) -> str | None:
        kind, value = self._peek()
        if kind == "kw" and value in words:
            self._pos += 1
            return value
        return None

    def _expect_kw(self, word: str) -> None:
        if self._accept_kw(word) is None:
            kind, value = self._peek()
            raise OpenSqlError(f"expected {word}, got {value!r}")

    def _accept_op(self, *ops: str) -> str | None:
        kind, value = self._peek()
        if kind == "op" and value in ops:
            self._pos += 1
            return value
        return None

    def _expect_name(self) -> str:
        kind, value = self._next()
        if kind != "name":
            raise OpenSqlError(f"expected a name, got {value!r}")
        return value.lower()

    # -- entry ---------------------------------------------------------------

    def parse(self) -> OSSelect:
        self._expect_kw("SELECT")
        single = self._accept_kw("SINGLE") is not None
        items = self._parse_items()
        self._expect_kw("FROM")
        table, alias = self._parse_table_ref()
        joins: list[OSJoin] = []
        while True:
            if self._accept_kw("INNER"):
                self._expect_kw("JOIN")
            elif self._accept_kw("JOIN") is None:
                break
            join_table, join_alias = self._parse_table_ref()
            self._expect_kw("ON")
            on = self._parse_on_conjuncts()
            joins.append(OSJoin(join_table, join_alias, on))
        where = None
        if self._accept_kw("WHERE"):
            where = self._parse_cond()
        group_by: list[OSField] = []
        if self._accept_kw("GROUP"):
            self._expect_kw("BY")
            group_by.append(self._parse_field())
            while self._peek()[0] == "name" or self._is_field_start():
                group_by.append(self._parse_field())
        order_by: list[tuple[OSField, bool]] = []
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            while self._peek()[0] == "name" or self._is_field_start():
                field = self._parse_field()
                descending = self._accept_kw("DESCENDING") is not None
                if not descending:
                    self._accept_kw("ASCENDING")
                order_by.append((field, descending))
        up_to: int | None = None
        if self._accept_kw("UP"):
            self._expect_kw("TO")
            kind, value = self._next()
            if kind != "number":
                raise OpenSqlError("expected a row count after UP TO")
            up_to = int(value)
            self._expect_kw("ROWS")
        kind, value = self._peek()
        if kind != "eof":
            raise OpenSqlError(f"trailing Open SQL input: {value!r}")
        return OSSelect(
            single=single, items=items, table=table, alias=alias,
            joins=joins, where=where, group_by=group_by, order_by=order_by,
            up_to=up_to,
        )

    def _is_field_start(self) -> bool:
        return self._peek()[0] == "name"

    # -- pieces ---------------------------------------------------------------

    def _parse_items(self) -> list:
        if self._accept_op("*"):
            return [OSStar()]
        items: list = []
        while True:
            kind, value = self._peek()
            if kind == "kw" and value in _AGGS:
                self._pos += 1
                if self._accept_op("(") is None:
                    raise OpenSqlError(f"expected ( after {value}")
                if self._accept_op("*"):
                    if value != "COUNT":
                        raise OpenSqlError(f"{value}(*) is not Open SQL")
                    arg = None
                else:
                    arg = self._parse_field()
                if self._accept_op(")") is None:
                    raise OpenSqlError("expected ) in aggregate")
                items.append(OSAgg(value, arg))
            elif kind == "name":
                items.append(self._parse_field())
            else:
                break
        if not items:
            raise OpenSqlError("empty select list")
        return items

    def _parse_table_ref(self) -> tuple[str, str | None]:
        table = self._expect_name()
        alias = None
        if self._accept_kw("AS"):
            alias = self._expect_name()
        return table, alias

    def _parse_field(self) -> OSField:
        name = self._expect_name()
        if self._accept_op("~"):
            return OSField(name, self._expect_name())
        return OSField(None, name)

    def _parse_operand(self) -> OSOperand:
        kind, value = self._peek()
        if kind == "string":
            self._pos += 1
            return OSLiteral(value)
        if kind == "number":
            self._pos += 1
            number = float(value) if "." in value else int(value)
            return OSLiteral(number)
        if kind == "host":
            self._pos += 1
            return OSHost(value.lower())
        if kind == "name":
            return self._parse_field()
        raise OpenSqlError(f"expected a value or field, got {value!r}")

    def _parse_on_conjuncts(self) -> list[OSComp]:
        conjuncts = [self._parse_on_comp()]
        while self._accept_kw("AND"):
            conjuncts.append(self._parse_on_comp())
        return conjuncts

    def _parse_on_comp(self) -> OSComp:
        left = self._parse_field()
        op = self._accept_op("=", "<>", "<", "<=", ">", ">=")
        if op is None:
            raise OpenSqlError("expected comparison in ON")
        right = self._parse_operand()
        return OSComp(left, op, right)

    # -- conditions ------------------------------------------------------------

    def _parse_cond(self) -> OSCond:
        return self._parse_or()

    def _parse_or(self) -> OSCond:
        left = self._parse_and()
        while self._accept_kw("OR"):
            left = OSBool("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> OSCond:
        left = self._parse_not()
        while self._accept_kw("AND"):
            left = OSBool("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> OSCond:
        if self._accept_kw("NOT"):
            return OSNot(self._parse_not())
        return self._parse_simple()

    def _parse_simple(self) -> OSCond:
        if self._accept_op("("):
            inner = self._parse_cond()
            if self._accept_op(")") is None:
                raise OpenSqlError("expected )")
            return inner
        left = self._parse_field()
        op = self._accept_op("=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            return OSComp(left, op, self._parse_operand())
        negated = self._accept_kw("NOT") is not None
        if self._accept_kw("LIKE"):
            return OSLike(left, self._parse_operand(), negated=negated)
        if self._accept_kw("IN"):
            if self._accept_op("(") is None:
                raise OpenSqlError("expected ( after IN")
            items = [self._parse_operand()]
            while self._accept_op(","):
                items.append(self._parse_operand())
            if self._accept_op(")") is None:
                raise OpenSqlError("expected ) after IN list")
            return OSIn(left, items, negated=negated)
        if self._accept_kw("BETWEEN"):
            low = self._parse_operand()
            self._expect_kw("AND")
            high = self._parse_operand()
            return OSBetween(left, low, high, negated=negated)
        raise OpenSqlError(
            f"expected a predicate after {left.display()}"
        )
