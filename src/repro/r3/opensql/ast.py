"""Open SQL AST.

Mirrors ABAP's SELECT statement structure: space-separated field
lists, ``~`` qualification, host variables written ``:name``, and —
deliberately — *no* syntax for arithmetic inside aggregates, nested
queries, or expressions in the select list.  The grammar itself
enforces the Open SQL limitations the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OSField:
    alias: str | None
    name: str

    def display(self) -> str:
        if self.alias:
            return f"{self.alias}~{self.name}"
        return self.name


@dataclass(frozen=True)
class OSAgg:
    """Aggregate over a single plain attribute (or ``*`` for COUNT)."""

    func: str  # SUM/AVG/MIN/MAX/COUNT
    arg: OSField | None  # None = COUNT(*)


@dataclass(frozen=True)
class OSStar:
    pass


@dataclass(frozen=True)
class OSLiteral:
    value: object


@dataclass(frozen=True)
class OSHost:
    """Host variable ``:name`` bound at OPEN time from the report."""

    name: str


OSOperand = OSField | OSLiteral | OSHost


@dataclass
class OSComp:
    left: OSField
    op: str  # '=', '<>', '<', '<=', '>', '>='
    right: OSOperand


@dataclass
class OSLike:
    left: OSField
    pattern: OSOperand
    negated: bool = False


@dataclass
class OSIn:
    left: OSField
    items: list[OSOperand]
    negated: bool = False


@dataclass
class OSBetween:
    left: OSField
    low: OSOperand
    high: OSOperand
    negated: bool = False


@dataclass
class OSBool:
    op: str  # 'AND' / 'OR'
    left: "OSCond"
    right: "OSCond"


@dataclass
class OSNot:
    operand: "OSCond"


OSCond = OSComp | OSLike | OSIn | OSBetween | OSBool | OSNot


@dataclass
class OSJoin:
    table: str
    alias: str | None
    on: list[OSComp]


@dataclass
class OSSelect:
    single: bool
    items: list[OSField | OSAgg | OSStar]
    table: str
    alias: str | None
    joins: list[OSJoin] = field(default_factory=list)
    where: OSCond | None = None
    group_by: list[OSField] = field(default_factory=list)
    order_by: list[tuple[OSField, bool]] = field(default_factory=list)
    up_to: int | None = None

    @property
    def has_joins(self) -> bool:
        return bool(self.joins)

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, OSAgg) for item in self.items)
