"""Open SQL → backend SQL translation.

Two properties of the real translator are reproduced exactly because
the paper measures their consequences:

1. **Everything becomes a parameter.**  Literals and host variables
   are both emitted as ``?`` markers so the cursor cache can reuse the
   plan across similar statements — and so the RDBMS optimizer can
   never estimate predicate selectivity (paper Section 4.1, Table 6).
2. **The client predicate is injected.**  ``MANDT = ?`` is added for
   every table reference from the application context; report authors
   never write it (and forgetting it is the classic Native SQL bug the
   paper warns about).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.r3.errors import OpenSqlError
from repro.r3.opensql.ast import (
    OSAgg,
    OSBetween,
    OSBool,
    OSComp,
    OSCond,
    OSField,
    OSHost,
    OSIn,
    OSLike,
    OSLiteral,
    OSNot,
    OSOperand,
    OSSelect,
    OSStar,
)

#: parameter source tags
CLIENT = "client"
LITERAL = "literal"
HOST = "host"


@dataclass
class Translation:
    sql: str
    #: ordered parameter sources: (CLIENT,), (LITERAL, value), (HOST, name)
    param_sources: list[tuple]

    def bind(self, client: str, host_vars: dict[str, object]) -> list[object]:
        values: list[object] = []
        for source in self.param_sources:
            if source[0] == CLIENT:
                values.append(client)
            elif source[0] == LITERAL:
                values.append(source[1])
            else:
                name = source[1]
                if name not in host_vars:
                    raise OpenSqlError(f"unbound host variable :{name}")
                values.append(host_vars[name])
        return values


class _Builder:
    def __init__(self) -> None:
        self.params: list[tuple] = []

    def field(self, field: OSField) -> str:
        if field.alias:
            return f"{field.alias}.{field.name}"
        return field.name

    def operand(self, operand: OSOperand) -> str:
        if isinstance(operand, OSField):
            return self.field(operand)
        if isinstance(operand, OSLiteral):
            self.params.append((LITERAL, operand.value))
            return "?"
        if isinstance(operand, OSHost):
            self.params.append((HOST, operand.name))
            return "?"
        raise OpenSqlError(f"bad operand {operand!r}")

    def cond(self, node: OSCond) -> str:
        if isinstance(node, OSBool):
            return f"({self.cond(node.left)} {node.op} {self.cond(node.right)})"
        if isinstance(node, OSNot):
            return f"(NOT {self.cond(node.operand)})"
        if isinstance(node, OSComp):
            return f"{self.field(node.left)} {node.op} {self.operand(node.right)}"
        if isinstance(node, OSLike):
            keyword = "NOT LIKE" if node.negated else "LIKE"
            return f"{self.field(node.left)} {keyword} {self.operand(node.pattern)}"
        if isinstance(node, OSIn):
            rendered = ", ".join(self.operand(item) for item in node.items)
            keyword = "NOT IN" if node.negated else "IN"
            return f"{self.field(node.left)} {keyword} ({rendered})"
        if isinstance(node, OSBetween):
            keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
            return (f"{self.field(node.left)} {keyword} "
                    f"{self.operand(node.low)} AND {self.operand(node.high)}")
        raise OpenSqlError(f"bad condition node {node!r}")


def translate(stmt: OSSelect, field_names_of, client_dependent) -> Translation:
    """Render an OSSelect as parameterized backend SQL.

    ``field_names_of(table)`` returns the dictionary field list (used
    to expand ``*`` without MANDT); ``client_dependent(table)`` says
    whether to inject the MANDT predicate for that table reference.
    """
    builder = _Builder()

    def binding(table: str, alias: str | None) -> str:
        return alias or table

    select_parts: list[str] = []
    for item in stmt.items:
        if isinstance(item, OSStar):
            table_bind = binding(stmt.table, stmt.alias)
            if stmt.joins:
                raise OpenSqlError("SELECT * is single-table only")
            select_parts.extend(
                f"{table_bind}.{name}" for name in field_names_of(stmt.table)
            )
        elif isinstance(item, OSAgg):
            arg = "*" if item.arg is None else builder.field(item.arg)
            select_parts.append(f"{item.func}({arg})")
        else:
            select_parts.append(builder.field(item))

    from_parts = [stmt.table + (f" {stmt.alias}" if stmt.alias else "")]
    join_conds: list[str] = []
    for join in stmt.joins:
        on_parts = [
            f"{builder.field(c.left)} {c.op} {builder.operand(c.right)}"
            for c in join.on
        ]
        from_parts.append(
            f"JOIN {join.table}"
            + (f" {join.alias}" if join.alias else "")
            + " ON " + " AND ".join(on_parts)
        )

    where_parts: list[str] = []
    # Client predicates for every client-dependent table reference.
    refs = [(stmt.table, stmt.alias)] + [(j.table, j.alias)
                                         for j in stmt.joins]
    for table, alias in refs:
        if client_dependent(table):
            builder.params.append((CLIENT,))
            where_parts.append(f"{binding(table, alias)}.mandt = ?")
    if stmt.where is not None:
        where_parts.append(builder.cond(stmt.where))
    where_parts.extend(join_conds)

    sql = "SELECT " + ", ".join(select_parts)
    sql += " FROM " + " ".join(from_parts)
    if where_parts:
        sql += " WHERE " + " AND ".join(where_parts)
    if stmt.group_by:
        sql += " GROUP BY " + ", ".join(
            builder.field(f) for f in stmt.group_by
        )
    if stmt.order_by:
        rendered = [
            builder.field(f) + (" DESC" if desc else "")
            for f, desc in stmt.order_by
        ]
        sql += " ORDER BY " + ", ".join(rendered)
    limit = 1 if stmt.single else stmt.up_to
    if limit is not None:
        sql += f" LIMIT {limit}"
    return Translation(sql, builder.params)
