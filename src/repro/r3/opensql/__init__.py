"""Open SQL: ABAP's portable, dictionary-mediated query dialect."""

from repro.r3.opensql.executor import OpenSql, OSResult

__all__ = ["OpenSql", "OSResult"]
