"""Open SQL execution.

Transparent tables (and views) take the *pushdown* path: the statement
is translated to parameterized SQL and shipped over the database
interface — in Release 3.0 including joins and simple aggregates.

Pool and cluster tables take the *encapsulated* path: the app server
fetches encoded physical records, decodes them with the dictionary,
and evaluates the predicate itself.  Joins, grouping and aggregation
are never available on encapsulated tables — the reports must do that
work in ABAP, which is precisely the overhead the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expr import like_to_regex
from repro.r3.ddic import DDicTable, TableKind
from repro.r3.errors import OpenSqlError
from repro.r3.opensql.ast import (
    OSBetween,
    OSBool,
    OSComp,
    OSCond,
    OSField,
    OSHost,
    OSIn,
    OSLike,
    OSLiteral,
    OSNot,
    OSSelect,
    OSStar,
)
from repro.r3.opensql.parser import parse_open_sql
from repro.r3.opensql.translate import translate
from repro.r3.pools import ClusterContainer, PoolContainer


@dataclass
class OSResult:
    fields: list[str]
    rows: list[tuple]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None


class OpenSql:
    def __init__(self, r3) -> None:
        self._r3 = r3

    # -- public API -------------------------------------------------------

    def select(self, text: str, host_vars: dict[str, object] | None = None
               ) -> OSResult:
        """SELECT ... ENDSELECT: run the statement, return all rows."""
        with self._r3.tracer.span("opensql.select", statement=text) as span:
            with self._r3.tracer.span("opensql.parse"):
                stmt = parse_open_sql(text)
            result = self._run(stmt, host_vars or {})
            span.set(rows=len(result.rows))
            return result

    def select_single(self, text: str,
                      host_vars: dict[str, object] | None = None
                      ) -> tuple | None:
        """SELECT SINGLE: at most one row, table buffer aware."""
        with self._r3.tracer.span("opensql.select_single",
                                  statement=text) as span:
            with self._r3.tracer.span("opensql.parse"):
                stmt = parse_open_sql(text)
            if not stmt.single:
                stmt.single = True
            host_vars = host_vars or {}
            buffered = self._try_buffer(stmt, host_vars)
            if buffered is not None:
                hit, row = buffered
                if hit:
                    span.set(path="buffer", rows=1 if row else 0)
                    return row
            result = self._run(stmt, host_vars)
            row = result.first()
            if buffered is not None:
                self._store_buffer(stmt, host_vars, row)
            span.set(rows=1 if row else 0)
            return row

    # -- feature gates -------------------------------------------------------

    def _check_gates(self, stmt: OSSelect, kinds: list[TableKind]) -> None:
        version = self._r3.version
        if stmt.has_joins and not version.open_sql_joins:
            raise OpenSqlError(
                "joins in Open SQL require Release 3.0 "
                "(use nested SELECT loops or a join view in 2.2)"
            )
        if (stmt.has_aggregates or stmt.group_by) and \
                not version.open_sql_aggregates:
            raise OpenSqlError(
                "aggregates/GROUP BY in Open SQL require Release 3.0"
            )
        encapsulated = any(k is not TableKind.TRANSPARENT for k in kinds)
        if encapsulated:
            if stmt.has_joins:
                raise OpenSqlError(
                    "encapsulated tables cannot participate in joins"
                )
            if stmt.has_aggregates or stmt.group_by:
                raise OpenSqlError(
                    "aggregates can only be applied to transparent tables"
                )

    # -- dispatch ---------------------------------------------------------------

    def _run(self, stmt: OSSelect, host_vars: dict[str, object]) -> OSResult:
        r3 = self._r3
        kinds = []
        refs = [stmt.table] + [j.table for j in stmt.joins]
        for name in refs:
            if r3.ddic.has(name):
                kinds.append(r3.ddic.lookup(name).kind)
            elif r3.db.catalog.has_view(name):
                kinds.append(TableKind.TRANSPARENT)
            else:
                raise OpenSqlError(f"unknown table or view {name}")
        self._check_gates(stmt, kinds)
        if kinds[0] is TableKind.TRANSPARENT:
            r3.tracer.current().set(path="pushdown", table=stmt.table)
            return self._run_pushdown(stmt, host_vars)
        table = r3.ddic.lookup(stmt.table)
        if table.kind is TableKind.POOL:
            r3.tracer.current().set(path="pool", table=stmt.table)
            return self._run_pool(stmt, table, host_vars)
        r3.tracer.current().set(path="cluster", table=stmt.table)
        return self._run_cluster(stmt, table, host_vars)

    # -- pushdown path --------------------------------------------------------

    def _field_names_of(self, table_name: str) -> list[str]:
        r3 = self._r3
        if r3.ddic.has(table_name):
            return r3.ddic.lookup(table_name).field_names
        raise OpenSqlError(f"SELECT * is not supported on view {table_name}")

    def _client_dependent(self, table_name: str) -> bool:
        r3 = self._r3
        if r3.ddic.has(table_name):
            return True
        # Join views expose MANDT; restrict on it there too.
        if r3.db.catalog.has_view(table_name):
            return True
        return False

    def _run_pushdown(self, stmt: OSSelect,
                      host_vars: dict[str, object]) -> OSResult:
        r3 = self._r3
        with r3.tracer.span("opensql.translate"):
            translation = translate(stmt, self._field_names_of,
                                    self._client_dependent)
            params = translation.bind(r3.client, host_vars)
        result = r3.dbif.execute_param(translation.sql, params)
        r3.charge_abap(len(result.rows))
        return OSResult(result.columns, result.rows)

    # -- encapsulated paths ---------------------------------------------------------

    def _run_pool(self, stmt: OSSelect, table: DDicTable,
                  host_vars: dict[str, object]) -> OSResult:
        r3 = self._r3
        container = r3.pools[table.container]
        eq = self._eq_conditions(stmt.where, host_vars)
        key_names = [f.name.lower() for f in table.key_fields]
        if key_names and all(name in eq for name in key_names):
            # Exact logical key: probe the pool by VARKEY.
            varkey_parts = [r3.client] + [str(eq[name]) for name in key_names]
            varkey = "|".join(varkey_parts)
            result = r3.dbif.execute_param(
                f"SELECT vardata FROM {container.name} "
                f"WHERE tabname = ? AND varkey = ?",
                (table.name, varkey),
            )
        else:
            result = r3.dbif.execute_param(
                f"SELECT vardata FROM {container.name} WHERE tabname = ?",
                (table.name,),
            )
        rows = []
        with r3.tracer.span("opensql.decode", kind="pool",
                            table=table.name) as span:
            for (vardata,) in result.rows:
                r3.charge_decode()
                full = PoolContainer.decode(table, vardata)
                if full[0] != r3.client:
                    continue
                rows.append(full[1:])  # strip MANDT
            span.set(records=len(result.rows), rows=len(rows))
        return self._finish_app_side(stmt, table, rows, host_vars)

    def _run_cluster(self, stmt: OSSelect, table: DDicTable,
                     host_vars: dict[str, object]) -> OSResult:
        r3 = self._r3
        container = r3.clusters[table.container]
        eq = self._eq_conditions(stmt.where, host_vars)
        cluster_key_names = [f.name.lower() for f in container.key_fields]
        if all(name in eq for name in cluster_key_names):
            predicates = " AND ".join(
                f"{name} = ?" for name in cluster_key_names
            )
            sql = (f"SELECT vardata FROM {container.name} "
                   f"WHERE mandt = ? AND {predicates} ORDER BY pagno")
            params = [r3.client] + [eq[name] for name in cluster_key_names]
            result = r3.dbif.execute_param(sql, params)
        else:
            result = r3.dbif.execute_param(
                f"SELECT vardata FROM {container.name} WHERE mandt = ?",
                (r3.client,),
            )
        rows = []
        with r3.tracer.span("opensql.decode", kind="cluster",
                            table=table.name) as span:
            for (vardata,) in result.rows:
                for logical in ClusterContainer.decode_page(table, vardata):
                    r3.charge_decode()
                    rows.append(logical)
            span.set(pages=len(result.rows), rows=len(rows))
        return self._finish_app_side(stmt, table, rows, host_vars)

    def _finish_app_side(self, stmt: OSSelect, table: DDicTable,
                         rows: list[tuple],
                         host_vars: dict[str, object]) -> OSResult:
        """Residual filter, projection, sort in the app server."""
        r3 = self._r3
        positions = {name: i for i, name in enumerate(table.field_names)}

        def getter(field: OSField, row: tuple) -> object:
            try:
                return row[positions[field.name.lower()]]
            except KeyError:
                raise OpenSqlError(
                    f"no field {field.name} in {table.name}"
                ) from None

        filtered = []
        for row in rows:
            r3.charge_abap(1)
            if stmt.where is None or _eval_cond(stmt.where, row, getter,
                                                host_vars):
                filtered.append(row)
        if stmt.order_by:
            for field, descending in reversed(stmt.order_by):
                filtered.sort(
                    key=lambda row: getter(field, row), reverse=descending
                )
            r3.charge_abap(len(filtered))
        if isinstance(stmt.items[0], OSStar):
            fields = list(table.field_names)
            projected = filtered
        else:
            fields = [item.name for item in stmt.items]  # type: ignore
            projected = [
                tuple(getter(item, row) for item in stmt.items)  # type: ignore
                for row in filtered
            ]
        limit = 1 if stmt.single else stmt.up_to
        if limit is not None:
            projected = projected[:limit]
        return OSResult(fields, projected)

    # -- buffering ---------------------------------------------------------------

    def _buffer_key(self, stmt: OSSelect,
                    host_vars: dict[str, object]) -> tuple | None:
        r3 = self._r3
        if stmt.joins or not r3.ddic.has(stmt.table):
            return None
        table = r3.ddic.lookup(stmt.table)
        eq = self._eq_conditions(stmt.where, host_vars)
        key_names = [f.name.lower() for f in table.key_fields]
        if not key_names or not all(name in eq for name in key_names):
            return None
        return (r3.client,) + tuple(eq[name] for name in key_names)

    def _try_buffer(self, stmt: OSSelect, host_vars: dict[str, object]
                    ) -> tuple[bool, tuple | None] | None:
        r3 = self._r3
        if r3.buffers.active_for(stmt.table) is None:
            return None
        key = self._buffer_key(stmt, host_vars)
        if key is None:
            return None
        _active, hit, row = r3.buffers.lookup(stmt.table, key)
        return (hit, row)

    def _store_buffer(self, stmt: OSSelect, host_vars: dict[str, object],
                      row: tuple | None) -> None:
        key = self._buffer_key(stmt, host_vars)
        if key is not None:
            self._r3.buffers.store(stmt.table, key, row)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _eq_conditions(cond: OSCond | None,
                       host_vars: dict[str, object]) -> dict[str, object]:
        """field -> value for top-level AND-connected equality tests."""
        out: dict[str, object] = {}

        def visit(node: OSCond | None) -> None:
            if node is None:
                return
            if isinstance(node, OSBool) and node.op == "AND":
                visit(node.left)
                visit(node.right)
            elif isinstance(node, OSComp) and node.op == "=":
                value = _operand_value(node.right, None, None, host_vars)
                if not isinstance(node.right, OSField):
                    out[node.left.name.lower()] = value

        visit(cond)
        return out


def _operand_value(operand, row, getter, host_vars):
    if isinstance(operand, OSLiteral):
        return operand.value
    if isinstance(operand, OSHost):
        if operand.name not in host_vars:
            raise OpenSqlError(f"unbound host variable :{operand.name}")
        return host_vars[operand.name]
    if isinstance(operand, OSField):
        if getter is None:
            return None
        return getter(operand, row)
    raise OpenSqlError(f"bad operand {operand!r}")


def _eval_cond(node: OSCond, row: tuple, getter, host_vars) -> bool:
    """App-server-side predicate evaluation on a decoded row."""
    if isinstance(node, OSBool):
        if node.op == "AND":
            return (_eval_cond(node.left, row, getter, host_vars)
                    and _eval_cond(node.right, row, getter, host_vars))
        return (_eval_cond(node.left, row, getter, host_vars)
                or _eval_cond(node.right, row, getter, host_vars))
    if isinstance(node, OSNot):
        return not _eval_cond(node.operand, row, getter, host_vars)
    if isinstance(node, OSComp):
        left = getter(node.left, row)
        right = _operand_value(node.right, row, getter, host_vars)
        if left is None or right is None:
            return False
        if node.op == "=":
            return left == right
        if node.op == "<>":
            return left != right
        if node.op == "<":
            return left < right
        if node.op == "<=":
            return left <= right
        if node.op == ">":
            return left > right
        return left >= right
    if isinstance(node, OSLike):
        left = getter(node.left, row)
        pattern = _operand_value(node.pattern, row, getter, host_vars)
        if left is None or pattern is None:
            return False
        matched = like_to_regex(pattern).match(left) is not None
        return not matched if node.negated else matched
    if isinstance(node, OSIn):
        left = getter(node.left, row)
        values = [
            _operand_value(item, row, getter, host_vars)
            for item in node.items
        ]
        found = left in values
        return not found if node.negated else found
    if isinstance(node, OSBetween):
        left = getter(node.left, row)
        low = _operand_value(node.low, row, getter, host_vars)
        high = _operand_value(node.high, row, getter, host_vars)
        if left is None or low is None or high is None:
            return False
        result = low <= left <= high
        return not result if node.negated else result
    raise OpenSqlError(f"bad condition node {node!r}")
