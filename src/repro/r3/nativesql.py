"""Native SQL: the EXEC SQL ... ENDEXEC passthrough.

Native SQL ships literal SQL text straight to the RDBMS: the optimizer
sees real values (good plans), vendor-specific features are available,
and no dictionary mediation happens — which also means encapsulated
(pool/cluster) tables are invisible, the MANDT client predicate must
be written by hand, and the report is neither safe nor portable
(paper Section 2.3).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.database import Result
from repro.engine.expr import SubqueryExpr
from repro.engine.sql.ast import (
    DeleteStmt,
    InsertStmt,
    JoinRef,
    SelectStmt,
    TableRef,
    UpdateStmt,
)
from repro.engine.sql.parser import parse_sql
from repro.r3.ddic import TableKind
from repro.r3.errors import NativeSqlError


def _referenced_tables(stmt) -> set[str]:
    """All base-table names a parsed statement touches."""
    names: set[str] = set()

    def visit_from_item(item) -> None:
        if isinstance(item, TableRef):
            names.add(item.name.lower())
        elif isinstance(item, JoinRef):
            visit_from_item(item.left)
            visit_from_item(item.right)

    def visit_select(select: SelectStmt) -> None:
        for item in select.from_items:
            visit_from_item(item)
        exprs = []
        for sel_item in select.items:
            expr = getattr(sel_item, "expr", None)
            if expr is not None:
                exprs.append(expr)
        if select.where is not None:
            exprs.append(select.where)
        if select.having is not None:
            exprs.append(select.having)
        exprs.extend(select.group_by)
        exprs.extend(o.expr for o in select.order_by)
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, SubqueryExpr):
                    visit_select(node.query)

    if isinstance(stmt, SelectStmt):
        visit_select(stmt)
    elif isinstance(stmt, (InsertStmt, DeleteStmt, UpdateStmt)):
        names.add(stmt.table.lower())
    return names


class NativeSql:
    def __init__(self, r3) -> None:
        self._r3 = r3

    def exec_sql(self, sql: str, params: Sequence[object] = ()) -> Result:
        """EXEC SQL: run literal SQL directly against the back end.

        Raises :class:`NativeSqlError` if the statement references an
        encapsulated table — those only exist inside pool/cluster
        containers and cannot be reached without the dictionary.
        """
        r3 = self._r3
        stmt = parse_sql(sql)
        for name in _referenced_tables(stmt):
            if r3.ddic.has(name):
                table = r3.ddic.lookup(name)
                if table.kind is not TableKind.TRANSPARENT:
                    raise NativeSqlError(
                        f"{name.upper()} is a {table.kind.value} table; "
                        f"EXEC SQL cannot access encapsulated tables"
                    )
        r3.metrics.count("nativesql.statements")
        result = r3.dbif.execute_literal(sql, params)
        # The EXEC SQL PERFORMING loop still processes rows in ABAP.
        r3.charge_abap(len(result.rows))
        return result
