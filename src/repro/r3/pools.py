"""Physical storage of pool and cluster tables.

Pool tables share one physical container of shape
``(TABNAME, VARKEY, VARDATA)``: one physical row per logical row, the
logical key flattened into VARKEY and the remaining fields encoded
into VARDATA.

Cluster tables pack *many* logical rows that share a cluster key into
few physical rows of shape ``(MANDT, <cluster key>, PAGNO, VARDATA)``
— for KONV, all pricing conditions of one document land in one cluster
record, which is why the KONV cluster is only readable through the
application server and why converting it to a transparent table
(Release 3.0) triples its footprint.

Encoded rows can only be interpreted with the data dictionary; each
decoded logical row charges the app server's decode CPU cost.
"""

from __future__ import annotations

import datetime
from typing import Iterator

from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType, TypeKind
from repro.r3.ddic import DDicField, DDicTable
from repro.r3.errors import DDicError

FIELD_SEP = "\x1f"
ROW_SEP = "\x1e"
NULL_MARK = "\x00"

#: VARDATA capacity of one physical cluster page
CLUSTER_PAGE_CHARS = 3000


def encode_value(value: object) -> str:
    if value is None:
        return NULL_MARK
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def decode_value(text: str, sql_type: SqlType) -> object:
    if text == NULL_MARK:
        return None
    kind = sql_type.kind
    if kind is TypeKind.INTEGER:
        return int(text)
    if kind is TypeKind.DECIMAL:
        return float(text)
    if kind is TypeKind.DATE:
        return datetime.date.fromisoformat(text)
    return text


def encode_row(values: tuple) -> str:
    return FIELD_SEP.join(encode_value(v) for v in values)


def decode_row(text: str, fields: list[DDicField]) -> tuple:
    parts = text.split(FIELD_SEP)
    if len(parts) != len(fields):
        raise DDicError(
            f"corrupt encoded row: {len(parts)} parts, "
            f"{len(fields)} fields expected"
        )
    return tuple(
        decode_value(part, f.sql_type) for part, f in zip(parts, fields)
    )


class PoolContainer:
    """One physical pool table holding several logical pool tables."""

    def __init__(self, name: str) -> None:
        self.name = name.lower()

    def physical_schema(self) -> TableSchema:
        return TableSchema(self.name, [
            Column("tabname", SqlType.char(16), nullable=False),
            Column("varkey", SqlType.varchar(64), nullable=False),
            Column("vardata", SqlType.varchar(512), nullable=False),
        ], primary_key=["tabname", "varkey"])

    @staticmethod
    def varkey_of(table: DDicTable, row: tuple) -> str:
        """Flatten MANDT + logical key fields into the VARKEY string.

        ``row`` is the full logical row *including* the leading MANDT.
        """
        parts = [encode_value(row[0])]
        for f in table.key_fields:
            parts.append(encode_value(row[1 + table.field_index(f.name)]))
        return "|".join(parts)

    def physical_row(self, table: DDicTable, row: tuple) -> tuple:
        return (table.name, self.varkey_of(table, row), encode_row(row))

    @staticmethod
    def decode(table: DDicTable, vardata: str) -> tuple:
        """Logical row (incl. MANDT) from a VARDATA string."""
        mandt_field = DDicField("mandt", SqlType.char(3))
        return decode_row(vardata, [mandt_field] + table.fields)


class ClusterContainer:
    """One physical cluster table for one (or more) logical tables.

    ``key_fields`` are the cluster key columns *after* MANDT; the
    physical primary key is (MANDT, <key fields>, PAGNO).
    """

    def __init__(self, name: str, key_fields: list[DDicField]) -> None:
        self.name = name.lower()
        self.key_fields = key_fields

    def physical_schema(self) -> TableSchema:
        columns = [Column("mandt", SqlType.char(3), nullable=False)]
        columns.extend(
            Column(f.name.lower(), f.sql_type, nullable=False)
            for f in self.key_fields
        )
        columns.append(Column("pagno", SqlType.integer(), nullable=False))
        columns.append(
            Column("vardata", SqlType.varchar(CLUSTER_PAGE_CHARS),
                   nullable=False)
        )
        keys = ["mandt"] + [f.name.lower() for f in self.key_fields] + \
            ["pagno"]
        return TableSchema(self.name, columns, primary_key=keys)

    def physical_rows(self, mandt: str, cluster_key: tuple,
                      logical_rows: list[tuple]) -> list[tuple]:
        """Pack logical rows (without MANDT) into physical page rows."""
        pages: list[tuple] = []
        current: list[str] = []
        current_len = 0
        pagno = 0

        def flush() -> None:
            nonlocal pagno, current, current_len
            if current:
                pages.append(
                    (mandt, *cluster_key, pagno, ROW_SEP.join(current))
                )
                pagno += 1
                current = []
                current_len = 0

        for row in logical_rows:
            encoded = encode_row(row)
            if current_len + len(encoded) + 1 > CLUSTER_PAGE_CHARS:
                flush()
            current.append(encoded)
            current_len += len(encoded) + 1
        flush()
        return pages

    @staticmethod
    def decode_page(table: DDicTable, vardata: str) -> Iterator[tuple]:
        """Logical rows (without MANDT) from one physical page."""
        if not vardata:
            return
        for encoded in vardata.split(ROW_SEP):
            yield decode_row(encoded, table.fields)
