"""Multi-app-server scale-out: balancer, DDLOG coherence, failover.

The paper measures one application server, but real R/3 installations
reach their user counts by adding app servers in front of the one
RDBMS (paper Figure 1 shows the tiers; Section 2.3 describes the
*periodic* buffer synchronisation that distribution forces).  This
module models that scale-out on the shared simulated clock:

* :class:`R3Cluster` — N :class:`~repro.r3.appserver.R3System`-style
  servers (each with its own dispatcher, work-process pool, table
  buffers, cursor cache and DBIF circuit breaker) attached to *one*
  engine/WAL.  Server 0 is the primary whose schema/dictionary the
  secondaries share.

* :class:`LoginBalancer` — routes sessions to healthy servers, either
  ``round_robin`` (each login picks the next healthy server) or
  ``sticky`` (a session is pinned at first login and re-pinned only
  when its server goes down — counted as a re-route).

* :class:`DdLog` / :class:`BufferCoherence` — R/3's DDLOG table: a
  write through any server appends an invalidation record that peer
  servers replay lazily, at buffered-read time, whenever more than one
  sync period has passed since their last replay.  Replay-before-read
  makes the staleness bound *structural*: a buffered read is served at
  most one sync period after the last replay, so no read can return
  data staler than ``sync_interval_s`` (tracked in
  ``max_read_staleness_s`` and asserted by the chaos scenario).  The
  writing server invalidates its own buffer synchronously — local
  reads always see local writes.

* Failover — :meth:`R3Cluster.kill` marks a server down (its queued
  dialog steps are drained by the throughput scheduler and re-routed
  through the balancer, spending the per-request requeue budget);
  :meth:`R3Cluster.rejoin` charges the restart time and cold-starts
  the server: empty table buffers, empty cursor cache, fresh circuit
  breaker, coherence cursor jumped to the DDLOG head.

A cluster of one server with coherence disabled leaves every hot path
untouched (the only cluster hook is an attribute-is-None check), so
``n_servers=1`` is tick-identical to the plain single-server system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.monitor.alerts import cluster_alert_rules
from repro.r3.appserver import R3System

#: routing policies the login balancer understands
ROUTING_POLICIES = ("round_robin", "sticky")


class ClusterDownError(RuntimeError):
    """No healthy application server is left to route to."""


# -- DDLOG ----------------------------------------------------------------


@dataclass(frozen=True)
class DdLogRecord:
    """One invalidation record in the shared DDLOG."""

    seq: int
    table: str
    origin: str                #: name of the server that wrote
    t: float                   #: simulated append time


class DdLog:
    """The shared, append-only buffer-invalidation log (R/3's DDLOG).

    Lives on the database side: every server appends through its DBIF
    write path and replays from any position.  Records are totally
    ordered by ``seq``; the log is never truncated within a run (a run
    is minutes of simulated time — real DDLOG housekeeping is a
    background job out of scope here).
    """

    def __init__(self) -> None:
        self.records: list[DdLogRecord] = []

    @property
    def head_seq(self) -> int:
        return len(self.records)

    def append(self, table: str, origin: str, t: float) -> DdLogRecord:
        record = DdLogRecord(seq=len(self.records) + 1,
                             table=table.lower(), origin=origin, t=t)
        self.records.append(record)
        return record

    def records_since(self, seq: int) -> list[DdLogRecord]:
        """All records with ``seq`` greater than the given position."""
        return self.records[seq:]


class BufferCoherence:
    """One server's view of the shared DDLOG.

    Attached as ``r3.coherence``; the buffer manager calls
    :meth:`before_read` in front of every buffered lookup and the
    write path calls :meth:`note_write` after its synchronous local
    invalidation.  All costs are charged to the shared clock.
    """

    def __init__(self, r3, ddlog: DdLog, sync_interval_s: float) -> None:
        if sync_interval_s <= 0:
            raise ValueError(
                f"sync_interval_s must be > 0: {sync_interval_s}")
        self._r3 = r3
        self.ddlog = ddlog
        self.sync_interval_s = sync_interval_s
        #: DDLOG position this server has replayed up to
        self.applied_seq = 0
        #: simulated time of the last replay
        self.last_sync_t = r3.clock.now
        #: worst staleness bound any buffered read was served under
        self.max_read_staleness_s = 0.0
        self.syncs = 0
        self.replayed = 0

    # -- write side ------------------------------------------------------

    def note_write(self, table_name: str) -> None:
        """Append one invalidation record (the local buffer was already
        invalidated synchronously by the caller)."""
        r3 = self._r3
        r3.clock.charge(r3.params.ddlog_append_s)
        self.ddlog.append(table_name, origin=r3.name, t=r3.clock.now)
        r3.metrics.count("cluster.ddlog_invalidations")

    # -- read side -------------------------------------------------------

    def before_read(self) -> None:
        """Replay pending invalidations if the sync period elapsed.

        The lag between the last replay and this read is the upper
        bound on how stale the served buffer content can be; syncing
        whenever it reaches the period keeps every read's bound
        strictly below one sync period.
        """
        lag = self._r3.clock.now - self.last_sync_t
        if lag >= self.sync_interval_s:
            self.sync()
            lag = 0.0
        if lag > self.max_read_staleness_s:
            self.max_read_staleness_s = lag

    def sync(self) -> int:
        """Replay every pending peer record; returns how many."""
        r3 = self._r3
        now = r3.clock.now
        r3.clock.charge(r3.params.ddlog_sync_s)
        pending = self.ddlog.records_since(self.applied_seq)
        self.applied_seq = self.ddlog.head_seq
        self.last_sync_t = now
        self.syncs += 1
        replayed = 0
        for record in pending:
            if record.origin == r3.name:
                continue           # own writes were applied synchronously
            r3.clock.charge(r3.params.ddlog_replay_record_s)
            replayed += 1
            if r3.buffers.invalidate(record.table):
                # The buffer held (stale) entries for a table a peer
                # changed: without the replay the next lookup could
                # have returned them.
                r3.metrics.count("cluster.stale_reads_prevented")
        self.replayed += replayed
        return replayed

    def cold_start(self) -> None:
        """Rejoin after a crash: buffers are empty, so history in the
        DDLOG is moot — jump the cursor to the head."""
        self.applied_seq = self.ddlog.head_seq
        self.last_sync_t = self._r3.clock.now


# -- login load balancer --------------------------------------------------


class LoginBalancer:
    """Deterministic session routing over the cluster's healthy servers.

    ``round_robin``: every :meth:`route` call advances a cursor over
    the server list, skipping servers that are down.  ``sticky``: a
    session key is pinned to the server its first login picked (via
    the same cursor) and keeps going back there until that server goes
    down, at which point the next route re-pins it — one counted
    re-route per session per failover, the R/3 SMLG behaviour.
    """

    def __init__(self, cluster: "R3Cluster",
                 policy: str = "round_robin") -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {policy!r} "
                             f"(choose from {ROUTING_POLICIES})")
        self._cluster = cluster
        self.policy = policy
        self.sessions: dict[object, int] = {}
        self.sessions_rerouted = 0
        self._cursor = 0

    def _next_healthy(self) -> int:
        servers = self._cluster.servers
        n = len(servers)
        for probe in range(n):
            index = (self._cursor + probe) % n
            if servers[index].up:
                self._cursor = (index + 1) % n
                return index
        raise ClusterDownError(
            f"all {n} application servers are down")

    def route(self, session: object):
        """Pick the server that serves this session's next dialog step."""
        cluster = self._cluster
        if self.policy == "sticky":
            index = self.sessions.get(session)
            if index is not None:
                if cluster.servers[index].up:
                    return cluster.servers[index]
                index = self._next_healthy()
                self.sessions[session] = index
                self.sessions_rerouted += 1
                cluster.metrics.count("cluster.sessions_rerouted")
                return cluster.servers[index]
            index = self._next_healthy()
            self.sessions[session] = index
            return cluster.servers[index]
        index = self._next_healthy()
        return cluster.servers[index]


# -- the cluster ----------------------------------------------------------


@dataclass
class ServerKill:
    """One failover event for a cluster throughput run.

    The scheduler checks events at round boundaries: once ``at_s``
    simulated seconds *of the run* have elapsed (the shared clock
    already carries load time, so event times are run-relative) the
    server is killed — queued steps drained and re-routed; if
    ``rejoin_after_s`` is set the server rejoins — buffer cold start,
    restart time charged — once that many further seconds have passed.
    """

    at_s: float
    server: int = 1
    rejoin_after_s: float | None = None
    killed: bool = field(default=False, compare=False)
    rejoined: bool = field(default=False, compare=False)
    #: simulated time the kill actually landed (a round boundary)
    kill_t: float = field(default=0.0, compare=False)


class R3Cluster:
    """N application servers sharing one engine on one clock."""

    def __init__(self, primary: R3System, n_servers: int = 2,
                 sync_period_s: float | None = None,
                 routing: str = "round_robin") -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1: {n_servers}")
        self.primary = primary
        self.db = primary.db
        self.clock = primary.clock
        self.metrics = primary.metrics
        self.monitor = primary.monitor
        self.sync_period_s = sync_period_s
        self.servers: list[R3System] = [primary]
        primary.up = True
        for index in range(1, n_servers):
            server = R3System(version=primary.version,
                              client=primary.client,
                              database=primary.db,
                              name=f"as{index}")
            # Secondaries share the primary's activated schema: the
            # data dictionary and the pool/cluster containers are
            # metadata, identical on every server of an installation.
            server.ddic = primary.ddic
            server.pools = primary.pools
            server.clusters = primary.clusters
            server.up = True
            self.servers.append(server)
        self.ddlog = DdLog()
        if sync_period_s is not None and n_servers > 1:
            for server in self.servers:
                server.coherence = BufferCoherence(
                    server, self.ddlog, sync_period_s)
        self.balancer = LoginBalancer(self, routing)
        self.monitor.attach_source(
            "servers_down", lambda: float(self.servers_down))
        if not any(rule.name == "appserver_down"
                   for rule in self.monitor.alerts.rules):
            self.monitor.alerts.add_rules(cluster_alert_rules())
        # Replicate the primary's buffer configuration so every server
        # starts with the same buffered-table set.
        for table in primary.buffers.active_tables():
            max_bytes = primary.buffers.active_for(table).max_bytes
            for server in self.servers[1:]:
                server.buffers.configure(table, max_bytes)

    # -- introspection ---------------------------------------------------

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def servers_down(self) -> int:
        return sum(1 for server in self.servers if not server.up)

    def healthy(self) -> list[R3System]:
        return [server for server in self.servers if server.up]

    @property
    def max_read_staleness_s(self) -> float:
        """Worst staleness bound any buffered read on any server was
        served under (0.0 with coherence disabled)."""
        return max((server.coherence.max_read_staleness_s
                    for server in self.servers
                    if server.coherence is not None), default=0.0)

    def buffer_quality(self) -> float | None:
        """Current-generation buffer hit ratio across all servers."""
        lookups = 0
        hits = 0
        for server in self.servers:
            for table in server.buffers.active_tables():
                window = server.buffers.active_for(table).window
                lookups += window.lookups
                hits += window.hits
        if not lookups:
            return None
        return hits / lookups

    def configure_buffers(self, tables: dict[str, int]) -> None:
        """Activate table buffering for ``{table: max_bytes}`` on every
        server of the cluster."""
        for table, max_bytes in tables.items():
            for server in self.servers:
                server.buffers.configure(table, max_bytes)

    # -- failover --------------------------------------------------------

    def kill(self, index: int) -> R3System:
        """Crash one server: it stops taking and serving requests.

        The caller (the cluster scheduler) drains the dead server's
        dispatcher queue and re-routes through the balancer; queued
        steps never started (roll-in is the transaction boundary), so
        the re-route is idempotent.
        """
        server = self.servers[index]
        if index == 0:
            raise ValueError("server 0 is the primary instance "
                             "(message server); it cannot be killed")
        if not server.up:
            raise ValueError(f"{server.name} is already down")
        server.up = False
        self.metrics.count("cluster.server_crashes")
        with server.tracer.span("cluster.kill", server=server.name):
            pass
        return server

    def rejoin(self, index: int) -> R3System:
        """Restart a crashed server and put it back in rotation.

        Charges the restart time and cold-starts every per-process
        memory: table buffers, DBIF cursor cache, circuit breaker, and
        the DDLOG cursor (empty buffers have nothing stale to
        invalidate, so the cursor jumps to the head).
        """
        server = self.servers[index]
        if server.up:
            raise ValueError(f"{server.name} is already up")
        self.clock.charge(server.params.appserver_restart_s)
        server.buffers.clear_all()
        server.dbif.cold_start()
        if server.coherence is not None:
            server.coherence.cold_start()
        server.up = True
        self.metrics.count("cluster.server_rejoins")
        with server.tracer.span("cluster.rejoin", server=server.name):
            pass
        return server


def build_sap_cluster(data, version, n_servers: int = 2,
                      params=None, sync_period_s: float | None = None,
                      routing: str = "round_robin",
                      buffered_tables: dict[str, int] | None = None
                      ) -> R3Cluster:
    """A loaded SAP installation scaled out to ``n_servers``.

    Builds the primary exactly like
    :func:`~repro.core.powertest.build_sap_system` (so the engine-side
    state is identical to the single-server runs), then attaches the
    secondaries, the balancer, and — when ``sync_period_s`` is set and
    there is more than one server — DDLOG coherence.
    ``buffered_tables`` maps table names to buffer byte budgets,
    configured on every server.
    """
    from repro.core.powertest import build_sap_system

    primary = build_sap_system(data, version, params=params)
    cluster = R3Cluster(primary, n_servers=n_servers,
                        sync_period_s=sync_period_s, routing=routing)
    if buffered_tables:
        cluster.configure_buffers(buffered_tables)
    return cluster


__all__ = [
    "BufferCoherence",
    "ClusterDownError",
    "DdLog",
    "DdLogRecord",
    "LoginBalancer",
    "R3Cluster",
    "ROUTING_POLICIES",
    "ServerKill",
    "build_sap_cluster",
]
