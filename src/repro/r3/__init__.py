"""SAP R/3 application-server simulator.

Models the pieces of R/3 the paper's measurements depend on:

* the data dictionary with transparent, pool and cluster tables
  (:mod:`repro.r3.ddic`, :mod:`repro.r3.pools`),
* the database interface with cursor caching and Open SQL's
  literal→parameter translation (:mod:`repro.r3.dbif`,
  :mod:`repro.r3.opensql`),
* Native SQL (EXEC SQL) passthrough (:mod:`repro.r3.nativesql`),
* the ABAP runtime used by reports: SELECT loops, internal tables,
  EXTRACT/SORT/LOOP AT END grouping (:mod:`repro.r3.abap`),
* application-server table buffers (:mod:`repro.r3.buffers`),
* the batch-input facility (:mod:`repro.r3.batchinput`),
* the dispatcher and work-process pool with admission control
  (:mod:`repro.r3.dispatcher`, :mod:`repro.r3.workproc`),
* the 2.2G → 3.0E upgrade (:mod:`repro.r3.upgrade`).
"""

from repro.r3.appserver import R3System, R3Version

__all__ = ["R3System", "R3Version"]
