"""The ABAP/4 database interface layer.

Every call from the application server to the RDBMS crosses this
interface (paper Figure 2).  The interface charges a round-trip per
call plus per-tuple/per-byte shipping for results — the costs that
dominate nested SELECT loops in 2.2-era Open SQL reports.

Open SQL statements arrive here already translated into parameterized
SQL; the interface keeps a cursor cache so re-executing the same
statement text reuses the prepared plan (cursor REOPEN), which is also
why the RDBMS optimizer never sees Open SQL literals.

Robustness: when the R/3 system has a fault injector attached, a round
trip may fail with a ``ConnectionLostError``.  The interface then
reconnects and retries with exponential backoff — every backoff second
is charged to the simulated clock (it is real elapsed time for the
user) and counted in the metrics.  Only after ``dbif_max_retries``
consecutive failures does the loss propagate, chained to the injected
fault.  A per-statement timeout (``statement_timeout_s``) arms a clock
deadline around execution and raises ``StatementTimeout`` with the
partial cost already charged.

A :class:`CircuitBreaker` guards the whole interface: when several
consecutive calls still fail *after* the retry ladder (a fault storm —
the backend is down, not hiccuping), the breaker opens and every
subsequent call fails fast with :class:`CircuitOpenError` instead of
walking one caller after another through the full backoff sequence
into the same dead backend.  After a cooldown of simulated time the
breaker half-opens and lets a probe through; a successful probe closes
it again.  On the happy path the breaker costs zero simulated ticks.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.engine.database import PreparedStatement, Result
from repro.engine.errors import (
    CircuitOpenError,
    ConnectionLostError,
    StatementTimeout,
    TransientError,
)


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open state machine over DBIF calls.

    *Closed*: calls flow; ``failure_threshold`` consecutive post-retry
    failures open the breaker.  *Open*: calls raise
    :class:`CircuitOpenError` immediately (no round trip, no backoff)
    until ``cooldown_s`` simulated seconds have passed.  *Half-open*:
    calls are let through as probes; ``halfopen_probes`` consecutive
    successes close the breaker, any failure reopens it with a fresh
    cooldown.  Statement timeouts are **not** failures — a slow query
    says nothing about the backend being down.

    Transitions count ``dbif.breaker.*`` metrics and emit a
    ``dbif.breaker`` trace span so a trace shows exactly when the
    breaker flipped relative to the workload.
    """

    def __init__(self, clock, metrics, tracer=None,
                 failure_threshold: int = 3, cooldown_s: float = 30.0,
                 halfopen_probes: int = 1) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0: {cooldown_s}")
        if halfopen_probes < 1:
            raise ValueError(
                f"halfopen_probes must be >= 1: {halfopen_probes}")
        self._clock = clock
        self._metrics = metrics
        self._tracer = tracer
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.halfopen_probes = halfopen_probes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_count = 0
        self._open_until = 0.0
        self._probe_successes = 0

    # -- call protocol -------------------------------------------------------

    def before_call(self) -> None:
        """Gate a DBIF call; raises ``CircuitOpenError`` while open."""
        if self.state is BreakerState.CLOSED:
            return
        if self.state is BreakerState.OPEN:
            if self._clock.now >= self._open_until:
                self._transition(BreakerState.HALF_OPEN,
                                 "cooldown elapsed")
                self._probe_successes = 0
                return
            self._metrics.count("dbif.breaker.fast_fails")
            raise CircuitOpenError(
                f"circuit open for another "
                f"{self._open_until - self._clock.now:.3f}s (simulated); "
                f"call shed without a round trip")
        # HALF_OPEN: let the probe through.

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.halfopen_probes:
                self._transition(BreakerState.CLOSED,
                                 f"{self._probe_successes} probe(s) "
                                 f"succeeded")
                self.consecutive_failures = 0
        elif self.state is BreakerState.CLOSED:
            self.consecutive_failures = 0

    def record_failure(self) -> None:
        self._metrics.count("dbif.breaker.failures")
        if self.state is BreakerState.HALF_OPEN:
            self._open(reason="half-open probe failed")
        elif self.state is BreakerState.CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._open(reason=f"{self.consecutive_failures} "
                                  f"consecutive failures")

    # -- transitions ---------------------------------------------------------

    def _open(self, reason: str) -> None:
        self._open_until = self._clock.now + self.cooldown_s
        self.opened_count += 1
        self._transition(BreakerState.OPEN, reason)

    def _transition(self, new: BreakerState, reason: str) -> None:
        old = self.state
        self.state = new
        self._metrics.count(f"dbif.breaker.{new.value}")
        if self._tracer is not None:
            with self._tracer.span("dbif.breaker",
                                   transition=f"{old.value}->{new.value}",
                                   reason=reason):
                pass


class DatabaseInterface:
    def __init__(self, r3) -> None:
        self._r3 = r3
        self._cursor_cache: dict[str, PreparedStatement] = {}
        #: global switch (ablation A2 turns cursor caching off)
        self.cache_enabled = True
        #: simulated-seconds budget per statement (None = no timeout)
        self.statement_timeout_s: float | None = None
        self.breaker = CircuitBreaker(
            r3.clock, r3.metrics, tracer=r3.tracer,
            failure_threshold=r3.params.breaker_failure_threshold,
            cooldown_s=r3.params.breaker_cooldown_s,
            halfopen_probes=r3.params.breaker_halfopen_probes)

    # -- parameterized path (Open SQL, cluster/pool physical reads) -------

    def execute_param(self, sql: str, params: Sequence[object] = (),
                      use_cursor_cache: bool = True) -> Result:
        """Round trip with a parameterized statement (plan cached)."""
        r3 = self._r3
        monitor = r3.monitor
        with r3.tracer.span("dbif.call", mode="param", sql=sql) as span, \
                monitor.layer("dbif"):
            started_at = r3.clock.now if monitor.enabled else 0.0
            self.breaker.before_call()
            try:
                attempts = self._roundtrip()
                if use_cursor_cache and self.cache_enabled:
                    stmt = self._cursor_cache.get(sql)
                    if stmt is None:
                        r3.metrics.count("dbif.cursor_cache_misses")
                        stmt = r3.db.prepare(sql)
                        self._cursor_cache[sql] = stmt
                        span.set(cursor="miss")
                    else:
                        r3.metrics.count("dbif.cursor_cache_hits")
                        span.set(cursor="hit")
                else:
                    r3.metrics.count("dbif.cursor_cache_bypassed")
                    stmt = r3.db.prepare(sql)
                    span.set(cursor="bypass")
                result = self._execute_timed(
                    sql, lambda: stmt.execute(params))
            except StatementTimeout:
                raise  # slow ≠ down: never trips the breaker
            except TransientError:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            self._charge_shipping(result)
            if monitor.enabled:
                monitor.record_statement(
                    sql, r3.clock.now - started_at, len(result.rows))
            span.set(rows=len(result.rows), roundtrips=attempts)
            return result

    # -- literal path (Native SQL / EXEC SQL) --------------------------------

    def execute_literal(self, sql: str,
                        params: Sequence[object] = ()) -> Result:
        """Round trip with literal SQL: planned fresh, literals visible
        to the optimizer."""
        r3 = self._r3
        monitor = r3.monitor
        with r3.tracer.span("dbif.call", mode="literal", sql=sql) as span, \
                monitor.layer("dbif"):
            started_at = r3.clock.now if monitor.enabled else 0.0
            self.breaker.before_call()
            try:
                attempts = self._roundtrip()
                result = self._execute_timed(
                    sql, lambda: r3.db.execute(sql, params))
            except StatementTimeout:
                raise  # slow ≠ down: never trips the breaker
            except TransientError:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            self._charge_shipping(result)
            if monitor.enabled:
                monitor.record_statement(
                    sql, r3.clock.now - started_at, len(result.rows))
            span.set(rows=len(result.rows), roundtrips=attempts)
            return result

    def flush_cursor_cache(self) -> None:
        self._cursor_cache.clear()

    def cold_start(self) -> None:
        """Reset all per-process state after an app-server restart.

        The cursor cache and the circuit-breaker history live in the
        crashed work processes' memory; a restarted server comes back
        with an empty cache and a fresh (closed) breaker.
        """
        self.flush_cursor_cache()
        r3 = self._r3
        self.breaker = CircuitBreaker(
            r3.clock, r3.metrics, tracer=r3.tracer,
            failure_threshold=r3.params.breaker_failure_threshold,
            cooldown_s=r3.params.breaker_cooldown_s,
            halfopen_probes=r3.params.breaker_halfopen_probes)

    # -- internals ------------------------------------------------------------

    def _roundtrip(self) -> int:
        """Charge one round trip, reconnecting through injected drops.

        Each attempt pays the round-trip latency; each failure pays an
        exponentially growing backoff before the reconnect.  Retry
        exhaustion re-raises the loss chained to the injected fault.
        Returns the number of round trips taken (1 on the happy path).
        """
        r3 = self._r3
        attempt = 0
        while True:
            r3.clock.charge(r3.params.roundtrip_s)
            r3.metrics.count("dbif.roundtrips")
            if r3.faults is None:
                return attempt + 1
            try:
                r3.faults.on_roundtrip()
                return attempt + 1
            except ConnectionLostError as exc:
                attempt += 1
                r3.metrics.count("dbif.connection_drops")
                if attempt > r3.params.dbif_max_retries:
                    raise ConnectionLostError(
                        f"connection lost; {attempt} attempts exhausted"
                    ) from exc
                backoff = (r3.params.dbif_backoff_base_s
                           * 2 ** (attempt - 1))
                r3.clock.charge(backoff)
                r3.metrics.count("dbif.retries")
                r3.metrics.count("dbif.backoff_s", backoff)

    def _execute_timed(self, sql: str, run) -> Result:
        """Execute under the per-statement deadline, if one is set."""
        r3 = self._r3
        if self.statement_timeout_s is None:
            return run()
        budget = self.statement_timeout_s

        def timed_out() -> Exception:
            return StatementTimeout(
                f"statement exceeded {budget}s (simulated): {sql[:80]}"
            )

        token = r3.clock.push_deadline(r3.clock.now + budget, timed_out)
        try:
            return run()
        except StatementTimeout:
            r3.metrics.count("dbif.statement_timeouts")
            raise
        finally:
            r3.clock.pop_deadline(token)

    def _charge_shipping(self, result: Result) -> None:
        r3 = self._r3
        row_count = len(result.rows)
        if not row_count:
            return
        byte_estimate = row_count * len(result.columns) * 16
        r3.clock.charge(
            row_count * r3.params.ship_tuple_s
            + byte_estimate * r3.params.ship_byte_s
        )
        r3.metrics.count("dbif.tuples_shipped", row_count)
