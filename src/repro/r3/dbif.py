"""The ABAP/4 database interface layer.

Every call from the application server to the RDBMS crosses this
interface (paper Figure 2).  The interface charges a round-trip per
call plus per-tuple/per-byte shipping for results — the costs that
dominate nested SELECT loops in 2.2-era Open SQL reports.

Open SQL statements arrive here already translated into parameterized
SQL; the interface keeps a cursor cache so re-executing the same
statement text reuses the prepared plan (cursor REOPEN), which is also
why the RDBMS optimizer never sees Open SQL literals.

Robustness: when the R/3 system has a fault injector attached, a round
trip may fail with a ``ConnectionLostError``.  The interface then
reconnects and retries with exponential backoff — every backoff second
is charged to the simulated clock (it is real elapsed time for the
user) and counted in the metrics.  Only after ``dbif_max_retries``
consecutive failures does the loss propagate, chained to the injected
fault.  A per-statement timeout (``statement_timeout_s``) arms a clock
deadline around execution and raises ``StatementTimeout`` with the
partial cost already charged.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.database import PreparedStatement, Result
from repro.engine.errors import ConnectionLostError, StatementTimeout


class DatabaseInterface:
    def __init__(self, r3) -> None:
        self._r3 = r3
        self._cursor_cache: dict[str, PreparedStatement] = {}
        #: global switch (ablation A2 turns cursor caching off)
        self.cache_enabled = True
        #: simulated-seconds budget per statement (None = no timeout)
        self.statement_timeout_s: float | None = None

    # -- parameterized path (Open SQL, cluster/pool physical reads) -------

    def execute_param(self, sql: str, params: Sequence[object] = (),
                      use_cursor_cache: bool = True) -> Result:
        """Round trip with a parameterized statement (plan cached)."""
        r3 = self._r3
        with r3.tracer.span("dbif.call", mode="param", sql=sql) as span:
            attempts = self._roundtrip()
            if use_cursor_cache and self.cache_enabled:
                stmt = self._cursor_cache.get(sql)
                if stmt is None:
                    r3.metrics.count("dbif.cursor_cache_misses")
                    stmt = r3.db.prepare(sql)
                    self._cursor_cache[sql] = stmt
                    span.set(cursor="miss")
                else:
                    r3.metrics.count("dbif.cursor_cache_hits")
                    span.set(cursor="hit")
            else:
                r3.metrics.count("dbif.cursor_cache_bypassed")
                stmt = r3.db.prepare(sql)
                span.set(cursor="bypass")
            result = self._execute_timed(sql, lambda: stmt.execute(params))
            self._charge_shipping(result)
            span.set(rows=len(result.rows), roundtrips=attempts)
            return result

    # -- literal path (Native SQL / EXEC SQL) --------------------------------

    def execute_literal(self, sql: str,
                        params: Sequence[object] = ()) -> Result:
        """Round trip with literal SQL: planned fresh, literals visible
        to the optimizer."""
        r3 = self._r3
        with r3.tracer.span("dbif.call", mode="literal", sql=sql) as span:
            attempts = self._roundtrip()
            result = self._execute_timed(
                sql, lambda: r3.db.execute(sql, params))
            self._charge_shipping(result)
            span.set(rows=len(result.rows), roundtrips=attempts)
            return result

    def flush_cursor_cache(self) -> None:
        self._cursor_cache.clear()

    # -- internals ------------------------------------------------------------

    def _roundtrip(self) -> int:
        """Charge one round trip, reconnecting through injected drops.

        Each attempt pays the round-trip latency; each failure pays an
        exponentially growing backoff before the reconnect.  Retry
        exhaustion re-raises the loss chained to the injected fault.
        Returns the number of round trips taken (1 on the happy path).
        """
        r3 = self._r3
        attempt = 0
        while True:
            r3.clock.charge(r3.params.roundtrip_s)
            r3.metrics.count("dbif.roundtrips")
            if r3.faults is None:
                return attempt + 1
            try:
                r3.faults.on_roundtrip()
                return attempt + 1
            except ConnectionLostError as exc:
                attempt += 1
                r3.metrics.count("dbif.connection_drops")
                if attempt > r3.params.dbif_max_retries:
                    raise ConnectionLostError(
                        f"connection lost; {attempt} attempts exhausted"
                    ) from exc
                backoff = (r3.params.dbif_backoff_base_s
                           * 2 ** (attempt - 1))
                r3.clock.charge(backoff)
                r3.metrics.count("dbif.retries")
                r3.metrics.count("dbif.backoff_s", backoff)

    def _execute_timed(self, sql: str, run) -> Result:
        """Execute under the per-statement deadline, if one is set."""
        r3 = self._r3
        if self.statement_timeout_s is None:
            return run()
        budget = self.statement_timeout_s

        def timed_out() -> Exception:
            return StatementTimeout(
                f"statement exceeded {budget}s (simulated): {sql[:80]}"
            )

        token = r3.clock.push_deadline(r3.clock.now + budget, timed_out)
        try:
            return run()
        except StatementTimeout:
            r3.metrics.count("dbif.statement_timeouts")
            raise
        finally:
            r3.clock.pop_deadline(token)

    def _charge_shipping(self, result: Result) -> None:
        r3 = self._r3
        row_count = len(result.rows)
        if not row_count:
            return
        byte_estimate = row_count * len(result.columns) * 16
        r3.clock.charge(
            row_count * r3.params.ship_tuple_s
            + byte_estimate * r3.params.ship_byte_s
        )
        r3.metrics.count("dbif.tuples_shipped", row_count)
