"""The ABAP/4 database interface layer.

Every call from the application server to the RDBMS crosses this
interface (paper Figure 2).  The interface charges a round-trip per
call plus per-tuple/per-byte shipping for results — the costs that
dominate nested SELECT loops in 2.2-era Open SQL reports.

Open SQL statements arrive here already translated into parameterized
SQL; the interface keeps a cursor cache so re-executing the same
statement text reuses the prepared plan (cursor REOPEN), which is also
why the RDBMS optimizer never sees Open SQL literals.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.database import PreparedStatement, Result


class DatabaseInterface:
    def __init__(self, r3) -> None:
        self._r3 = r3
        self._cursor_cache: dict[str, PreparedStatement] = {}
        #: global switch (ablation A2 turns cursor caching off)
        self.cache_enabled = True

    # -- parameterized path (Open SQL, cluster/pool physical reads) -------

    def execute_param(self, sql: str, params: Sequence[object] = (),
                      use_cursor_cache: bool = True) -> Result:
        """Round trip with a parameterized statement (plan cached)."""
        r3 = self._r3
        r3.clock.charge(r3.params.roundtrip_s)
        r3.metrics.count("dbif.roundtrips")
        if use_cursor_cache and self.cache_enabled:
            stmt = self._cursor_cache.get(sql)
            if stmt is None:
                r3.metrics.count("dbif.cursor_cache_misses")
                stmt = r3.db.prepare(sql)
                self._cursor_cache[sql] = stmt
            else:
                r3.metrics.count("dbif.cursor_cache_hits")
        else:
            r3.metrics.count("dbif.cursor_cache_bypassed")
            stmt = r3.db.prepare(sql)
        result = stmt.execute(params)
        self._charge_shipping(result)
        return result

    # -- literal path (Native SQL / EXEC SQL) --------------------------------

    def execute_literal(self, sql: str,
                        params: Sequence[object] = ()) -> Result:
        """Round trip with literal SQL: planned fresh, literals visible
        to the optimizer."""
        r3 = self._r3
        r3.clock.charge(r3.params.roundtrip_s)
        r3.metrics.count("dbif.roundtrips")
        result = r3.db.execute(sql, params)
        self._charge_shipping(result)
        return result

    def flush_cursor_cache(self) -> None:
        self._cursor_cache.clear()

    # -- internals ------------------------------------------------------------

    def _charge_shipping(self, result: Result) -> None:
        r3 = self._r3
        row_count = len(result.rows)
        if not row_count:
            return
        byte_estimate = row_count * len(result.columns) * 16
        r3.clock.charge(
            row_count * r3.params.ship_tuple_s
            + byte_estimate * r3.params.ship_byte_s
        )
        r3.metrics.count("dbif.tuples_shipped", row_count)
