"""The SAP R/3 data dictionary (DDIC).

Every logical SAP table is registered here with one of three kinds:

* ``TRANSPARENT`` — mapped 1:1 onto an RDBMS table (client column
  MANDT first, primary key = MANDT + declared keys),
* ``POOL`` — bundled with other pool tables into one shared physical
  pool table; logical rows are encoded into a VARDATA string,
* ``CLUSTER`` — logically related rows packed into physical cluster
  rows keyed by the cluster key.

Pool and cluster tables are *encapsulated*: they can only be read
through Open SQL (the app server decodes them using the dictionary);
EXEC SQL cannot see them.  Release 3.0 allows converting any
encapsulated table to transparent — the KONV conversion is the paper's
single most consequential schema change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.r3.errors import DDicError

#: the client column present on every client-dependent SAP table
MANDT = "mandt"
MANDT_TYPE = SqlType.char(3)


class TableKind(enum.Enum):
    TRANSPARENT = "transparent"
    POOL = "pool"
    CLUSTER = "cluster"


@dataclass
class DDicField:
    name: str
    sql_type: SqlType
    key: bool = False


@dataclass
class DDicTable:
    """One logical SAP table definition."""

    name: str
    kind: TableKind
    fields: list[DDicField]
    #: physical container for POOL/CLUSTER kinds
    container: str | None = None
    #: prefix of the key that forms the cluster key (CLUSTER only)
    cluster_key_length: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        if self.kind is not TableKind.TRANSPARENT and not self.container:
            raise DDicError(f"{self.name}: encapsulated table needs container")
        if self.kind is TableKind.CLUSTER and self.cluster_key_length < 1:
            raise DDicError(f"{self.name}: cluster needs a cluster key")

    @property
    def key_fields(self) -> list[DDicField]:
        return [f for f in self.fields if f.key]

    @property
    def field_names(self) -> list[str]:
        return [f.name.lower() for f in self.fields]

    @property
    def encapsulated(self) -> bool:
        return self.kind is not TableKind.TRANSPARENT

    def field_index(self, name: str) -> int:
        lowered = name.lower()
        for i, f in enumerate(self.fields):
            if f.name.lower() == lowered:
                return i
        raise DDicError(f"no field {name} in {self.name}")

    def to_table_schema(self) -> TableSchema:
        """The RDBMS schema of the table's transparent incarnation."""
        columns = [Column(MANDT, MANDT_TYPE, nullable=False)]
        columns.extend(
            Column(f.name.lower(), f.sql_type, nullable=True)
            for f in self.fields
        )
        primary_key = [MANDT] + [f.name.lower() for f in self.key_fields]
        return TableSchema(self.name, columns, primary_key=primary_key)


@dataclass
class DataDictionary:
    """Registry of logical tables; activation creates physical storage."""

    tables: dict[str, DDicTable] = field(default_factory=dict)

    def define(self, table: DDicTable) -> DDicTable:
        if table.name in self.tables:
            raise DDicError(f"table {table.name} already defined")
        self.tables[table.name] = table
        return table

    def lookup(self, name: str) -> DDicTable:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise DDicError(f"table {name} not in data dictionary") from None

    def has(self, name: str) -> bool:
        return name.lower() in self.tables

    def count_by_kind(self) -> dict[TableKind, int]:
        out = {kind: 0 for kind in TableKind}
        for table in self.tables.values():
            out[table.kind] += 1
        return out

    def convert_to_transparent(self, name: str) -> DDicTable:
        """Mark a pool/cluster table transparent (3.0 feature).

        Physical data migration is the app server's job
        (:meth:`repro.r3.appserver.R3System.convert_table`); this only
        flips the dictionary entry.
        """
        table = self.lookup(name)
        if table.kind is TableKind.TRANSPARENT:
            raise DDicError(f"{name} is already transparent")
        table.kind = TableKind.TRANSPARENT
        table.container = None
        table.cluster_key_length = 0
        return table
