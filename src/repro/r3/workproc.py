"""Work processes: the app server's fixed unit of concurrency.

The paper's R/3 configuration multiplexes *all* logged-in users over a
small, fixed pool of work processes (paper §2 / Figure 2): a dialog
step is queued by the dispatcher, rolled *into* a free work process
(the user context is copied into the process-local roll area), served,
and rolled *out* again.  Pool size — not user count — bounds the
degree of multiprogramming; everything beyond it waits in the
dispatcher queue.

This module models the mechanics: a :class:`WorkProcess` knows how to
roll a request in, run it and roll it out, charging the roll costs to
the shared simulated clock; a :class:`WorkProcessPool` owns the fixed
set of processes per type (dialog / update) and restarts crashed ones.
Scheduling *policy* — queueing, admission control, shedding, requeue —
lives in :mod:`repro.r3.dispatcher`.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.r3.errors import WorkProcessCrash


class WorkProcessType(enum.Enum):
    """The two process types the throughput workload exercises."""

    DIALOG = "DIA"
    UPDATE = "UPD"


class WorkProcessState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    CRASHED = "crashed"


class WorkProcess:
    """One work process: rolls requests in, serves them, rolls out.

    ``serve`` charges the roll-in cost, fires the fault injector's
    work-process hook at the transaction boundary (before any request
    work, so a crash here leaves nothing behind to undo), runs the
    request body and charges the roll-out cost.  A
    :class:`~repro.r3.errors.WorkProcessCrash` marks the process
    CRASHED and propagates — the dispatcher owns restart/requeue
    policy.  Any other exception leaves the process IDLE again (the
    process survives; the *request* failed).
    """

    __slots__ = ("number", "kind", "state", "served", "crashes",
                 "restarts", "busy_s")

    def __init__(self, number: int, kind: WorkProcessType) -> None:
        self.number = number
        self.kind = kind
        self.state = WorkProcessState.IDLE
        self.served = 0
        self.crashes = 0
        self.restarts = 0
        self.busy_s = 0.0

    @property
    def name(self) -> str:
        return f"{self.kind.value}{self.number:02d}"

    def serve(self, r3, fn: Callable[[], object],
              rollin_s: float, rollout_s: float) -> tuple[object, float]:
        """Roll in, run ``fn``, roll out.

        Returns ``(value, service_s)`` where ``service_s`` is the
        simulated time from roll-in start to roll-out end.
        """
        if self.state is not WorkProcessState.IDLE:
            raise RuntimeError(f"{self.name} is {self.state.value}, "
                               f"cannot serve")
        self.state = WorkProcessState.BUSY
        span = r3.clock.span()
        try:
            if rollin_s:
                with r3.monitor.layer("rollin"):
                    r3.clock.charge(rollin_s)
                r3.metrics.count("dispatcher.rollin_s", rollin_s)
            if r3.faults is not None:
                try:
                    r3.faults.on_wp_request()
                except WorkProcessCrash:
                    self.state = WorkProcessState.CRASHED
                    self.crashes += 1
                    raise
            value = fn()
            if rollout_s:
                with r3.monitor.layer("rollout"):
                    r3.clock.charge(rollout_s)
                r3.metrics.count("dispatcher.rollout_s", rollout_s)
        except WorkProcessCrash:
            self.busy_s += span.stop()
            raise
        except Exception:
            self.state = WorkProcessState.IDLE
            self.busy_s += span.stop()
            raise
        self.state = WorkProcessState.IDLE
        self.served += 1
        service_s = span.stop()
        self.busy_s += service_s
        return value, service_s


class WorkProcessPool:
    """The fixed per-type pool of work processes of one app server."""

    def __init__(self, r3, dialog: int, update: int,
                 restart_s: float) -> None:
        if dialog < 1:
            raise ValueError(f"need at least one dialog process: {dialog}")
        if update < 0:
            raise ValueError(f"update processes must be >= 0: {update}")
        self._r3 = r3
        self._restart_s = restart_s
        self.processes: list[WorkProcess] = (
            [WorkProcess(i, WorkProcessType.DIALOG) for i in range(dialog)]
            + [WorkProcess(i, WorkProcessType.UPDATE) for i in range(update)]
        )

    def of_type(self, kind: WorkProcessType) -> list[WorkProcess]:
        return [wp for wp in self.processes if wp.kind is kind]

    def idle(self, kind: WorkProcessType) -> list[WorkProcess]:
        return [wp for wp in self.processes
                if wp.kind is kind and wp.state is WorkProcessState.IDLE]

    def restart(self, wp: WorkProcess) -> WorkProcess:
        """Bring a crashed process back; charges the restart cost."""
        if wp.state is not WorkProcessState.CRASHED:
            raise RuntimeError(f"{wp.name} is not crashed")
        if self._restart_s:
            self._r3.clock.charge(self._restart_s)
        wp.state = WorkProcessState.IDLE
        wp.restarts += 1
        self._r3.metrics.count("dispatcher.wp_restarts")
        return wp

    def stats(self) -> dict[str, dict[str, float]]:
        return {
            wp.name: {"served": wp.served, "crashes": wp.crashes,
                      "restarts": wp.restarts,
                      "busy_s": round(wp.busy_s, 6)}
            for wp in self.processes
        }
