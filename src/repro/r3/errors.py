"""R/3 layer exception hierarchy."""


class R3Error(Exception):
    """Base class for R/3 simulator errors."""


class DDicError(R3Error):
    """Data-dictionary problem (unknown table, bad definition)."""


class OpenSqlError(R3Error):
    """Open SQL statement rejected (syntax or version feature gate)."""


class NativeSqlError(R3Error):
    """EXEC SQL rejected (e.g. touches an encapsulated table)."""


class BatchInputError(R3Error):
    """A batch-input transaction failed its consistency checks."""


class WorkProcessCrash(R3Error):
    """An injected app-server work-process crash.

    Raised at transaction boundaries by the fault injector; everything
    the crashed process did since its last checkpoint is rolled back
    before the exception propagates, so a caller that catches it can
    resume from the journal.
    """

