"""R/3 layer exception hierarchy."""


class R3Error(Exception):
    """Base class for R/3 simulator errors."""


class DDicError(R3Error):
    """Data-dictionary problem (unknown table, bad definition)."""


class OpenSqlError(R3Error):
    """Open SQL statement rejected (syntax or version feature gate)."""


class NativeSqlError(R3Error):
    """EXEC SQL rejected (e.g. touches an encapsulated table)."""


class BatchInputError(R3Error):
    """A batch-input transaction failed its consistency checks."""


class DispatcherOverload(R3Error):
    """The dispatcher refused a request at admission time.

    Raised when the bounded dispatcher queue is full, or when a
    low-priority request (the update stream) arrives while queue
    occupancy is past the shed high-water mark.  ``shed`` distinguishes
    the two: ``False`` means the queue was simply full (rejection),
    ``True`` means admission control chose to shed the request to
    protect dialog traffic.
    """

    def __init__(self, message: str, *, shed: bool = False) -> None:
        super().__init__(message)
        self.shed = shed


class WorkProcessCrash(R3Error):
    """An injected app-server work-process crash.

    Raised at transaction boundaries by the fault injector; everything
    the crashed process did since its last checkpoint is rolled back
    before the exception propagates, so a caller that catches it can
    resume from the journal.
    """

