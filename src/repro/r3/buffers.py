"""Application-server table buffers.

SAP R/3 can buffer table contents in the application server so that
repeated small queries never reach the RDBMS (paper Section 4.3,
Table 8).  The buffer is byte-budgeted with LRU eviction; every lookup
pays a management cost, which is why a too-small buffer (11 % hit
ratio in the paper) is a wash while a large one wins 3x.

Coherency (paper Section 2.3): in a distributed installation updates
propagate only periodically.  A single-server system invalidates its
buffers explicitly via :meth:`TableBufferManager.invalidate`; in a
multi-server cluster each server additionally replays the shared DDLOG
before buffered reads (see :mod:`repro.r3.cluster`), so a read is
never staler than one sync period.

Buffer *quality* (the SAP hit-ratio figure) is reported per
*generation*: invalidating or swapping a buffer resets its quality
window, so the post-invalidation cold period shows up as a visible
dip instead of being averaged away by the warm history — and
deactivated buffers drop out of the denominator entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BufferStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class TableBuffer:
    """Single-record buffer for one table, LRU by byte budget.

    ``stats`` accumulates over the buffer's whole lifetime; ``window``
    covers only the current *generation* — it restarts empty at every
    invalidation, so a generation's hit ratio reflects the refill
    period instead of averaging it away against the warm history.
    """

    def __init__(self, max_bytes: int, row_bytes: int) -> None:
        self.max_bytes = max_bytes
        self.row_bytes = max(1, row_bytes)
        self._entries: OrderedDict[tuple, tuple | None] = OrderedDict()
        self.stats = BufferStats()
        self.window = BufferStats()

    @property
    def capacity_rows(self) -> int:
        return max(1, self.max_bytes // self.row_bytes)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> tuple[bool, tuple | None]:
        self.stats.lookups += 1
        self.window.lookups += 1
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.window.hits += 1
            return True, self._entries[key]
        return False, None

    def store(self, key: tuple, row: tuple | None) -> None:
        self.stats.inserts += 1
        self.window.inserts += 1
        self._entries[key] = row
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity_rows:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.window.evictions += 1

    def clear(self) -> None:
        """Invalidate: drop all entries and start a fresh generation."""
        self._entries.clear()
        self.stats.invalidations += 1
        self.window = BufferStats(invalidations=1)


class TableBufferManager:
    def __init__(self, r3) -> None:
        self._r3 = r3
        self._buffers: dict[str, TableBuffer] = {}
        r3.monitor.attach_source(
            f"buffer_quality_total{r3.gauge_suffix}", self._quality)

    def _quality(self) -> float | None:
        return self.quality

    @property
    def quality(self) -> float | None:
        """Hit ratio across *active* buffers, current generation only.

        Deactivated buffers are gone from the denominator and an
        invalidation resets a buffer's window, so a post-invalidation
        dip is visible in the figure instead of being diluted by every
        lookup the buffer ever served.  ``None`` before the first
        lookup of the current generations.
        """
        lookups = sum(b.window.lookups for b in self._buffers.values())
        if not lookups:
            return None
        hits = sum(b.window.hits for b in self._buffers.values())
        return hits / lookups

    @property
    def quality_cumulative(self) -> float | None:
        """Lifetime hit ratio across active buffers (the old figure,
        kept for long-horizon capacity reports)."""
        lookups = sum(b.stats.lookups for b in self._buffers.values())
        if not lookups:
            return None
        hits = sum(b.stats.hits for b in self._buffers.values())
        return hits / lookups

    def configure(self, table_name: str, max_bytes: int) -> TableBuffer:
        """Activate single-record buffering for one table."""
        ddic_table = self._r3.ddic.lookup(table_name)
        row_bytes = sum(f.sql_type.byte_width for f in ddic_table.fields) + 16
        buffer = TableBuffer(max_bytes, row_bytes)
        self._buffers[table_name.lower()] = buffer
        return buffer

    def deactivate(self, table_name: str) -> None:
        self._buffers.pop(table_name.lower(), None)

    def active_for(self, table_name: str) -> TableBuffer | None:
        return self._buffers.get(table_name.lower())

    def active_tables(self) -> list[str]:
        return sorted(self._buffers)

    def lookup(self, table_name: str, key: tuple) -> tuple[bool, bool, tuple | None]:
        """Returns (buffer_active, hit, row)."""
        buffer = self._buffers.get(table_name.lower())
        if buffer is None:
            return False, False, None
        r3 = self._r3
        # Cluster coherence: replay pending DDLOG invalidations before
        # serving from the buffer, so no read is staler than one sync
        # period.  Single-server systems skip this attribute check-only
        # path with zero clock cost.
        if r3.coherence is not None:
            r3.coherence.before_read()
        with r3.tracer.span("buffer.lookup", table=table_name) as span:
            r3.clock.charge(r3.params.cache_lookup_s)
            r3.metrics.count("buffer_mgr.lookups")
            hit, row = buffer.lookup(key)
            if hit:
                r3.metrics.count("buffer_mgr.hits")
            span.set(hit=hit)
        return True, hit, row

    def store(self, table_name: str, key: tuple, row: tuple | None) -> None:
        buffer = self._buffers.get(table_name.lower())
        if buffer is None:
            return
        r3 = self._r3
        r3.clock.charge(r3.params.cache_insert_s)
        buffer.store(key, row)

    def invalidate(self, table_name: str) -> bool:
        """Clear one table's buffer; returns True if it held entries
        (the signal the DDLOG replay uses to count prevented stale
        reads)."""
        buffer = self._buffers.get(table_name.lower())
        if buffer is None:
            return False
        had_entries = len(buffer) > 0
        buffer.clear()
        return had_entries

    def clear_all(self) -> None:
        """Cold start: every active buffer drops its entries (an app
        server crash loses the whole buffer memory)."""
        for buffer in self._buffers.values():
            buffer.clear()

    def stats(self, table_name: str) -> BufferStats | None:
        # ``is None``, not truthiness: an empty buffer has len() == 0
        # but its (lifetime) stats are still live.
        buffer = self._buffers.get(table_name.lower())
        return buffer.stats if buffer is not None else None
