"""Application-server table buffers.

SAP R/3 can buffer table contents in the application server so that
repeated small queries never reach the RDBMS (paper Section 4.3,
Table 8).  The buffer is byte-budgeted with LRU eviction; every lookup
pays a management cost, which is why a too-small buffer (11 % hit
ratio in the paper) is a wash while a large one wins 3x.

Coherency caveat (paper Section 2.3): in a distributed installation
updates propagate only periodically; here invalidation is explicit via
:meth:`TableBufferManager.invalidate`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BufferStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class TableBuffer:
    """Single-record buffer for one table, LRU by byte budget."""

    def __init__(self, max_bytes: int, row_bytes: int) -> None:
        self.max_bytes = max_bytes
        self.row_bytes = max(1, row_bytes)
        self._entries: OrderedDict[tuple, tuple | None] = OrderedDict()
        self.stats = BufferStats()

    @property
    def capacity_rows(self) -> int:
        return max(1, self.max_bytes // self.row_bytes)

    def lookup(self, key: tuple) -> tuple[bool, tuple | None]:
        self.stats.lookups += 1
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True, self._entries[key]
        return False, None

    def store(self, key: tuple, row: tuple | None) -> None:
        self.stats.inserts += 1
        self._entries[key] = row
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity_rows:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class TableBufferManager:
    def __init__(self, r3) -> None:
        self._r3 = r3
        self._buffers: dict[str, TableBuffer] = {}
        r3.monitor.attach_source("buffer_quality_total", self._quality)

    def _quality(self) -> float | None:
        """Cumulative hit ratio across all active buffers (the SAP
        "buffer quality" figure); ``None`` before the first lookup."""
        lookups = sum(b.stats.lookups for b in self._buffers.values())
        if not lookups:
            return None
        hits = sum(b.stats.hits for b in self._buffers.values())
        return hits / lookups

    def configure(self, table_name: str, max_bytes: int) -> TableBuffer:
        """Activate single-record buffering for one table."""
        ddic_table = self._r3.ddic.lookup(table_name)
        row_bytes = sum(f.sql_type.byte_width for f in ddic_table.fields) + 16
        buffer = TableBuffer(max_bytes, row_bytes)
        self._buffers[table_name.lower()] = buffer
        return buffer

    def deactivate(self, table_name: str) -> None:
        self._buffers.pop(table_name.lower(), None)

    def active_for(self, table_name: str) -> TableBuffer | None:
        return self._buffers.get(table_name.lower())

    def lookup(self, table_name: str, key: tuple) -> tuple[bool, bool, tuple | None]:
        """Returns (buffer_active, hit, row)."""
        buffer = self._buffers.get(table_name.lower())
        if buffer is None:
            return False, False, None
        r3 = self._r3
        with r3.tracer.span("buffer.lookup", table=table_name) as span:
            r3.clock.charge(r3.params.cache_lookup_s)
            r3.metrics.count("buffer_mgr.lookups")
            hit, row = buffer.lookup(key)
            if hit:
                r3.metrics.count("buffer_mgr.hits")
            span.set(hit=hit)
        return True, hit, row

    def store(self, table_name: str, key: tuple, row: tuple | None) -> None:
        buffer = self._buffers.get(table_name.lower())
        if buffer is None:
            return
        r3 = self._r3
        r3.clock.charge(r3.params.cache_insert_s)
        buffer.store(key, row)

    def invalidate(self, table_name: str) -> None:
        buffer = self._buffers.get(table_name.lower())
        if buffer is not None:
            buffer.clear()

    def stats(self, table_name: str) -> BufferStats | None:
        buffer = self._buffers.get(table_name.lower())
        return buffer.stats if buffer else None
