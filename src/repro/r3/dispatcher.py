"""The R/3 dispatcher: bounded queue + work-process scheduling.

The paper's three-tier configuration (Figure 1) puts a *dispatcher*
between the users and the application server's fixed work-process
pool: every dialog step waits in the dispatcher queue until a work
process is free, is rolled in, served, rolled out — and under overload
the queue, not the database, is what saturates first.  This module
models that layer with explicit overload protection:

* **admission control** — the queue is bounded; a request arriving at
  a full queue is rejected with a typed
  :class:`~repro.r3.errors.DispatcherOverload` instead of growing an
  unbounded backlog,
* **queue-wait deadlines** — a request that waited longer than the
  configured deadline is shed when its turn comes (the user has given
  up; serving it would waste a work process),
* **priority load shedding** — low-priority requests (the throughput
  test's update stream) are shed at admission when queue occupancy is
  past the high-water mark, protecting dialog traffic,
* **crash restart + requeue** — a work process killed by the fault
  injector is restarted (cost charged) and its request requeued at the
  front of the queue; the crash fires at the roll-in transaction
  boundary, so the requeue is idempotent by construction.

Scheduling is deterministic and runs on the shared simulated clock:
``dispatch_round`` assigns queued requests FIFO to idle work processes
of the matching type, then serves the batch serially (the paper's
single machine time-shares; the pool bounds multiprogramming, the
serial clock models the one CPU).  Queue-wait is the simulated time
between submission and roll-in — exactly zero when the pool is never
outnumbered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.engine.errors import TransientError
from repro.r3.errors import DispatcherOverload, WorkProcessCrash
from repro.r3.workproc import WorkProcessPool, WorkProcessType

#: request priorities (lower = more important)
PRIORITY_DIALOG = 0
PRIORITY_UPDATE = 1


@dataclass
class Request:
    """One unit of work submitted to the dispatcher."""

    stream: int                    #: owning stream (-1 = update stream)
    label: str                     #: e.g. ``"Q14"`` or ``"UF-pair-0"``
    fn: Callable[[], object]       #: the request body
    priority: int = PRIORITY_DIALOG
    submitted_at: float = 0.0      #: simulated submission time
    requeues: int = 0              #: crash-requeue count

    @property
    def wp_type(self) -> WorkProcessType:
        return (WorkProcessType.UPDATE if self.priority > PRIORITY_DIALOG
                else WorkProcessType.DIALOG)


@dataclass
class Completion:
    """The dispatcher's verdict on one dispatched request."""

    request: Request
    kind: str                      #: ``completed`` | ``shed`` | ``requeued``
    service_s: float = 0.0
    queue_wait_s: float = 0.0
    reason: str | None = None
    value: object = None


@dataclass
class DispatcherConfig:
    """Pool sizes, queue bound and overload policy.

    ``rollin_s``/``rollout_s``/``restart_s`` default to the system's
    :class:`~repro.sim.params.SimParams` values when ``None``.
    """

    dialog_processes: int = 4
    update_processes: int = 1
    queue_capacity: int = 12
    #: shed a queued request older than this at dispatch time (None =
    #: requests wait forever)
    queue_wait_deadline_s: float | None = None
    #: occupancy fraction of ``queue_capacity`` beyond which
    #: low-priority submissions are shed
    shed_highwater: float = 0.75
    rollin_s: float | None = None
    rollout_s: float | None = None
    restart_s: float | None = None
    #: crash-requeue budget per request before it is shed
    max_requeues: int = 5

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1: {self.queue_capacity}")
        if not 0.0 < self.shed_highwater <= 1.0:
            raise ValueError(
                f"shed_highwater must be in (0, 1]: {self.shed_highwater}")

    @classmethod
    def unconstrained(cls, streams: int) -> "DispatcherConfig":
        """An identity-preserving config for ``streams`` streams.

        Pool ≥ stream count, queue that can never overflow, no
        deadlines, zero roll costs: scheduling through the dispatcher
        then charges exactly zero extra ticks versus the bare
        round-robin loop it replaced.
        """
        return cls(
            dialog_processes=max(1, streams),
            update_processes=1,
            queue_capacity=streams + 1,
            queue_wait_deadline_s=None,
            rollin_s=0.0,
            rollout_s=0.0,
            restart_s=0.0,
        )


class Dispatcher:
    """Admission control + FIFO scheduling over a work-process pool."""

    def __init__(self, r3, config: DispatcherConfig | None = None) -> None:
        self._r3 = r3
        self.config = config or DispatcherConfig()
        params = r3.params
        self.rollin_s = (params.wp_rollin_s if self.config.rollin_s is None
                         else self.config.rollin_s)
        self.rollout_s = (params.wp_rollout_s
                          if self.config.rollout_s is None
                          else self.config.rollout_s)
        restart_s = (params.wp_restart_s if self.config.restart_s is None
                     else self.config.restart_s)
        self.pool = WorkProcessPool(
            r3, dialog=self.config.dialog_processes,
            update=self.config.update_processes, restart_s=restart_s)
        self.queue: deque[Request] = deque()
        #: occupancy at which low-priority admissions start shedding
        self._shed_threshold = max(
            1, int(self.config.shed_highwater * self.config.queue_capacity))
        r3.monitor.attach_source(
            f"queue_depth{r3.gauge_suffix}",
            lambda: float(len(self.queue)))

    # -- admission -----------------------------------------------------------

    def submit(self, request: Request) -> Request:
        """Admit a request to the queue or raise ``DispatcherOverload``."""
        r3 = self._r3
        occupancy = len(self.queue)
        if request.priority > PRIORITY_DIALOG \
                and occupancy >= self._shed_threshold:
            r3.metrics.count("dispatcher.shed_lowprio")
            raise DispatcherOverload(
                f"{request.label}: queue at {occupancy}/"
                f"{self.config.queue_capacity}, past the "
                f"{self.config.shed_highwater:.0%} high-water mark — "
                f"low-priority request shed", shed=True)
        if occupancy >= self.config.queue_capacity:
            r3.metrics.count("dispatcher.rejected")
            raise DispatcherOverload(
                f"{request.label}: dispatcher queue full "
                f"({occupancy}/{self.config.queue_capacity})")
        request.submitted_at = r3.clock.now
        self.queue.append(request)
        r3.metrics.count("dispatcher.submitted")
        return request

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def drain(self) -> list[Request]:
        """Remove and return every queued request, preserving order.

        Used when this dispatcher's application server crashes: the
        queued dialog steps have not started (roll-in is the
        transaction boundary), so the login balancer can re-route them
        to a surviving server idempotently.
        """
        drained = list(self.queue)
        self.queue.clear()
        return drained

    # -- scheduling ----------------------------------------------------------

    def dispatch_round(self) -> list[Completion]:
        """Assign queued requests FIFO to idle processes and serve them.

        Returns one :class:`Completion` per request resolved this round
        (completed, shed or crash-requeued).  Requests left queued —
        no idle process of their type — keep their order and age.
        """
        r3 = self._r3
        completions: list[Completion] = []
        idle = {
            WorkProcessType.DIALOG: deque(
                self.pool.idle(WorkProcessType.DIALOG)),
            WorkProcessType.UPDATE: deque(
                self.pool.idle(WorkProcessType.UPDATE)),
        }
        # Systems configured without update processes serve the update
        # stream from the dialog pool (a small installation's layout).
        if not self.pool.of_type(WorkProcessType.UPDATE):
            idle[WorkProcessType.UPDATE] = idle[WorkProcessType.DIALOG]
        deadline = self.config.queue_wait_deadline_s
        batch: list[tuple[object, Request, float]] = []
        leftovers: deque[Request] = deque()
        while self.queue:
            request = self.queue.popleft()
            # Queue wait ends at the *assignment* decision, taken for
            # the whole batch at this instant — the serial clock then
            # serves the batch one by one (time-sharing the one CPU),
            # which is service, not queueing.
            waited = r3.clock.now - request.submitted_at
            if deadline is not None and waited > deadline:
                r3.metrics.count("dispatcher.deadline_shed")
                r3.metrics.count("dispatcher.shed")
                completions.append(Completion(
                    request, "shed", queue_wait_s=waited,
                    reason=f"queue-wait deadline: waited {waited:.3f}s "
                           f"> {deadline:.3f}s"))
                continue
            avail = idle[request.wp_type]
            if avail:
                batch.append((avail.popleft(), request, waited))
            else:
                leftovers.append(request)
        self.queue = leftovers
        for wp, request, waited in batch:
            completions.append(self._serve(wp, request, waited))
        r3.monitor.maybe_sample()
        return completions

    # -- service -------------------------------------------------------------

    def _serve(self, wp, request: Request,
               queue_wait: float) -> Completion:
        r3 = self._r3
        if queue_wait:
            r3.metrics.count("dispatcher.queue_wait_s", queue_wait)
        task = ("update" if request.priority > PRIORITY_DIALOG
                else "dialog")
        step = r3.monitor.begin_step(
            task, request.label, stream=request.stream, wp=wp.name,
            queue_wait_s=queue_wait, server=r3.name)
        with r3.tracer.span("dispatcher.serve", wp=wp.name,
                            label=request.label,
                            stream=request.stream) as span:
            try:
                value, service_s = wp.serve(
                    r3, request.fn, self.rollin_s, self.rollout_s)
            except WorkProcessCrash as exc:
                self.pool.restart(wp)
                request.requeues += 1
                if request.requeues > self.config.max_requeues:
                    r3.metrics.count("dispatcher.shed")
                    span.set(outcome="shed")
                    r3.monitor.end_step(step, outcome="shed")
                    return Completion(
                        request, "shed", queue_wait_s=queue_wait,
                        reason=f"requeue budget exhausted after "
                               f"{request.requeues - 1} crashes: {exc}")
                r3.metrics.count("dispatcher.requeued")
                self.queue.appendleft(request)
                span.set(outcome="requeued")
                r3.monitor.end_step(step, outcome="requeued")
                return Completion(request, "requeued",
                                  queue_wait_s=queue_wait,
                                  reason=f"{type(exc).__name__}: {exc}")
            except TransientError as exc:
                r3.metrics.count("dispatcher.shed")
                span.set(outcome="shed")
                r3.monitor.end_step(step, outcome="shed")
                return Completion(
                    request, "shed", queue_wait_s=queue_wait,
                    reason=f"{type(exc).__name__}: {exc}")
            r3.metrics.count("dispatcher.completed")
            span.set(outcome="completed", service_s=service_s,
                     queue_wait_s=queue_wait)
            r3.monitor.end_step(step)
            return Completion(request, "completed", service_s=service_s,
                              queue_wait_s=queue_wait, value=value)


# re-exported for harness convenience
__all__ = [
    "Completion",
    "Dispatcher",
    "DispatcherConfig",
    "DispatcherOverload",
    "PRIORITY_DIALOG",
    "PRIORITY_UPDATE",
    "Request",
]
