"""The batch-input facility.

Batch input "simulates" interactive data entry: for every record it
drives the same Dynpro screens a human would fill, runs every
consistency check of the business application, and then inserts the
resulting rows **one tuple at a time** — never through the RDBMS's
bulk loader.  This is the whole explanation of the paper's Table 3
(a month to load 1.7 GB): per-record screen processing + check queries
+ tuple-wise index maintenance.

A month-long load does not survive the real world without crashes, so
the facility also supports **checkpointed execution**: transactions are
grouped into commit batches of ``commit_interval``; after each batch a
checkpoint record is written to a :class:`LoadJournal` (its cost
charged to the simulated clock).  If the work process crashes — or any
error escapes mid-batch — every row inserted since the last checkpoint
is rolled back before the exception propagates, leaving the database
exactly at the journalled state.  A later session resumes from the
journal, skipping committed transactions, so replay is idempotent: the
recovered load produces the same rows as a fault-free one, with zero
duplicates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.engine.errors import TornWriteError
from repro.engine.wal import frame_payload, unframe_payload
from repro.r3.errors import BatchInputError


@dataclass
class BatchTransaction:
    """One logical business transaction (e.g. 'create order 4711')."""

    #: how many Dynpro screens the transaction walks through
    screens: int
    #: SELECT SINGLE checks: (open_sql_text, host_vars); every check
    #: must find a row or the transaction fails
    checks: list[tuple[str, dict]] = field(default_factory=list)
    #: plain logical inserts: (table, row-without-mandt)
    inserts: list[tuple[str, tuple]] = field(default_factory=list)
    #: cluster inserts: (table, cluster_key, rows)
    cluster_inserts: list[tuple[str, tuple, list[tuple]]] = \
        field(default_factory=list)
    #: parameterized deletes: (delete_sql, params) run through the DBIF
    deletes: list[tuple[str, tuple]] = field(default_factory=list)


@dataclass
class BatchInputStats:
    transactions: int = 0
    records_inserted: int = 0
    checks_run: int = 0
    failures: int = 0


@dataclass
class PhaseProgress:
    """Journalled progress of one load phase (one TPC-D entity)."""

    transactions_committed: int = 0
    batches_committed: int = 0
    complete: bool = False


class LoadJournal:
    """In-memory stand-in for the on-disk batch-input restart journal.

    One record per phase; writing a checkpoint record is charged to the
    simulated clock by the session (``checkpoint_s``), reading it on
    resume costs ``journal_read_s``.
    """

    def __init__(self) -> None:
        self.setup_done = False
        self.phases: dict[str, PhaseProgress] = {}

    def phase(self, name: str) -> PhaseProgress:
        return self.phases.setdefault(name, PhaseProgress())

    # -- wire format (rides inside engine COMMIT records) -----------------

    def to_wire(self) -> bytes:
        """Serialize to one CRC-framed record.

        With engine durability on, every batch-input checkpoint commits
        this payload atomically with the batch's rows (it rides in the
        WAL COMMIT record), so the restart journal can never describe
        rows the database does not have, or vice versa.
        """
        state = {
            "setup_done": self.setup_done,
            "phases": {
                name: (p.transactions_committed, p.batches_committed,
                       p.complete)
                for name, p in self.phases.items()
            },
        }
        return frame_payload(repr(state).encode("utf-8"))

    @classmethod
    def from_wire(cls, data: bytes) -> "LoadJournal":
        """Parse one wire record; :class:`TornWriteError` on any damage.

        A truncated or bit-flipped record — the residue of a crash in
        the middle of the checkpoint write — is reported as torn rather
        than crashing the resume path; callers fall back to an earlier
        record via :meth:`recover`.
        """
        payload = unframe_payload(data)
        try:
            state = ast.literal_eval(payload.decode("utf-8"))
            phase_states = dict(state["phases"])
        except (ValueError, SyntaxError, UnicodeDecodeError, KeyError,
                TypeError) as exc:
            raise TornWriteError(
                f"undecodable journal record: {exc}"
            ) from exc
        journal = cls()
        journal.setup_done = bool(state.get("setup_done", False))
        for name, (committed, batches, complete) in phase_states.items():
            journal.phases[name] = PhaseProgress(
                transactions_committed=committed,
                batches_committed=batches,
                complete=complete,
            )
        return journal

    @classmethod
    def recover(cls, history) -> "LoadJournal":
        """Latest readable journal from a history of wire records.

        Walks the history backwards past torn entries: a crash during a
        checkpoint's journal write must fall back to the *previous*
        checkpoint, not raise.  An empty or wholly unreadable history
        yields a fresh journal (the load restarts from scratch, which
        is always safe — replay is idempotent).
        """
        for data in reversed(list(history)):
            if data is None:
                continue
            try:
                return cls.from_wire(data)
            except TornWriteError:
                continue
        return cls()


class BatchInputSession:
    """Processes batch transactions against one R/3 system.

    Without a journal the session behaves exactly as before: every
    transaction commits individually and errors propagate immediately.
    With ``journal`` + ``commit_interval`` set, :meth:`run_phase`
    checkpoints every ``commit_interval`` transactions and rolls
    uncommitted work back when an exception (including an injected
    :class:`~repro.r3.errors.WorkProcessCrash`) escapes.
    """

    def __init__(self, r3, strict: bool = True,
                 commit_interval: int | None = None,
                 journal: LoadJournal | None = None) -> None:
        if commit_interval is not None and commit_interval < 1:
            raise ValueError("commit_interval must be >= 1")
        self._r3 = r3
        self.strict = strict
        self.commit_interval = commit_interval
        self.journal = journal
        self.stats = BatchInputStats()
        #: physical (table, rowid) pairs inserted since the last checkpoint
        self._undo: list[tuple[str, int]] = []
        self._uncommitted = 0
        #: engine-level durability: when the backing Database runs with
        #: a WAL, batch work is wrapped in engine transactions and every
        #: checkpoint commits the journal payload atomically with its
        #: rows.  With durability off this flag is False and the session
        #: behaves tick-for-tick as before.
        self._durable = getattr(r3.db, "wal", None) is not None

    @property
    def _checkpointing(self) -> bool:
        return self.journal is not None

    def run(self, transaction: BatchTransaction) -> None:
        db = self._r3.db
        own_txn = self._durable and not db.wal.dead and not db.wal.in_txn
        if own_txn:
            db.begin()
        try:
            self._run_transaction(transaction)
        finally:
            if own_txn:
                # Commit even when the transaction failed mid-way: the
                # log must mirror whatever reached memory (there is no
                # statement-level undo; app rollback is compensation).
                db.commit()

    def _run_transaction(self, transaction: BatchTransaction) -> None:
        r3 = self._r3
        params = r3.params
        # Work-process crash hook: crashes land on transaction
        # boundaries, the granularity at which R/3 dispatches work.
        if r3.faults is not None:
            r3.faults.maybe_crash()
        # Screen simulation + fixed per-record machinery.
        r3.clock.charge(transaction.screens * params.screen_s)
        r3.clock.charge(params.batch_record_overhead_s)
        r3.metrics.count("batchinput.screens", transaction.screens)
        # Consistency checks: real SELECT SINGLEs through Open SQL.
        for check_sql, host_vars in transaction.checks:
            self.stats.checks_run += 1
            row = r3.open_sql.select_single(check_sql, host_vars)
            if row is None:
                self.stats.failures += 1
                if self.strict:
                    raise BatchInputError(
                        f"consistency check failed: {check_sql} "
                        f"with {host_vars}"
                    )
                return
        # Tuple-at-a-time inserts (no bulk path, full index maintenance).
        for table, row in transaction.inserts:
            written = r3.insert_logical(table, row, bulk=False)
            if self._checkpointing:
                self._undo.append(written)
            self.stats.records_inserted += 1
        for table, cluster_key, rows in transaction.cluster_inserts:
            written_rows = r3.insert_cluster(table, cluster_key, rows,
                                             bulk=False)
            if self._checkpointing:
                self._undo.extend(written_rows)
            self.stats.records_inserted += len(rows)
        for delete_sql, delete_params in transaction.deletes:
            r3.dbif.execute_param(delete_sql, delete_params)
        r3.clock.charge(params.commit_s)
        self.stats.transactions += 1
        r3.metrics.count("batchinput.transactions")

    def run_all(self, transactions) -> BatchInputStats:
        for transaction in transactions:
            self.run(transaction)
        return self.stats

    # -- checkpointed execution ------------------------------------------------

    def run_phase(self, name: str, transactions) -> BatchInputStats:
        """Run one journalled phase; resumes past committed work.

        Transactions the journal already records as committed are
        regenerated and discarded without charging the clock (the work
        itself was paid for — and journalled — by the crashed run).
        Any exception escaping mid-batch triggers a rollback to the
        last checkpoint before it propagates.
        """
        if not self._checkpointing:
            return self.run_all(transactions)
        r3 = self._r3
        progress = self.journal.phase(name)
        if progress.complete:
            r3.metrics.count("batchinput.journal_phase_skips")
            return self.stats
        if progress.transactions_committed:
            r3.clock.charge(r3.params.journal_read_s)
            r3.metrics.count("batchinput.journal_resumes")
        iterator = iter(transactions)
        for _ in range(progress.transactions_committed):
            next(iterator)
        self._undo.clear()
        self._uncommitted = 0
        try:
            for transaction in iterator:
                if self._durable and not r3.db.wal.dead \
                        and not r3.db.wal.in_txn:
                    # One engine transaction per commit batch: recovery
                    # undoes exactly the rows the journal does not yet
                    # record as committed.
                    r3.db.begin()
                self.run(transaction)
                self._uncommitted += 1
                if self.commit_interval is not None \
                        and self._uncommitted >= self.commit_interval:
                    self._checkpoint(progress)
            self._checkpoint(progress, final=True)
            progress.complete = True
        except BaseException:
            self._rollback_uncommitted()
            raise
        return self.stats

    def _checkpoint(self, progress: PhaseProgress,
                    final: bool = False) -> None:
        """Commit the open batch: journal write + undo-log reset.

        With engine durability on, the journal's wire record rides in
        the engine COMMIT that makes the batch's rows durable — one
        atomic unit.  ``final`` additionally commits the phase's
        ``complete`` flag even when the last batch was empty.
        """
        if not self._uncommitted and not (final and self._durable):
            return
        r3 = self._r3
        if self._uncommitted:
            r3.clock.charge(r3.params.checkpoint_s)
            r3.metrics.count("batchinput.checkpoints")
            r3.metrics.count("batchinput.checkpoint_overhead_s",
                             r3.params.checkpoint_s)
            progress.transactions_committed += self._uncommitted
            progress.batches_committed += 1
            self._uncommitted = 0
            self._undo.clear()
        if final:
            progress.complete = True
        if self._durable and not r3.db.wal.dead:
            if not r3.db.wal.in_txn:
                r3.db.begin()
            r3.db.commit(journal=self.journal.to_wire())

    def _rollback_uncommitted(self) -> None:
        """Undo every row inserted since the last checkpoint."""
        r3 = self._r3
        if self._undo:
            r3.metrics.count("batchinput.rollbacks")
            r3.rollback_rows(self._undo)
            self._undo.clear()
        self._uncommitted = 0
        if self._durable and not r3.db.wal.dead and r3.db.wal.in_txn:
            # Make the compensation deletes durable and close the open
            # engine transaction; the journal payload re-asserts the
            # last checkpointed state.
            r3.db.commit(
                journal=self.journal.to_wire()
                if self.journal is not None else None
            )


def effective_parallel_time(elapsed: float, processes: int) -> float:
    """Wall-clock estimate when ``processes`` batch-input jobs share
    the work (the paper ran two in parallel)."""
    if processes < 1:
        raise ValueError("processes must be >= 1")
    return elapsed / processes
