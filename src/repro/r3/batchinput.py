"""The batch-input facility.

Batch input "simulates" interactive data entry: for every record it
drives the same Dynpro screens a human would fill, runs every
consistency check of the business application, and then inserts the
resulting rows **one tuple at a time** — never through the RDBMS's
bulk loader.  This is the whole explanation of the paper's Table 3
(a month to load 1.7 GB): per-record screen processing + check queries
+ tuple-wise index maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.r3.errors import BatchInputError


@dataclass
class BatchTransaction:
    """One logical business transaction (e.g. 'create order 4711')."""

    #: how many Dynpro screens the transaction walks through
    screens: int
    #: SELECT SINGLE checks: (open_sql_text, host_vars); every check
    #: must find a row or the transaction fails
    checks: list[tuple[str, dict]] = field(default_factory=list)
    #: plain logical inserts: (table, row-without-mandt)
    inserts: list[tuple[str, tuple]] = field(default_factory=list)
    #: cluster inserts: (table, cluster_key, rows)
    cluster_inserts: list[tuple[str, tuple, list[tuple]]] = \
        field(default_factory=list)
    #: parameterized deletes: (delete_sql, params) run through the DBIF
    deletes: list[tuple[str, tuple]] = field(default_factory=list)


@dataclass
class BatchInputStats:
    transactions: int = 0
    records_inserted: int = 0
    checks_run: int = 0
    failures: int = 0


class BatchInputSession:
    """Processes batch transactions against one R/3 system."""

    def __init__(self, r3, strict: bool = True) -> None:
        self._r3 = r3
        self.strict = strict
        self.stats = BatchInputStats()

    def run(self, transaction: BatchTransaction) -> None:
        r3 = self._r3
        params = r3.params
        # Screen simulation + fixed per-record machinery.
        r3.clock.charge(transaction.screens * params.screen_s)
        r3.clock.charge(params.batch_record_overhead_s)
        r3.metrics.count("batchinput.screens", transaction.screens)
        # Consistency checks: real SELECT SINGLEs through Open SQL.
        for check_sql, host_vars in transaction.checks:
            self.stats.checks_run += 1
            row = r3.open_sql.select_single(check_sql, host_vars)
            if row is None:
                self.stats.failures += 1
                if self.strict:
                    raise BatchInputError(
                        f"consistency check failed: {check_sql} "
                        f"with {host_vars}"
                    )
                return
        # Tuple-at-a-time inserts (no bulk path, full index maintenance).
        for table, row in transaction.inserts:
            r3.insert_logical(table, row, bulk=False)
            self.stats.records_inserted += 1
        for table, cluster_key, rows in transaction.cluster_inserts:
            r3.insert_cluster(table, cluster_key, rows, bulk=False)
            self.stats.records_inserted += len(rows)
        for delete_sql, delete_params in transaction.deletes:
            r3.dbif.execute_param(delete_sql, delete_params)
        r3.clock.charge(params.commit_s)
        self.stats.transactions += 1
        r3.metrics.count("batchinput.transactions")

    def run_all(self, transactions) -> BatchInputStats:
        for transaction in transactions:
            self.run(transaction)
        return self.stats


def effective_parallel_time(elapsed: float, processes: int) -> float:
    """Wall-clock estimate when ``processes`` batch-input jobs share
    the work (the paper ran two in parallel)."""
    if processes < 1:
        raise ValueError("processes must be >= 1")
    return elapsed / processes
