"""The R/3 system facade: application server + back-end RDBMS.

An :class:`R3System` owns a back-end :class:`~repro.engine.Database`
(the second-party RDBMS of the paper), the data dictionary, the
database interface, the table buffers and the two query interfaces
(Open SQL / Native SQL).  App server and RDBMS share one simulated
clock, as in the paper's single-machine configuration.
"""

from __future__ import annotations

import enum

from repro.engine.database import Database
from repro.r3.buffers import TableBufferManager
from repro.r3.dbif import DatabaseInterface
from repro.r3.ddic import DataDictionary, DDicField, DDicTable, TableKind
from repro.r3.errors import DDicError
from repro.r3.pools import ClusterContainer, PoolContainer
from repro.sim.clock import ClockSpan
from repro.sim.params import SimParams

DEFAULT_CLIENT = "301"


class R3Version(enum.Enum):
    """The two releases the paper measures."""

    V22 = "2.2G"
    V30 = "3.0E"

    @property
    def open_sql_joins(self) -> bool:
        """3.0 Open SQL can express joins (pushed to the RDBMS)."""
        return self is R3Version.V30

    @property
    def open_sql_aggregates(self) -> bool:
        """3.0 Open SQL can push *simple* single-attribute aggregates."""
        return self is R3Version.V30

    @property
    def can_convert_cluster(self) -> bool:
        """3.0 allows converting cluster tables to transparent."""
        return self is R3Version.V30


class R3System:
    def __init__(
        self,
        version: R3Version = R3Version.V22,
        params: SimParams | None = None,
        client: str = DEFAULT_CLIENT,
        degree: int = 1,
        durability: str = "off",
        store=None,
        database: Database | None = None,
        name: str = "as0",
        storage: str = "heap",
    ) -> None:
        self.version = version
        #: this application server's instance name (``as0`` for the
        #: classic single-server configuration; cluster secondaries get
        #: ``as1``, ``as2``, ...).  Monitor gauges of secondary servers
        #: are suffixed with the name so they never collide.
        self.name = name
        #: gauge-name suffix ("" for the default server, ".asN" else)
        self.gauge_suffix = "" if name == "as0" else f".{name}"
        #: optional BufferCoherence client (multi-server installations
        #: only; see :mod:`repro.r3.cluster`)
        self.coherence = None
        if database is not None:
            # Attach to an existing engine (typically one that just ran
            # crash recovery via Database.open); schema re-activation is
            # idempotent against its recovered catalog.
            self.params = database.params
            self.db = database
        else:
            self.params = params or SimParams()
            self.db = Database(params=self.params, name="sapdb",
                               degree=degree, durability=durability,
                               store=store, storage=storage)
        self.clock = self.db.clock
        self.metrics = self.db.metrics
        #: shared hierarchical tracer (one tree across all tiers)
        self.tracer = self.db.tracer
        #: shared workload monitor (one STAT/gauge stream across tiers)
        self.monitor = self.db.monitor
        self.client = client
        self.ddic = DataDictionary()
        #: optional FaultInjector (see :meth:`attach_faults`)
        self.faults = None
        self.dbif = DatabaseInterface(self)
        self.monitor.attach_source(
            f"breaker_open{self.gauge_suffix}",
            lambda: {"closed": 0.0, "half_open": 0.5,
                     "open": 1.0}[self.dbif.breaker.state.value])
        self.buffers = TableBufferManager(self)
        self.pools: dict[str, PoolContainer] = {}
        self.clusters: dict[str, ClusterContainer] = {}
        # Late imports to avoid cycles; these are the query interfaces.
        from repro.r3.nativesql import NativeSql
        from repro.r3.opensql.executor import OpenSql

        self.open_sql = OpenSql(self)
        self.native_sql = NativeSql(self)

    # -- measurement ---------------------------------------------------------

    def measure(self) -> ClockSpan:
        """Open a simulated-time measurement window."""
        return self.clock.span()

    # -- dispatcher ----------------------------------------------------------

    def build_dispatcher(self, config=None):
        """A dispatcher + work-process pool over this system.

        ``config`` is a :class:`~repro.r3.dispatcher.DispatcherConfig`
        (or ``None`` for the defaults).  Each call builds a fresh pool;
        the throughput/chaos harnesses own the instance's lifetime.
        """
        from repro.r3.dispatcher import Dispatcher

        return Dispatcher(self, config)

    # -- fault injection ----------------------------------------------------

    def attach_faults(self, profile_or_injector) -> "object":
        """Attach a fault injector to every tier of this system.

        Accepts a :class:`~repro.sim.faults.FaultProfile` (an injector
        is built on this system's clock/metrics) or a ready-made
        :class:`~repro.sim.faults.FaultInjector`.  Returns the injector.
        """
        from repro.sim.faults import FaultInjector, FaultProfile

        if isinstance(profile_or_injector, FaultProfile):
            injector = FaultInjector(profile_or_injector, self.clock,
                                     self.metrics)
        else:
            injector = profile_or_injector
        self.faults = injector
        self.db.disk.faults = injector
        if self.db.wal is not None:
            self.db.wal.faults = injector
        return injector

    def detach_faults(self) -> None:
        self.faults = None
        self.db.disk.faults = None
        if self.db.wal is not None:
            self.db.wal.faults = None

    # -- cost charging -------------------------------------------------------

    def charge_abap(self, rows: int = 1) -> None:
        """ABAP interpreter cost for processing ``rows`` records."""
        if rows:
            self.clock.charge(self.params.abap_row_s * rows)
            self.metrics.count("abap.rows_processed", rows)

    def charge_decode(self, rows: int = 1) -> None:
        """Pool/cluster decode cost for ``rows`` logical records."""
        if rows:
            self.clock.charge(self.params.pool_decode_s * rows)
            self.metrics.count("abap.rows_decoded", rows)

    # -- schema activation -----------------------------------------------------

    def define_pool(self, name: str) -> PoolContainer:
        container = PoolContainer(name)
        self.pools[container.name] = container
        # Idempotent against a crash-recovered engine whose catalog
        # already carries the physical container.
        if not self.db.catalog.has_table(container.name):
            self.db.create_table(container.physical_schema())
        return container

    def define_cluster(self, name: str,
                       key_fields: list[DDicField]) -> ClusterContainer:
        container = ClusterContainer(name, key_fields)
        self.clusters[container.name] = container
        if not self.db.catalog.has_table(container.name):
            self.db.create_table(container.physical_schema())
        return container

    def activate_table(self, table: DDicTable) -> DDicTable:
        """Register a logical table and create transparent storage."""
        self.ddic.define(table)
        if table.kind is TableKind.TRANSPARENT:
            if not self.db.catalog.has_table(table.name):
                self.db.create_table(table.to_table_schema())
        elif table.kind is TableKind.POOL:
            if table.container not in self.pools:
                raise DDicError(
                    f"{table.name}: pool container {table.container} missing"
                )
        elif table.container not in self.clusters:
            raise DDicError(
                f"{table.name}: cluster container {table.container} missing"
            )
        return table

    # -- buffer coherence ----------------------------------------------------

    def note_write(self, table_name: str) -> None:
        """Record a write to ``table_name`` for buffer coherence.

        The writing server invalidates its *own* table buffer
        synchronously (R/3 semantics: local reads see local writes
        immediately).  In a multi-server cluster the write additionally
        appends a DDLOG invalidation record that peer servers replay on
        their sync period — see :mod:`repro.r3.cluster`.
        """
        self.buffers.invalidate(table_name)
        if self.coherence is not None:
            self.coherence.note_write(table_name)

    # -- logical writes (used by batch input and the loader) ---------------------

    def insert_logical(self, table_name: str, row: tuple,
                       bulk: bool = False) -> tuple[str, int]:
        """Insert one logical row (without MANDT) into a table.

        Returns the physical ``(table_name, rowid)`` of the stored row
        so callers that need crash rollback (batch input) can undo it.
        """
        table = self.ddic.lookup(table_name)
        full_row = (self.client,) + tuple(row)
        if table.kind is TableKind.TRANSPARENT:
            physical_name = table.name
            rowid = self.db.catalog.table(table.name).insert(
                full_row, bulk=bulk)
        elif table.kind is TableKind.POOL:
            container = self.pools[table.container]
            physical = container.physical_row(table, full_row)
            physical_name = container.name
            rowid = self.db.catalog.table(container.name).insert(
                physical, bulk=bulk)
        else:
            raise DDicError(
                f"{table.name}: cluster rows must be written per cluster "
                f"(insert_cluster)"
            )
        self.note_write(table.name)
        return (physical_name, rowid)

    def insert_cluster(self, table_name: str, cluster_key: tuple,
                       rows: list[tuple],
                       bulk: bool = False) -> list[tuple[str, int]]:
        """Write all logical rows of one cluster record.

        After a table has been converted to transparent (3.0), the same
        document-level write degrades gracefully to row-wise inserts.
        Returns the physical ``(table_name, rowid)`` pairs written.
        """
        table = self.ddic.lookup(table_name)
        if table.kind is TableKind.TRANSPARENT:
            return [self.insert_logical(table_name, row, bulk=bulk)
                    for row in rows]
        if table.kind is not TableKind.CLUSTER:
            raise DDicError(f"{table.name} is not a cluster table")
        container = self.clusters[table.container]
        physical_table = self.db.catalog.table(container.name)
        written = []
        for physical in container.physical_rows(self.client, cluster_key,
                                                rows):
            rowid = physical_table.insert(physical, bulk=bulk)
            written.append((container.name, rowid))
        self.note_write(table.name)
        return written

    def rollback_rows(self, undo: list[tuple[str, int]]) -> int:
        """Undo physical inserts (crash recovery / failed batch).

        Deletes in reverse insertion order, charging the per-row undo
        cost plus the regular delete I/O; invalidates app-server
        buffers once per touched table.  Returns the number of rows
        removed.
        """
        touched: set[str] = set()
        for physical_name, rowid in reversed(undo):
            self.db.catalog.table(physical_name).delete(rowid)
            self.clock.charge(self.params.rollback_row_s)
            touched.add(physical_name)
        for name in touched:
            self.note_write(name)
        if undo:
            self.metrics.count("recovery.rows_rolled_back", len(undo))
        return len(undo)

    # -- conversion (2.2 pool only; 3.0 any; used by the upgrade) ------------------

    def convert_table(self, table_name: str) -> None:
        """Convert an encapsulated table to a transparent table.

        Reads every logical row through the decoder, creates the
        transparent incarnation, and reinserts — an expensive, offline
        reorganisation, exactly as the paper describes for KONV.
        """
        table = self.ddic.lookup(table_name)
        if table.kind is TableKind.TRANSPARENT:
            raise DDicError(f"{table_name} is already transparent")
        if table.kind is TableKind.CLUSTER and \
                not self.version.can_convert_cluster:
            raise DDicError(
                "cluster tables can only be converted in Release 3.0"
            )
        rows = list(self._read_encapsulated_all(table))
        container_name = table.container
        self.ddic.convert_to_transparent(table.name)
        self.db.create_table(table.to_table_schema())
        physical = self.db.catalog.table(table.name)
        for row in rows:
            physical.insert(row, bulk=True)
        self.metrics.count(f"r3.converted.{table.name}")
        # The old encoded rows stay in the shared container for other
        # logical tables; purge this table's rows from a pool container.
        if container_name in self.pools:
            self.db.execute(
                f"DELETE FROM {container_name} WHERE tabname = ?",
                (table.name,),
            )

    def _read_encapsulated_all(self, table: DDicTable):
        """Decode every logical row (incl. MANDT) of a pool/cluster table."""
        if table.kind is TableKind.POOL:
            container = self.pools[table.container]
            result = self.dbif.execute_param(
                f"SELECT vardata FROM {container.name} WHERE tabname = ?",
                (table.name,),
            )
            for (vardata,) in result.rows:
                self.charge_decode()
                yield PoolContainer.decode(table, vardata)
        else:
            container = self.clusters[table.container]
            result = self.dbif.execute_param(
                f"SELECT mandt, vardata FROM {container.name}", ()
            )
            for mandt, vardata in result.rows:
                for logical in ClusterContainer.decode_page(table, vardata):
                    self.charge_decode()
                    yield (mandt,) + logical

    # -- introspection ------------------------------------------------------------

    def table_count(self) -> int:
        return len(self.ddic.tables)

    def encapsulated_count(self) -> int:
        return sum(
            1 for t in self.ddic.tables.values() if t.encapsulated
        )
