"""Mini-ABAP runtime: internal tables and EXTRACT/SORT/LOOP grouping.

Reports that cannot push joins or aggregations to the RDBMS do the
work here, paying the interpreter costs the paper measures:

* nested SELECT loops — one database round trip per outer row (the
  2.2 join idiom; see :mod:`repro.r3.dbif` for the per-call costs),
* ``EXTRACT`` / ``SORT`` / ``LOOP ... AT END OF`` — the two-phase
  grouping idiom of Figure 4: extract records, sort them *via
  secondary storage*, re-read and fold groups.  The intermediate
  materialization is exactly what the RDBMS's pipelined sort-group
  avoids (Table 7).

Internal tables cannot have indexes (paper Section 2.3); sorted
binary-search reads are the 2.2-era substitute.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterable, Iterator

#: bytes per field for extract-area accounting
FIELD_BYTES = 16


class InternalTable:
    """An ABAP internal table of tuples."""

    def __init__(self, r3) -> None:
        self._r3 = r3
        self.rows: list[tuple] = []
        self._sorted_keys: list[tuple] | None = None
        self._key_fn: Callable[[tuple], tuple] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    # -- building ----------------------------------------------------------

    def append(self, row: tuple) -> None:
        self._r3.charge_abap(1)
        self.rows.append(row)
        self._sorted_keys = None

    def extract(self, row: tuple) -> None:
        """EXTRACT: append a record to the extract dataset."""
        self._r3.clock.charge(self._r3.params.abap_extract_s)
        self._r3.metrics.count("abap.extracts")
        self.rows.append(row)
        self._sorted_keys = None

    def extend(self, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.append(row)

    # -- sorting ---------------------------------------------------------------

    def sort(self, key_fn: Callable[[tuple], tuple] | None = None,
             via_disk: bool = True) -> None:
        """SORT: order the table; the extract-style sort spools to disk.

        ``via_disk=True`` reproduces the Figure 4 behaviour: the sorted
        dataset is written to secondary storage and re-read before the
        group loop.  The RDBMS never pays this for its own grouping.
        """
        r3 = self._r3
        count = len(self.rows)
        key_fn = key_fn or (lambda row: row)
        with r3.tracer.span("abap.sort", rows=count, via_disk=via_disk):
            if count > 1:
                r3.clock.charge(
                    r3.params.sort_cmp_s * count * math.log2(count))
            if via_disk and count:
                byte_count = count * self._row_bytes()
                r3.db.ctx.charge_spill(byte_count, "abap-sort")
                r3.metrics.count("abap.sort_spills")
            self.rows.sort(key=key_fn)
        self._key_fn = key_fn
        self._sorted_keys = [key_fn(row) for row in self.rows]

    def _row_bytes(self) -> int:
        if not self.rows:
            return FIELD_BYTES
        return len(self.rows[0]) * FIELD_BYTES

    # -- reading ------------------------------------------------------------------

    def loop(self) -> Iterator[tuple]:
        """LOOP AT itab: iterate, charging interpreter cost per row."""
        for row in self.rows:
            self._r3.charge_abap(1)
            yield row

    def group_loop(
        self, key_fn: Callable[[tuple], tuple]
    ) -> Iterator[tuple[tuple, list[tuple]]]:
        """LOOP with AT END OF: yield (key, rows) per group, in order.

        The table must already be sorted by a key compatible with
        ``key_fn`` (as in Figure 4's SORT before the LOOP).
        """
        group_key: tuple | None = None
        group_rows: list[tuple] = []
        for row in self.rows:
            self._r3.charge_abap(1)
            key = key_fn(row)
            if group_key is None:
                group_key = key
            elif key != group_key:
                yield group_key, group_rows
                group_key = key
                group_rows = []
            group_rows.append(row)
        if group_key is not None:
            yield group_key, group_rows

    def read_binary(self, key: tuple) -> tuple | None:
        """READ TABLE ... BINARY SEARCH: first row whose sort key
        starts with ``key`` (table must be sorted by a prefix key)."""
        r3 = self._r3
        r3.charge_abap(1)
        if self._sorted_keys is None or self._key_fn is None:
            raise RuntimeError("read_binary requires a sorted table")
        pos = bisect.bisect_left(self._sorted_keys, key)
        if pos < len(self.rows):
            candidate = self._sorted_keys[pos]
            if candidate[: len(key)] == tuple(key):
                return self.rows[pos]
        return None

    def read_binary_all(self, key: tuple) -> list[tuple]:
        """All rows whose sort key starts with ``key``."""
        r3 = self._r3
        r3.charge_abap(1)
        if self._sorted_keys is None or self._key_fn is None:
            raise RuntimeError("read_binary_all requires a sorted table")
        pos = bisect.bisect_left(self._sorted_keys, tuple(key))
        out: list[tuple] = []
        while pos < len(self.rows) and \
                self._sorted_keys[pos][: len(key)] == tuple(key):
            out.append(self.rows[pos])
            pos += 1
        if out:
            r3.charge_abap(len(out) - 1)
        return out


def group_aggregate(
    r3,
    records: Iterable[tuple],
    key_fn: Callable[[tuple], tuple],
    fold_fn: Callable[[tuple, list[tuple]], tuple],
) -> list[tuple]:
    """The complete Figure 4 idiom: EXTRACT → SORT (via disk) → LOOP
    with AT END, folding each group with ``fold_fn(key, rows)``."""
    with r3.tracer.span("abap.group_aggregate") as span:
        itab = InternalTable(r3)
        for record in records:
            itab.extract(record)
        itab.sort(key_fn)
        out: list[tuple] = []
        for key, rows in itab.group_loop(key_fn):
            out.append(fold_fn(key, rows))
        span.set(records=len(itab), groups=len(out))
    return out
