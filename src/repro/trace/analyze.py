"""Aggregate span trees into per-query layer breakdowns.

The :class:`TraceAnalyzer` turns a raw span tree into the paper-style
decomposition: for every ``power.query`` span it splits the inclusive
simulated time into

* **app-server** — ABAP interpreter, decode, internal tables, report
  logic (everything above the database interface),
* **DBIF** — round-trip latency, cursor cache, tuple shipping, backoff
  (``dbif.call`` time minus the engine work nested inside it),
* **engine** — planning + plan execution inside the RDBMS
  (``db.plan`` / ``db.query`` / ``db.dml`` spans), and
* **disk** — the page-transfer seconds charged by the disk model (a
  sub-component of engine time, reported from span counter deltas).

``app + dbif + engine == total`` holds exactly by construction; disk
is informational ("of which disk").  On top of the per-query rows the
analyzer aggregates the EXPLAIN ANALYZE operator profiles attached to
``db.query`` spans into a top-N hottest-operator list.
"""

from __future__ import annotations

from dataclasses import dataclass

#: engine-tier span names (never nested inside each other)
_DB_SPAN_NAMES = frozenset({"db.query", "db.plan", "db.dml"})


@dataclass
class QueryBreakdown:
    """Layer decomposition of one power-test query."""

    name: str
    variant: str
    total_s: float
    app_s: float
    dbif_s: float
    engine_s: float
    disk_s: float
    roundtrips: float = 0
    dbif_calls: int = 0
    tuples_shipped: float = 0
    failed: bool = False

    def to_dict(self) -> dict:
        return {
            "query": self.name,
            "variant": self.variant,
            "total_s": self.total_s,
            "app_server_s": self.app_s,
            "dbif_s": self.dbif_s,
            "engine_s": self.engine_s,
            "disk_s": self.disk_s,
            "roundtrips": self.roundtrips,
            "dbif_calls": self.dbif_calls,
            "tuples_shipped": self.tuples_shipped,
            "failed": self.failed,
        }


@dataclass
class OperatorTotals:
    """One operator label aggregated across plans and executions."""

    label: str
    loops: int = 0
    rows_out: int = 0
    pages_read: float = 0.0
    inclusive_s: float = 0.0
    exclusive_s: float = 0.0
    plans: int = 0

    def to_dict(self) -> dict:
        return {
            "operator": self.label,
            "plans": self.plans,
            "loops": self.loops,
            "rows_out": self.rows_out,
            "pages_read": self.pages_read,
            "inclusive_s": self.inclusive_s,
            "exclusive_s": self.exclusive_s,
        }


@dataclass
class _LayerSums:
    dbif_incl: float = 0.0
    db_under_dbif: float = 0.0
    db_direct: float = 0.0
    dbif_calls: int = 0


class TraceAnalyzer:
    """Aggregations over one tracer's span tree."""

    def __init__(self, tracer) -> None:
        #: a Tracer or any object with ``roots``/``iter_spans``
        self.tracer = tracer

    # -- layer breakdowns --------------------------------------------------

    def query_breakdowns(self) -> list[QueryBreakdown]:
        """One row per ``power.query`` span, in execution order."""
        out = []
        for span in self.tracer.iter_spans():
            if span.name != "power.query":
                continue
            sums = _LayerSums()
            self._collect_children(span.children, False, sums)
            total = span.elapsed_s
            engine = sums.db_under_dbif + sums.db_direct
            dbif = sums.dbif_incl - sums.db_under_dbif
            app = total - sums.dbif_incl - sums.db_direct
            out.append(QueryBreakdown(
                name=str(span.attrs.get("name", "?")),
                variant=str(span.attrs.get("variant", "?")),
                total_s=total,
                app_s=app,
                dbif_s=dbif,
                engine_s=engine,
                disk_s=span.counters.get("disk.time_s", 0.0),
                roundtrips=span.counters.get("dbif.roundtrips", 0),
                dbif_calls=sums.dbif_calls,
                tuples_shipped=span.counters.get("dbif.tuples_shipped", 0),
                failed=bool(span.attrs.get("failed", False)),
            ))
        return out

    def _collect(self, span, inside_dbif: bool, sums: _LayerSums) -> None:
        if span.name == "dbif.call":
            sums.dbif_incl += span.elapsed_s
            sums.dbif_calls += 1
            inside_dbif = True
        elif span.name in _DB_SPAN_NAMES:
            if inside_dbif:
                sums.db_under_dbif += span.elapsed_s
            else:
                sums.db_direct += span.elapsed_s
            # db spans never nest in each other; no need to recurse for
            # layer accounting, but keep walking for dbif sanity.
            return
        self._collect_children(span.children, inside_dbif, sums)

    def _collect_children(self, children, inside_dbif: bool,
                          sums: _LayerSums) -> None:
        """Walk child spans; concurrent siblings contribute max, not sum.

        Worker-lane spans (``parallel=True``) under one parent ran
        concurrently on the simulated time axis, so adding their layer
        seconds would overcount against the parent's wall-clock.  Lane
        siblings are grouped by their ``phase`` attribute (a barrier
        separates phases, making phases sequential) and each group
        folds its per-lane time fields via max — the straggler lane
        sets the group's contribution — while discrete counts such as
        ``dbif_calls`` still add across lanes.
        """
        lane_groups: dict[object, list] = {}
        for child in children:
            if child.attrs.get("parallel"):
                lane_groups.setdefault(
                    child.attrs.get("phase"), []).append(child)
            else:
                self._collect(child, inside_dbif, sums)
        for lanes in lane_groups.values():
            per_lane = []
            for lane in lanes:
                lane_sums = _LayerSums()
                self._collect(lane, inside_dbif, lane_sums)
                per_lane.append(lane_sums)
            sums.dbif_incl += max(s.dbif_incl for s in per_lane)
            sums.db_under_dbif += max(s.db_under_dbif for s in per_lane)
            sums.db_direct += max(s.db_direct for s in per_lane)
            sums.dbif_calls += sum(s.dbif_calls for s in per_lane)

    # -- operator profiles -------------------------------------------------

    def top_operators(self, n: int = 10) -> list[OperatorTotals]:
        """Hottest plan operators by exclusive simulated time.

        Profiles accumulate across executions of a cached plan and the
        same profile object is attached to every execution span of that
        plan, so aggregation dedupes by object identity first.
        """
        seen: set[int] = set()
        totals: dict[str, OperatorTotals] = {}
        for span in self.tracer.iter_spans():
            if span.name != "db.query":
                continue
            profile = span.attrs.get("profile")
            if profile is None or id(profile) in seen:
                continue
            seen.add(id(profile))
            for node in profile.walk():
                entry = totals.setdefault(node.label,
                                          OperatorTotals(node.label))
                entry.plans += 1
                entry.loops += node.loops
                entry.rows_out += node.rows_out
                entry.pages_read += node.pages_read
                entry.inclusive_s += node.inclusive_s
                entry.exclusive_s += node.exclusive_s
        ranked = sorted(totals.values(), key=lambda t: -t.exclusive_s)
        return ranked[:n]

    # -- summaries ---------------------------------------------------------

    def summary(self, top: int = 10) -> dict:
        """JSON-ready dict: per-query breakdowns + hottest operators."""
        breakdowns = self.query_breakdowns()
        return {
            "queries": [b.to_dict() for b in breakdowns],
            "totals": self._totals(breakdowns),
            "top_operators": [o.to_dict() for o in self.top_operators(top)],
            "span_count": sum(1 for _ in self.tracer.iter_spans()),
        }

    @staticmethod
    def _totals(breakdowns: list[QueryBreakdown]) -> dict:
        return {
            "total_s": sum(b.total_s for b in breakdowns),
            "app_server_s": sum(b.app_s for b in breakdowns),
            "dbif_s": sum(b.dbif_s for b in breakdowns),
            "engine_s": sum(b.engine_s for b in breakdowns),
            "disk_s": sum(b.disk_s for b in breakdowns),
            "roundtrips": sum(b.roundtrips for b in breakdowns),
        }

    def render_text(self, top: int = 10, title: str | None = None) -> str:
        """The ST05-style text report (per-query layers + hot operators)."""
        from repro.core.results import render_table

        breakdowns = self.query_breakdowns()
        rows = []
        for b in breakdowns:
            rows.append([
                b.name + (" !" if b.failed else ""),
                _seconds(b.total_s), _seconds(b.app_s), _seconds(b.dbif_s),
                _seconds(b.engine_s), _seconds(b.disk_s),
                f"{int(b.roundtrips):,}",
            ])
        totals = self._totals(breakdowns)
        rows.append([
            "Total", _seconds(totals["total_s"]),
            _seconds(totals["app_server_s"]), _seconds(totals["dbif_s"]),
            _seconds(totals["engine_s"]), _seconds(totals["disk_s"]),
            f"{int(totals['roundtrips']):,}",
        ])
        table = render_table(
            ["Query", "Total s", "App-server s", "DBIF s", "Engine s",
             "of which Disk s", "Round trips"],
            rows, title=title,
        )
        lines = [table, "",
                 f"Top {top} operators by exclusive simulated time:"]
        op_rows = []
        for i, op in enumerate(self.top_operators(top), 1):
            op_rows.append([
                str(i), op.label, f"{op.loops:,}", f"{op.rows_out:,}",
                f"{op.pages_read:,.0f}", _seconds(op.exclusive_s),
                _seconds(op.inclusive_s),
            ])
        if op_rows:
            lines.append(render_table(
                ["#", "Operator", "Loops", "Rows out", "Pages",
                 "Excl s", "Incl s"], op_rows))
        else:
            lines.append("  (no operator profiles in this trace)")
        return "\n".join(lines)


def _seconds(value: float) -> str:
    return f"{value:,.3f}"
