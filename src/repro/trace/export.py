"""Trace exporters: a stable JSON form and Chrome ``chrome://tracing``.

``to_json`` serialises a tracer's span tree into a plain-dict document
(format tag ``repro-trace-v1``); ``to_chrome`` converts either a tracer
or that JSON document into the Chrome Trace Event format, so a trace
dumped to disk can be loaded into ``chrome://tracing`` / Perfetto.  All
timestamps are *simulated* seconds, exported as microseconds in the
Chrome form (the convention that format expects).
"""

from __future__ import annotations

_SCALAR = (str, int, float, bool, type(None))


def _attr_value(value: object) -> object:
    if isinstance(value, _SCALAR):
        return value
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return str(value)


def span_to_dict(span) -> dict:
    """One span (and its subtree) as plain JSON-ready dicts."""
    end_s = span.end_s if span.end_s is not None else span.start_s
    out = {
        "name": span.name,
        "start_s": span.start_s,
        "end_s": end_s,
        "attrs": {k: _attr_value(v) for k, v in span.attrs.items()},
    }
    if span.counters:
        out["counters"] = dict(span.counters)
    out["children"] = [span_to_dict(child) for child in span.children]
    return out


def to_json(tracer, meta: dict | None = None) -> dict:
    """The whole trace as a JSON-ready document."""
    return {
        "format": "repro-trace-v1",
        "clock": "simulated_seconds",
        "meta": dict(meta or {}),
        "dropped_spans": getattr(tracer, "dropped", 0),
        "spans": [span_to_dict(root) for root in tracer.roots],
    }


def to_chrome(trace, tid: int = 1, pid: int = 1,
              thread_name: str | None = None) -> dict:
    """Chrome Trace Event document from a tracer or a ``to_json`` dict.

    Every span becomes a complete ('X') event; simulated seconds map to
    the format's microsecond timestamps.  Operator profiles are left
    out of ``args`` (they have their own JSON form and would bloat the
    viewer's tooltips).
    """
    if not isinstance(trace, dict):
        trace = to_json(trace)
    events: list[dict] = []
    if thread_name:
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": thread_name}})

    def emit(node: dict) -> None:
        args = {
            k: v for k, v in node.get("attrs", {}).items()
            if isinstance(v, _SCALAR) and v is not None
        }
        for name, value in node.get("counters", {}).items():
            args[f"counter:{name}"] = value
        events.append({
            "name": node["name"],
            "cat": node["name"].split(".", 1)[0],
            "ph": "X",
            "ts": node["start_s"] * 1e6,
            "dur": (node["end_s"] - node["start_s"]) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for child in node.get("children", ()):
            emit(child)

    for root in trace.get("spans", ()):
        emit(root)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(trace.get("meta", {})),
    }
