"""Trace exporters: a stable JSON form and Chrome ``chrome://tracing``.

``to_json`` serialises a tracer's span tree into a plain-dict document
(format tag ``repro-trace-v1``); ``to_chrome`` converts either a tracer
or that JSON document into the Chrome Trace Event format, so a trace
dumped to disk can be loaded into ``chrome://tracing`` / Perfetto.  All
timestamps are *simulated* seconds, exported as microseconds in the
Chrome form (the convention that format expects).
"""

from __future__ import annotations

_SCALAR = (str, int, float, bool, type(None))


def _attr_value(value: object) -> object:
    if isinstance(value, _SCALAR):
        return value
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return str(value)


def span_to_dict(span) -> dict:
    """One span (and its subtree) as plain JSON-ready dicts."""
    end_s = span.end_s if span.end_s is not None else span.start_s
    out = {
        "name": span.name,
        "start_s": span.start_s,
        "end_s": end_s,
        "attrs": {k: _attr_value(v) for k, v in span.attrs.items()},
    }
    if span.counters:
        out["counters"] = dict(span.counters)
    out["children"] = [span_to_dict(child) for child in span.children]
    return out


def to_json(tracer, meta: dict | None = None) -> dict:
    """The whole trace as a JSON-ready document."""
    return {
        "format": "repro-trace-v1",
        "clock": "simulated_seconds",
        "meta": dict(meta or {}),
        "dropped_spans": getattr(tracer, "dropped", 0),
        "spans": [span_to_dict(root) for root in tracer.roots],
    }


#: metric-delta counters promoted to their own chrome counter track
_COUNTER_TRACKS = (
    "dbif.roundtrips",
    "dbif.tuples_shipped",
    "buffer.hits",
    "buffer.misses",
    "buffer_mgr.hits",
    "buffer_mgr.lookups",
    "dbif.cursor_cache_hits",
    "dbif.cursor_cache_misses",
)

#: derived hit-rate tracks: name -> (numerator, denominator-extra)
_RATE_TRACKS = {
    "buffer pool hit rate": ("buffer.hits", "buffer.misses"),
    "cursor-cache hit rate": ("dbif.cursor_cache_hits",
                              "dbif.cursor_cache_misses"),
}


def _counter_events(trace: dict, pid: int) -> list[dict]:
    """Counter ('C') events from the spans' captured metric deltas.

    Spans that captured metrics (e.g. ``power.query``) carry the
    per-span counter deltas; accumulating them in span-end order gives
    running totals, so ``chrome://tracing`` renders round trips and
    buffer traffic as counter tracks under the span rows — plus derived
    hit-rate tracks (pool, cursor cache, and the SAP buffer quality).
    """
    samples: list[tuple[float, dict]] = []

    def collect(node: dict) -> None:
        counters = node.get("counters")
        if counters:
            samples.append((node["end_s"], counters))
        for child in node.get("children", ()):
            collect(child)

    for root in trace.get("spans", ()):
        collect(root)
    samples.sort(key=lambda sample: sample[0])
    events: list[dict] = []
    totals: dict[str, float] = {}
    for end_s, counters in samples:
        for metric in _COUNTER_TRACKS:
            if metric in counters:
                totals[metric] = totals.get(metric, 0.0) + counters[metric]
        ts = end_s * 1e6
        for metric in _COUNTER_TRACKS:
            if metric in totals:
                events.append({"ph": "C", "name": metric,
                               "cat": metric.split(".", 1)[0],
                               "ts": ts, "pid": pid,
                               "args": {"count": totals[metric]}})
        for track, (hit_metric, miss_metric) in _RATE_TRACKS.items():
            hits = totals.get(hit_metric, 0.0)
            misses = totals.get(miss_metric, 0.0)
            if hits + misses > 0:
                events.append({"ph": "C", "name": track, "cat": "rate",
                               "ts": ts, "pid": pid,
                               "args": {"rate": hits / (hits + misses)}})
        lookups = totals.get("buffer_mgr.lookups", 0.0)
        if lookups > 0:
            events.append({
                "ph": "C", "name": "buffer quality", "cat": "rate",
                "ts": ts, "pid": pid,
                "args": {"rate": totals.get("buffer_mgr.hits", 0.0)
                         / lookups}})
    return events


def to_chrome(trace, tid: int = 1, pid: int = 1,
              thread_name: str | None = None,
              counters: bool = True) -> dict:
    """Chrome Trace Event document from a tracer or a ``to_json`` dict.

    Every span becomes a complete ('X') event; simulated seconds map to
    the format's microsecond timestamps.  Operator profiles are left
    out of ``args`` (they have their own JSON form and would bloat the
    viewer's tooltips).  With ``counters=True`` spans' captured metric
    deltas additionally become counter ('C') tracks — running round-trip
    totals and buffer/cursor hit rates alongside the span rows.
    """
    if not isinstance(trace, dict):
        trace = to_json(trace)
    events: list[dict] = []
    if thread_name:
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": thread_name}})

    def emit(node: dict) -> None:
        args = {
            k: v for k, v in node.get("attrs", {}).items()
            if isinstance(v, _SCALAR) and v is not None
        }
        for name, value in node.get("counters", {}).items():
            args[f"counter:{name}"] = value
        events.append({
            "name": node["name"],
            "cat": node["name"].split(".", 1)[0],
            "ph": "X",
            "ts": node["start_s"] * 1e6,
            "dur": (node["end_s"] - node["start_s"]) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for child in node.get("children", ()):
            emit(child)

    for root in trace.get("spans", ()):
        emit(root)
    if counters:
        events.extend(_counter_events(trace, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(trace.get("meta", {})),
    }
