"""ST05-style hierarchical span tracing on the simulated clock.

A :class:`Tracer` records *spans* — named, attributed windows over the
shared :class:`~repro.sim.clock.SimulatedClock`.  Spans nest: every
tier of the stack (report, ABAP runtime, Open SQL, DBIF, engine,
per-operator plan execution) opens a span around its work, producing a
tree that decomposes where the simulated time of a query went — the
same where-did-the-time-go evidence SAP's ST05 SQL trace gives a
basis consultant.

Two invariants the whole subsystem relies on:

* **The tracer never charges the clock.**  Spans only *read*
  ``clock.now`` at entry and exit, so enabling tracing changes the
  simulated duration of any run by exactly zero ticks.
* **Disabled mode allocates nothing.**  When the tracer is disabled,
  :meth:`Tracer.span` returns a shared no-op singleton — no ``Span``
  object, no contextvar traffic, no metrics snapshot — so the hot
  paths pay one attribute load and one branch.

The current span is tracked in a per-tracer :mod:`contextvars`
variable, so tracers from different systems (e.g. the three power-test
variants) never interleave their trees, and code deep in the stack can
annotate the innermost open span via :meth:`Tracer.current`.
"""

from __future__ import annotations

import contextvars
import itertools
from typing import Iterator

from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector, MetricsScope

_tracer_ids = itertools.count()


class _NoopSpan:
    """Shared do-nothing span; the disabled-mode return of ``span()``."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def add(self, name: str, amount: float = 1) -> "_NoopSpan":
        return self


#: the singleton no-op span (identity-testable: ``span() is NOOP_SPAN``)
NOOP_SPAN = _NoopSpan()


class Span:
    """One traced window: name, attributes, children, clock readings.

    ``start_s``/``end_s`` are simulated seconds; ``end_s`` is ``None``
    while the span is open.  ``counters`` holds the metric deltas
    accumulated inside the span when it was opened with
    ``capture_metrics=True``.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "children",
                 "counters", "_tracer", "_token", "_scope")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict,
                 capture_metrics: bool) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start_s: float = 0.0
        self.end_s: float | None = None
        self.children: list[Span] = []
        self.counters: dict[str, float] = {}
        self._token: contextvars.Token | None = None
        self._scope: MetricsScope | None = None
        if capture_metrics and tracer.metrics is not None:
            self._scope = tracer.metrics.scoped()

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start_s = tracer.clock.now
        self._token = tracer._current.set(self)
        if self._scope is not None:
            self._scope.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self._tracer
        self.end_s = tracer.clock.now
        if self._scope is not None:
            self._scope.__exit__()
            self.counters = self._scope.delta
        assert self._token is not None
        parent = self._token.old_value
        tracer._current.reset(self._token)
        if isinstance(parent, Span):
            parent.children.append(self)
        else:
            tracer.roots.append(self)
        return False

    # -- annotation --------------------------------------------------------

    def set(self, **attrs: object) -> "Span":
        """Attach or overwrite attributes on this span."""
        self.attrs.update(attrs)
        return self

    def add(self, name: str, amount: float = 1) -> "Span":
        """Accumulate a numeric attribute (e.g. retries within a call)."""
        self.attrs[name] = self.attrs.get(name, 0) + amount
        return self

    # -- readings ----------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Inclusive simulated seconds (to 'now' while still open)."""
        end = self.end_s if self.end_s is not None else self._tracer.clock.now
        return end - self.start_s

    @property
    def self_s(self) -> float:
        """Exclusive simulated seconds: inclusive minus child spans."""
        return self.elapsed_s - sum(c.elapsed_s for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.elapsed_s:.6f}s, "
                f"{len(self.children)} children)")


class Tracer:
    """Span factory and trace store for one simulated system.

    Disabled by default; ``enable()`` before the work to trace.  An
    optional ``max_spans`` bounds memory on very large runs — spans
    beyond the cap are silently replaced by the no-op span and counted
    in :attr:`dropped`.
    """

    def __init__(self, clock: SimulatedClock,
                 metrics: MetricsCollector | None = None,
                 enabled: bool = False,
                 max_spans: int | None = None) -> None:
        self.clock = clock
        self.metrics = metrics
        self.enabled = enabled
        self.max_spans = max_spans
        self.roots: list[Span] = []
        self.dropped = 0
        self.span_count = 0
        self._current: contextvars.ContextVar[Span | None] = \
            contextvars.ContextVar(f"repro_trace_{next(_tracer_ids)}",
                                   default=None)

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop all recorded spans (the enabled flag is unchanged)."""
        self.roots.clear()
        self.dropped = 0
        self.span_count = 0

    # -- span creation -----------------------------------------------------

    def span(self, name: str, /, capture_metrics: bool = False,
             **attrs: object):
        """Open a span (context manager).  No-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        if self.max_spans is not None and self.span_count >= self.max_spans:
            self.dropped += 1
            return NOOP_SPAN
        self.span_count += 1
        return Span(self, name, attrs, capture_metrics)

    def current(self):
        """The innermost open span, or the no-op span when none/disabled."""
        if not self.enabled:
            return NOOP_SPAN
        span = self._current.get()
        return span if span is not None else NOOP_SPAN

    # -- reading -----------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, depth-first over all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.iter_spans() if s.name == name]
