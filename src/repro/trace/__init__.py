"""Hierarchical span tracing and profiling over the simulated stack.

The core pieces:

* :class:`~repro.trace.tracer.Tracer` / :class:`~repro.trace.tracer.Span`
  — the clock-reading span recorder every tier reports into,
* :class:`~repro.trace.analyze.TraceAnalyzer` — per-query layer
  breakdowns and hottest-operator rankings,
* :func:`~repro.trace.export.to_json` / :func:`~repro.trace.export.to_chrome`
  — serialisers for offline inspection.

The CLI glue lives in :mod:`repro.trace.cli` and is intentionally not
imported here (it pulls in the whole power test).
"""

from repro.trace.analyze import OperatorTotals, QueryBreakdown, TraceAnalyzer
from repro.trace.export import span_to_dict, to_chrome, to_json
from repro.trace.tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "NOOP_SPAN", "OperatorTotals", "QueryBreakdown", "Span", "Tracer",
    "TraceAnalyzer", "span_to_dict", "to_chrome", "to_json",
]
