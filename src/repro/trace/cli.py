"""``python -m repro trace`` — run an experiment under the tracer.

Currently the traceable experiment is the power test::

    python -m repro trace power --release 2.2 --sf 0.002 --format=text
    python -m repro trace power --format=json --trace-out trace.json
    python -m repro trace power --format=chrome --trace-out trace.chrome.json

``text`` prints the ST05-style per-query layer breakdown and hottest
operators per variant; ``json`` dumps the analysis plus the full span
tree; ``chrome`` emits one Chrome Trace Event document with each
variant on its own thread row, loadable in ``chrome://tracing``.
"""

from __future__ import annotations

import json
import sys

from repro.core.powertest import run_power_test
from repro.r3.appserver import R3Version
from repro.trace.analyze import TraceAnalyzer
from repro.trace.export import to_chrome, to_json


def _dump(document: dict, args) -> None:
    out = getattr(args, "trace_out", None)
    text = json.dumps(document, indent=2, default=str)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)


def run_trace_command(args) -> int:
    target = args.paths[0] if getattr(args, "paths", None) else "power"
    if target != "power":
        print(f"trace: unsupported experiment {target!r} "
              "(only 'power' can be traced)", file=sys.stderr)
        return 2
    version = R3Version.V22 if args.release == "2.2" else R3Version.V30
    top = getattr(args, "top", 10)
    result = run_power_test(args.sf, version,
                            include_updates=not args.no_updates,
                            tracing=True,
                            degree=getattr(args, "degree", 1))

    if args.format == "text":
        first = True
        for variant, tracer in result.traces.items():
            if not first:
                print()
            first = False
            title = (f"Power test trace — {variant}, "
                     f"R/3 {version.value}, SF={args.sf}")
            print(TraceAnalyzer(tracer).render_text(top=top, title=title))
        return 0

    meta = {"experiment": "power", "release": version.value, "sf": args.sf}
    if args.format == "json":
        document = {
            "format": "repro-power-trace-v1",
            "meta": meta,
            "variants": {
                variant: {
                    "analysis": TraceAnalyzer(tracer).summary(top=top),
                    "trace": to_json(tracer, meta={**meta,
                                                   "variant": variant}),
                }
                for variant, tracer in result.traces.items()
            },
        }
        _dump(document, args)
        return 0

    # chrome: all variants in one document, one thread row per variant
    events: list[dict] = []
    for tid, (variant, tracer) in enumerate(result.traces.items(), start=1):
        chrome = to_chrome(tracer, tid=tid, thread_name=variant)
        events.extend(chrome["traceEvents"])
    _dump({"traceEvents": events, "displayTimeUnit": "ms",
           "otherData": meta}, args)
    return 0
