"""Reconstructing the original TPC-D database from the SAP database.

The paper's Table 9: Open SQL reports that read the SAP schema and
write the original eight tables as ASCII files (the feed for a data
warehouse such as SAP's EIS).  The total cost is comparable to one
full Open SQL power test — the reason the paper concludes a warehouse
only pays off for much heavier analytical load.

Extraction runs on Release 3.0 (joins available); the LINEITEM
reconstruction is the expensive one: it reassembles every position
from VBAP + VBEP + VBAK + two KONV conditions + its STXL comment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.r3.abap import InternalTable
from repro.r3.appserver import R3System
from repro.reports.common import discount_of, nation_names, tax_of
from repro.sapschema.mapping import KeyCodec


@dataclass
class ExtractResult:
    table: str
    rows: int
    elapsed_s: float
    lines: list[str] = field(default_factory=list)


def _ascii(values) -> str:
    return "|".join("" if v is None else str(v) for v in values)


def _stxl_map(r3: R3System, tdobject: str) -> dict[str, str]:
    result = r3.open_sql.select(
        "SELECT tdname tdline FROM stxl WHERE tdobject = :obj",
        {"obj": tdobject},
    )
    out: dict[str, str] = {}
    for tdname, tdline in result.rows:
        r3.charge_abap(1)
        out[tdname] = tdline
    return out


def extract_region(r3: R3System) -> list[str]:
    result = r3.open_sql.select(
        "SELECT regio bezei FROM t005u WHERE spras = 'E'"
    )
    lines = []
    for regio, bezei in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((int(regio[1:]), bezei)))
    return lines


def extract_nation(r3: R3System) -> list[str]:
    result = r3.open_sql.select(
        "SELECT t005~land1 t005~regio t005t~landx "
        "FROM t005 INNER JOIN t005t ON t005t~land1 = t005~land1 "
        "WHERE t005t~spras = 'E'"
    )
    lines = []
    for land1, regio, landx in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((KeyCodec.nationkey(land1), landx,
                             int(regio[1:]))))
    return lines


def extract_supplier(r3: R3System) -> list[str]:
    comments = _stxl_map(r3, "LFA1")
    result = r3.open_sql.select(
        "SELECT lifnr name1 stras land1 telf1 saldo FROM lfa1"
    )
    lines = []
    for lifnr, name1, stras, land1, telf1, saldo in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((
            KeyCodec.suppkey(lifnr), name1, stras,
            KeyCodec.nationkey(land1), telf1, saldo,
            comments.get(lifnr, ""),
        )))
    return lines


def extract_part(r3: R3System) -> list[str]:
    comments = _stxl_map(r3, "MARA")
    # Retail prices sit behind the A004 pool table -> KONP.
    a004 = r3.open_sql.select("SELECT matnr knumh FROM a004")
    prices: dict[str, float] = {}
    for matnr, knumh in a004.rows:
        r3.charge_abap(1)
        konp = r3.open_sql.select_single(
            "SELECT SINGLE kbetr FROM konp WHERE knumh = :knumh",
            {"knumh": knumh},
        )
        prices[matnr] = konp[0] if konp else 0.0
    result = r3.open_sql.select(
        "SELECT p~matnr mk~maktx p~mfrpn p~extwg p~mtart a~atflv "
        "p~magrv "
        "FROM mara AS p "
        "INNER JOIN makt AS mk ON mk~matnr = p~matnr "
        "INNER JOIN ausp AS a ON a~objek = p~matnr "
        "WHERE mk~spras = 'E' AND a~atinn = 'SIZE'"
    )
    lines = []
    for matnr, maktx, mfrpn, extwg, mtart, atflv, magrv in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((
            KeyCodec.partkey(matnr), maktx, mfrpn, extwg, mtart,
            int(atflv), magrv, prices.get(matnr, 0.0),
            comments.get(matnr, ""),
        )))
    return lines


def extract_partsupp(r3: R3System) -> list[str]:
    result = r3.open_sql.select(
        "SELECT ia~matnr ia~lifnr ie~avlqt ie~netpr "
        "FROM eina AS ia INNER JOIN eine AS ie ON ie~infnr = ia~infnr"
    )
    lines = []
    for matnr, lifnr, avlqt, netpr in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((
            KeyCodec.partkey(matnr), KeyCodec.suppkey(lifnr), avlqt,
            netpr,
        )))
    return lines


def extract_customer(r3: R3System) -> list[str]:
    comments = _stxl_map(r3, "KNA1")
    result = r3.open_sql.select(
        "SELECT kunnr name1 stras land1 telf1 saldo brsch FROM kna1"
    )
    lines = []
    for kunnr, name1, stras, land1, telf1, saldo, brsch in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((
            KeyCodec.custkey(kunnr), name1, stras,
            KeyCodec.nationkey(land1), telf1, saldo, brsch,
            comments.get(kunnr, ""),
        )))
    return lines


def extract_orders(r3: R3System) -> list[str]:
    comments = _stxl_map(r3, "VBBK")
    result = r3.open_sql.select(
        "SELECT vbeln kunnr gbstk netwr audat prior ernam sprio FROM vbak"
    )
    lines = []
    for vbeln, kunnr, gbstk, netwr, audat, prior, ernam, sprio \
            in result.rows:
        r3.charge_abap(1)
        lines.append(_ascii((
            KeyCodec.orderkey(vbeln), KeyCodec.custkey(kunnr), gbstk,
            netwr, audat, prior, ernam, sprio, comments.get(vbeln, ""),
        )))
    return lines


def extract_lineitem(r3: R3System) -> list[str]:
    comments = InternalTable(r3)
    comments.extend(r3.open_sql.select(
        "SELECT tdname tdline FROM stxl WHERE tdobject = 'VBBP'").rows)
    comments.sort(lambda row: (row[0],))
    result = r3.open_sql.select(
        "SELECT p~vbeln p~posnr p~matnr p~lifnr p~kwmeng p~netwr "
        "p~rkflg p~gbsta e~edatu e~mbdat e~lfdat p~sdabw p~vsart "
        "kd~kbetr kt~kbetr "
        "FROM vbap AS p "
        "INNER JOIN vbep AS e ON e~vbeln = p~vbeln AND e~posnr = p~posnr "
        "INNER JOIN vbak AS k ON k~vbeln = p~vbeln "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "INNER JOIN konv AS kt ON kt~knumv = k~knumv "
        "AND kt~kposn = p~posnr "
        "WHERE kd~kschl = 'DISC' AND kt~kschl = 'TAX'"
    )
    lines = []
    for (vbeln, posnr, matnr, lifnr, kwmeng, netwr, rkflg, gbsta,
         edatu, mbdat, lfdat, sdabw, vsart, kbetr_d, kbetr_t) \
            in result.rows:
        r3.charge_abap(1)
        comment_row = comments.read_binary((vbeln + posnr,))
        lines.append(_ascii((
            KeyCodec.orderkey(vbeln), KeyCodec.partkey(matnr),
            KeyCodec.suppkey(lifnr), KeyCodec.linenumber(posnr),
            kwmeng, netwr, discount_of(kbetr_d), tax_of(kbetr_t),
            rkflg, gbsta, edatu, mbdat, lfdat, sdabw, vsart,
            comment_row[1] if comment_row else "",
        )))
    return lines


_EXTRACTORS = [
    ("REGION", extract_region),
    ("NATION", extract_nation),
    ("SUPPLIER", extract_supplier),
    ("PART", extract_part),
    ("PARTSUPP", extract_partsupp),
    ("CUSTOMER", extract_customer),
    ("ORDER", extract_orders),
    ("LINEITEM", extract_lineitem),
]


def extract_all(r3: R3System, keep_lines: bool = False
                ) -> dict[str, ExtractResult]:
    """Run all eight extraction reports; returns per-table timings."""
    out: dict[str, ExtractResult] = {}
    for table, extractor in _EXTRACTORS:
        span = r3.measure()
        lines = extractor(r3)
        elapsed = span.stop()
        out[table] = ExtractResult(
            table=table, rows=len(lines), elapsed_s=elapsed,
            lines=lines if keep_lines else [],
        )
    return out


# nation_names is imported for reports that post-process extractions.
__all__ = ["ExtractResult", "extract_all", "nation_names"]
