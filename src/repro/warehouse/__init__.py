"""Data-warehouse construction from the SAP database (paper Section 5)."""

from repro.warehouse.extract import ExtractResult, extract_all

__all__ = ["ExtractResult", "extract_all"]
