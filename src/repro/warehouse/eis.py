"""An EIS-style data warehouse (the paper's stated future work).

Section 5 ends with: *"in particular, we will study the performance
that can be achieved by using SAP's data warehouse product EIS."*
This module builds that study:

1. run the Open SQL extraction reports against the SAP database,
2. parse the ASCII feed back into the original eight-table schema in a
   dedicated warehouse database (bulk loaded, analyzed),
3. answer decision-support queries there at isolated-RDBMS speed,
4. propagate new business documents incrementally.

The pay-off analysis the paper sketches falls out directly: the
warehouse costs one extraction up front and wins
``(open_sql_query_cost - warehouse_query_cost)`` per query thereafter.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.r3.appserver import R3System
from repro.sapschema.mapping import KeyCodec
from repro.sim.params import SimParams
from repro.tpcd.queries import build_queries, run_query
from repro.tpcd.schema import create_original_schema
from repro.warehouse.extract import extract_all


def _i(text: str) -> int:
    return int(text)


def _f(text: str) -> float:
    return float(text)


def _d(text: str) -> datetime.date:
    return datetime.date.fromisoformat(text)


def _s(text: str) -> str:
    return text


#: per-table field converters for the ASCII feed, plus padding for
#: original-schema columns the feed does not carry (comments lost in
#: the SAP mapping)
_LOADERS = {
    "region": ([_i, _s], 1),
    "nation": ([_i, _s, _i], 1),
    "supplier": ([_i, _s, _s, _i, _s, _f, _s], 0),
    "part": ([_i, _s, _s, _s, _s, _i, _s, _f, _s], 0),
    "partsupp": ([_i, _i, _i, _f], 1),
    "customer": ([_i, _s, _s, _i, _s, _f, _s, _s], 0),
    "orders": ([_i, _i, _s, _f, _d, _s, _s, _i, _s], 0),
    "lineitem": ([_i, _i, _i, _i, _f, _f, _f, _f, _s, _s, _d, _d, _d,
                  _s, _s, _s], 0),
}
_FEED_TABLE = {
    "REGION": "region", "NATION": "nation", "SUPPLIER": "supplier",
    "PART": "part", "PARTSUPP": "partsupp", "CUSTOMER": "customer",
    "ORDER": "orders", "LINEITEM": "lineitem",
}


def parse_feed_line(table: str, line: str) -> tuple:
    """One ASCII feed line -> a typed original-schema row."""
    converters, padding = _LOADERS[table]
    parts = line.split("|")
    if len(parts) != len(converters):
        raise ValueError(
            f"{table}: feed line has {len(parts)} fields, "
            f"expected {len(converters)}"
        )
    row = tuple(conv(part) for conv, part in zip(converters, parts))
    return row + ("",) * padding


@dataclass
class EisBuildReport:
    extraction_s: float
    load_s: float
    rows_loaded: int = 0

    @property
    def total_s(self) -> float:
        return self.extraction_s + self.load_s


@dataclass
class EisWarehouse:
    """The warehouse database plus its construction cost."""

    db: Database
    build: EisBuildReport
    #: per-query simulated times of warehouse runs (filled by callers)
    query_times: dict[str, float] = field(default_factory=dict)

    @classmethod
    def build_from_sap(cls, r3: R3System,
                       params: SimParams | None = None) -> "EisWarehouse":
        """Extract from SAP, parse, bulk load, analyze."""
        span = r3.measure()
        feed = extract_all(r3, keep_lines=True)
        extraction_s = span.stop()

        db = Database(params=params or r3.params, name="eis")
        create_original_schema(db)
        span = db.clock.span()
        rows_loaded = 0
        for feed_name, table in _FEED_TABLE.items():
            rows = [
                parse_feed_line(table, line)
                for line in feed[feed_name].lines
            ]
            # Parsing the feed is warehouse-side CPU work.
            db.ctx.charge_tuples(len(rows))
            db.bulk_load(table, rows)
            rows_loaded += len(rows)
        db.analyze()
        load_s = span.stop()
        return cls(db=db, build=EisBuildReport(
            extraction_s=extraction_s, load_s=load_s,
            rows_loaded=rows_loaded,
        ))

    def run_query(self, number: int, scale_factor: float):
        """One TPC-D query against the warehouse, timed."""
        spec = build_queries(scale_factor)[number]
        span = self.db.clock.span()
        result = run_query(self.db, spec)
        self.query_times[spec.name] = span.stop()
        return result

    def run_power_test(self, scale_factor: float) -> float:
        """All 17 queries; returns total simulated seconds."""
        total = 0.0
        for number in range(1, 18):
            self.run_query(number, scale_factor)
            total += self.query_times[f"Q{number}"]
        return total

    # -- incremental maintenance --------------------------------------------

    def propagate_new_orders(self, r3: R3System,
                             orderkeys: list[int]) -> float:
        """Incrementally push new SAP documents into the warehouse.

        Re-extracts just the named documents through Open SQL probes
        (header, positions, conditions, texts) and inserts them.
        Returns the combined simulated cost (SAP side + warehouse
        side), the paper's "incremental propagation" cost.
        """
        span = r3.measure()
        order_rows: list[tuple] = []
        lineitem_rows: list[tuple] = []
        for orderkey in orderkeys:
            vbeln = KeyCodec.vbeln(orderkey)
            header = r3.open_sql.select_single(
                "SELECT SINGLE kunnr gbstk netwr audat prior ernam sprio "
                "FROM vbak WHERE vbeln = :v",
                {"v": vbeln},
            )
            if header is None:
                continue
            kunnr, gbstk, netwr, audat, prior, ernam, sprio = header
            comment = r3.open_sql.select_single(
                "SELECT SINGLE tdline FROM stxl WHERE tdobject = 'VBBK' "
                "AND tdname = :n", {"n": vbeln},
            )
            order_rows.append((
                orderkey, KeyCodec.custkey(kunnr), gbstk, netwr, audat,
                prior, ernam, sprio, comment[0] if comment else "",
            ))
            lineitem_rows.extend(
                self._extract_document_items(r3, orderkey)
            )
        sap_s = span.stop()
        span = self.db.clock.span()
        for row in order_rows:
            self.db.catalog.table("orders").insert(row)
        for row in lineitem_rows:
            self.db.catalog.table("lineitem").insert(row)
        warehouse_s = span.stop()
        return sap_s + warehouse_s

    @staticmethod
    def _extract_document_items(r3: R3System,
                                orderkey: int) -> list[tuple]:
        from repro.reports.common import KonvLookup

        vbeln = KeyCodec.vbeln(orderkey)
        knumv = KeyCodec.knumv(orderkey)
        konv = KonvLookup(r3)
        items = r3.open_sql.select(
            "SELECT posnr matnr lifnr kwmeng netwr rkflg gbsta vsart "
            "sdabw FROM vbap WHERE vbeln = :v",
            {"v": vbeln},
        )
        out: list[tuple] = []
        for (posnr, matnr, lifnr, kwmeng, netwr, rkflg, gbsta, vsart,
             sdabw) in items.rows:
            dates = r3.open_sql.select_single(
                "SELECT SINGLE edatu mbdat lfdat FROM vbep "
                "WHERE vbeln = :v AND posnr = :p",
                {"v": vbeln, "p": posnr},
            )
            comment = r3.open_sql.select_single(
                "SELECT SINGLE tdline FROM stxl WHERE tdobject = 'VBBP' "
                "AND tdname = :n", {"n": vbeln + posnr},
            )
            conditions = konv.conditions(knumv)[posnr]
            out.append((
                orderkey, KeyCodec.partkey(matnr),
                KeyCodec.suppkey(lifnr), KeyCodec.linenumber(posnr),
                kwmeng, netwr, conditions["disc"], conditions["tax"],
                rkflg, gbsta, dates[0], dates[1], dates[2], sdabw, vsart,
                comment[0] if comment else "",
            ))
        return out


def breakeven_queries(build_cost_s: float, open_total_s: float,
                      warehouse_total_s: float,
                      queries_per_round: int = 17) -> float:
    """How many power-test rounds until the warehouse pays off."""
    per_round_gain = open_total_s - warehouse_total_s
    if per_round_gain <= 0:
        return float("inf")
    return build_cost_s / per_round_gain
