"""Reproduction of *Database Performance in the Real World — TPC-D and
SAP R/3* (Doppelhammer, Höppler, Kemper, Kossmann; SIGMOD 1997).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.sim`       — simulated clock / metrics / disk
* :mod:`repro.engine`    — the relational back-end (SQL, optimizer, executor)
* :mod:`repro.tpcd`      — TPC-D data generator, queries, update functions
* :mod:`repro.r3`        — the SAP R/3 application-server simulator
* :mod:`repro.sapschema` — the TPC-D data inside SAP's 17-table schema
* :mod:`repro.reports`   — the benchmark reports (RDBMS / Native / Open SQL)
* :mod:`repro.warehouse` — data-warehouse extraction
* :mod:`repro.core`      — power-test harness, experiments, calibration
"""

__version__ = "1.0.0"
