"""Deterministic simulated clock.

All performance-relevant components charge costs (in simulated seconds)
to a shared :class:`SimulatedClock`.  The clock supports nested *spans*
so a harness can measure the simulated duration of a query while the
same clock keeps accumulating globally.
"""

from __future__ import annotations

from typing import Callable


class ClockSpan:
    """A window over the clock; ``elapsed`` is time charged since entry."""

    def __init__(self, clock: "SimulatedClock") -> None:
        self._clock = clock
        self._start = clock.now
        self._end: float | None = None

    def stop(self) -> float:
        """Freeze the span and return the elapsed simulated seconds."""
        if self._end is None:
            self._end = self._clock.now
        return self.elapsed

    @property
    def elapsed(self) -> float:
        end = self._end if self._end is not None else self._clock.now
        return end - self._start

    def __enter__(self) -> "ClockSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class SimulatedClock:
    """Accumulates simulated seconds charged by components.

    The clock is purely additive and deterministic: identical operation
    sequences always produce identical readings.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._deadlines: dict[int, tuple[float, Callable[[], Exception]]] = {}
        self._next_deadline_token = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds since clock creation."""
        return self._now

    def charge(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` of simulated work.

        If the advance crosses an armed deadline, the deadline fires:
        its entry is removed and its exception raised.  The charge
        itself still lands first, so the caller sees the *partial*
        simulated cost accrued up to the abort — exactly how a timed-out
        query shows up in the power-test reports.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._now += seconds
        if self._deadlines:
            self._check_deadlines()

    def span(self) -> ClockSpan:
        """Open a measurement window (usable as a context manager)."""
        return ClockSpan(self)

    def reset(self) -> None:
        """Rewind to zero.  Only meant for harness setup, not mid-run."""
        self._now = 0.0
        self._deadlines.clear()

    # -- deadlines (statement/query timeouts) --------------------------------

    def push_deadline(self, at: float,
                      exc_factory: Callable[[], Exception]) -> int:
        """Arm a deadline at absolute simulated time ``at``.

        Returns a token for :meth:`pop_deadline`.  When a ``charge``
        crosses ``at``, ``exc_factory()`` is raised from inside the
        charging call — aborting whatever simulated work was in flight,
        wherever in the stack it happened.  Deadlines nest; the earliest
        armed one fires first.
        """
        token = self._next_deadline_token
        self._next_deadline_token += 1
        self._deadlines[token] = (at, exc_factory)
        return token

    def pop_deadline(self, token: int) -> None:
        """Disarm a deadline; a no-op if it already fired."""
        self._deadlines.pop(token, None)

    def _check_deadlines(self) -> None:
        expired = [
            (at, token) for token, (at, _) in self._deadlines.items()
            if self._now >= at
        ]
        if not expired:
            return
        expired.sort()
        _, token = expired[0]
        _, factory = self._deadlines.pop(token)
        raise factory()


def format_duration(seconds: float) -> str:
    """Render simulated seconds the way the paper prints durations.

    The paper uses ``25d 19h 55m``, ``2h 14m 56s``, ``5m 17s``, ``34s``
    style strings; we mirror that so benchmark output lines up visually
    with the published tables.
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    days, rem = divmod(total, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days:
        return f"{days}d {hours}h {minutes:02d}m"
    if hours:
        return f"{hours}h {minutes:02d}m {secs:02d}s"
    if minutes:
        return f"{minutes}m {secs:02d}s"
    return f"{secs}s"
