"""Deterministic simulated clock.

All performance-relevant components charge costs (in simulated seconds)
to a shared :class:`SimulatedClock`.  The clock supports nested *spans*
so a harness can measure the simulated duration of a query while the
same clock keeps accumulating globally.

For parallel execution the clock additionally supports *charge
redirection*: while a :class:`LaneSink` is installed (via
:meth:`SimulatedClock.redirect`), every ``charge`` accumulates into the
sink instead of advancing global time, and ``now`` reads as global time
plus the sink's accumulation — i.e. time becomes lane-local.  The
parallel executor runs each worker lane under its own sink and then
advances the global clock by ``max(lane totals)`` at the barrier, which
is what makes a fragment's elapsed time the slowest lane's time instead
of the sum.
"""

from __future__ import annotations

from typing import Callable


class LaneSink:
    """Accumulator for one worker lane's simulated seconds."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


class _Redirect:
    """Context manager installing a :class:`LaneSink` on the clock."""

    __slots__ = ("_clock", "_sink")

    def __init__(self, clock: "SimulatedClock", sink: LaneSink) -> None:
        self._clock = clock
        self._sink = sink

    def __enter__(self) -> LaneSink:
        if self._clock._sink is not None:
            raise RuntimeError("clock charges are already redirected "
                               "(worker lanes do not nest)")
        self._clock._sink = self._sink
        return self._sink

    def __exit__(self, *exc_info: object) -> None:
        self._clock._sink = None


class ClockSpan:
    """A window over the clock; ``elapsed`` is time charged since entry."""

    def __init__(self, clock: "SimulatedClock") -> None:
        self._clock = clock
        self._start = clock.now
        self._end: float | None = None

    def stop(self) -> float:
        """Freeze the span and return the elapsed simulated seconds."""
        if self._end is None:
            self._end = self._clock.now
        return self.elapsed

    @property
    def elapsed(self) -> float:
        end = self._end if self._end is not None else self._clock.now
        return end - self._start

    def __enter__(self) -> "ClockSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class SimulatedClock:
    """Accumulates simulated seconds charged by components.

    The clock is purely additive and deterministic: identical operation
    sequences always produce identical readings.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sink: LaneSink | None = None
        self._deadlines: dict[int, tuple[float, Callable[[], Exception]]] = {}
        self._next_deadline_token = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds since clock creation.

        While charges are redirected into a lane sink this reads as
        *lane-local* time (global time plus the lane's accumulation),
        so spans and profiles opened inside a lane measure the lane's
        own progress.
        """
        if self._sink is not None:
            return self._now + self._sink.seconds
        return self._now

    @property
    def redirected(self) -> bool:
        """True while a lane sink is installed."""
        return self._sink is not None

    def charge(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` of simulated work.

        If the advance crosses an armed deadline, the deadline fires:
        its entry is removed and its exception raised.  The charge
        itself still lands first, so the caller sees the *partial*
        simulated cost accrued up to the abort — exactly how a timed-out
        query shows up in the power-test reports.

        While redirected, the charge lands in the lane sink and global
        time does not move; armed deadlines are only evaluated against
        global time, so they fire at the fragment barrier (when the
        lanes' max is charged for real), not inside a lane.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if self._sink is not None:
            self._sink.seconds += seconds
            return
        self._now += seconds
        if self._deadlines:
            self._check_deadlines()

    def redirect(self, sink: LaneSink) -> _Redirect:
        """Redirect subsequent charges into ``sink`` (context manager)."""
        return _Redirect(self, sink)

    def span(self) -> ClockSpan:
        """Open a measurement window (usable as a context manager)."""
        return ClockSpan(self)

    def reset(self) -> None:
        """Rewind to zero.  Only meant for harness setup, not mid-run."""
        self._now = 0.0
        self._sink = None
        self._deadlines.clear()

    # -- deadlines (statement/query timeouts) --------------------------------

    def push_deadline(self, at: float,
                      exc_factory: Callable[[], Exception]) -> int:
        """Arm a deadline at absolute simulated time ``at``.

        Returns a token for :meth:`pop_deadline`.  When a ``charge``
        crosses ``at``, ``exc_factory()`` is raised from inside the
        charging call — aborting whatever simulated work was in flight,
        wherever in the stack it happened.  Deadlines nest; the earliest
        armed one fires first.
        """
        token = self._next_deadline_token
        self._next_deadline_token += 1
        self._deadlines[token] = (at, exc_factory)
        return token

    def pop_deadline(self, token: int) -> None:
        """Disarm a deadline; a no-op if it already fired."""
        self._deadlines.pop(token, None)

    def _check_deadlines(self) -> None:
        expired = [
            (at, token) for token, (at, _) in self._deadlines.items()
            if self._now >= at
        ]
        if not expired:
            return
        expired.sort()
        _, token = expired[0]
        _, factory = self._deadlines.pop(token)
        raise factory()


def format_duration(seconds: float) -> str:
    """Render simulated seconds the way the paper prints durations.

    The paper uses ``25d 19h 55m``, ``2h 14m 56s``, ``5m 17s``, ``34s``
    style strings; we mirror that so benchmark output lines up visually
    with the published tables.
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    days, rem = divmod(total, 86400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days:
        return f"{days}d {hours}h {minutes:02d}m"
    if hours:
        return f"{hours}h {minutes:02d}m {secs:02d}s"
    if minutes:
        return f"{minutes}m {secs:02d}s"
    return f"{secs}s"
