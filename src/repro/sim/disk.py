"""Disk model: sequential vs random page access costs.

The paper's Table 6 hinges on exactly this asymmetry — an unclustered
index scan that fetches 1.2M tuples by random I/O loses badly to a
sequential full scan.  The model charges the buffer pool's *misses*;
hits are charged a (much smaller) CPU cost by the buffer pool itself.
"""

from __future__ import annotations

from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector


class DiskModel:
    """Charges simulated time for page transfers.

    Parameters mirror mid-1990s disk behaviour: a random page read pays
    a seek + rotational latency, a sequential read mostly pays transfer
    time.  Values are supplied by the calibration table so every
    experiment shares one source of truth.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        seq_read_s: float,
        random_read_s: float,
        write_s: float,
    ) -> None:
        self._clock = clock
        self._metrics = metrics
        self._seq_read_s = seq_read_s
        self._random_read_s = random_read_s
        self._write_s = write_s

    def read_page(self, sequential: bool) -> None:
        """Charge one page read; ``sequential`` picks the cost class."""
        if sequential:
            self._metrics.count("disk.seq_reads")
            self._clock.charge(self._seq_read_s)
        else:
            self._metrics.count("disk.random_reads")
            self._clock.charge(self._random_read_s)

    def write_page(self) -> None:
        """Charge one page write."""
        self._metrics.count("disk.writes")
        self._clock.charge(self._write_s)
