"""Disk model: sequential vs random page access costs.

The paper's Table 6 hinges on exactly this asymmetry — an unclustered
index scan that fetches 1.2M tuples by random I/O loses badly to a
sequential full scan.  The model charges the buffer pool's *misses*;
hits are charged a (much smaller) CPU cost by the buffer pool itself.

With a :class:`~repro.sim.faults.FaultInjector` attached, each page
transfer may fail with a transient ``DiskIOError``; the model retries
on the spot (as a device driver would), charging the failed transfer
plus an error-recovery penalty to the simulated clock.  Only when the
retry budget is exhausted does the error propagate.
"""

from __future__ import annotations

from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector


class DiskModel:
    """Charges simulated time for page transfers.

    Parameters mirror mid-1990s disk behaviour: a random page read pays
    a seek + rotational latency, a sequential read mostly pays transfer
    time.  Values are supplied by the calibration table so every
    experiment shares one source of truth.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        seq_read_s: float,
        random_read_s: float,
        write_s: float,
        retry_penalty_s: float = 0.030,
        max_retries: int = 3,
        fsync_s: float = 0.005,
        seq_write_s: float = 0.002,
    ) -> None:
        self._clock = clock
        self._metrics = metrics
        self._seq_read_s = seq_read_s
        self._random_read_s = random_read_s
        self._write_s = write_s
        self._seq_write_s = seq_write_s
        self._retry_penalty_s = retry_penalty_s
        self._max_retries = max_retries
        self._fsync_s = fsync_s
        #: optional FaultInjector; None means a fault-free disk
        self.faults = None

    def read_page(self, sequential: bool) -> None:
        """Charge one page read; ``sequential`` picks the cost class."""
        if sequential:
            self._transfer("disk.seq_reads", self._seq_read_s)
        else:
            self._transfer("disk.random_reads", self._random_read_s)

    def write_page(self, sequential: bool = False) -> None:
        """Charge one page write; ``sequential`` picks the cost class.

        Random writes pay seek + rotational latency (the heap's
        in-place page writes); sequential writes pay mostly transfer
        time — the LSM flush/compaction and the direct-path loader
        write whole sorted runs and earn the cheaper class.
        """
        if sequential:
            self._transfer("disk.seq_writes", self._seq_write_s)
        else:
            self._transfer("disk.writes", self._write_s)

    def fsync(self) -> None:
        """Charge one write barrier (the WAL's group-commit log force)."""
        self._transfer("disk.fsyncs", self._fsync_s)

    def _transfer(self, counter: str, cost_s: float) -> None:
        """One page transfer, retried through transient injected faults.

        Besides the per-class page counter, the model accumulates
        ``disk.time_s`` — the simulated seconds spent on transfers — so
        span-scoped counter deltas can attribute disk time per query.
        """
        if self.faults is None:
            self._metrics.count(counter)
            self._metrics.count("disk.time_s", cost_s)
            self._clock.charge(cost_s)
            return
        # Imported lazily: repro.engine imports this module at load time.
        from repro.engine.errors import DiskIOError

        attempts = 0
        while True:
            self._clock.charge(cost_s)
            self._metrics.count("disk.time_s", cost_s)
            try:
                self.faults.on_disk_op()
                break
            except DiskIOError as exc:
                attempts += 1
                self._metrics.count("disk.io_retries")
                self._clock.charge(self._retry_penalty_s)
                self._metrics.count("disk.time_s", self._retry_penalty_s)
                if attempts > self._max_retries:
                    raise DiskIOError(
                        f"page transfer failed after {attempts} attempts"
                    ) from exc
        self._metrics.count(counter)
