"""Simulated hardware and time.

The paper reports wall-clock minutes measured on a 1996 SPARCstation.
Those absolute numbers are a function of hardware we do not have, so the
reproduction replaces wall-clock time with a *counted-operation clock*:
every component charges the operations it performs (page reads, tuple
touches, client/server round trips, ...) to a :class:`SimulatedClock`,
and a calibration table (:mod:`repro.core.calibration`) converts counts
into simulated seconds.  Shapes (ratios, crossovers) are therefore a
deterministic function of the operation counts the architecture produces.
"""

from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector
from repro.sim.disk import DiskModel

__all__ = ["SimulatedClock", "MetricsCollector", "DiskModel"]
