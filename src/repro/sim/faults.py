"""Deterministic fault injection.

The paper's operational numbers come from the real world — a
batch-input load that takes a month (Table 3) does not run on 1996
hardware without disk hiccups, dropped connections and crashed work
processes.  This module injects exactly those three fault classes into
the simulator, **deterministically**: faults are scheduled from the
operation counts and the simulated clock that the components already
maintain, plus a seeded PRNG for interval jitter.  Same seed + same
workload ⇒ bit-identical fault sequence, clocks and metrics.

Fault classes (exception types live in :mod:`repro.engine.errors` /
:mod:`repro.r3.errors`):

* ``DiskIOError`` — transient page-transfer failure; the
  :class:`~repro.sim.disk.DiskModel` retries it on the spot.
* ``ConnectionLostError`` — the app-server/DB connection drops at a
  round-trip boundary; :class:`~repro.r3.dbif.DatabaseInterface`
  retries with exponential backoff.
* ``WorkProcessCrash`` — the work process dies at a transaction
  boundary; batch input rolls back to its last checkpoint and the
  caller resumes from the journal.

A :class:`FaultProfile` is declarative ("a connection drop every ~N
round trips", "a crash at T simulated seconds"); the
:class:`FaultInjector` turns it into raised exceptions at the
instrumented hook points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.clock import SimulatedClock
from repro.sim.metrics import MetricsCollector


@dataclass(frozen=True)
class FaultProfile:
    """A declarative fault schedule.

    ``*_every`` values are mean operation-count intervals; ``jitter``
    spreads each actual interval uniformly within ``±jitter`` of the
    mean using the seeded PRNG (0 ⇒ exact periods).  ``None`` disables
    a fault class entirely.
    """

    name: str = "none"
    seed: int = 0
    #: transient disk I/O error every ~N physical page transfers
    disk_error_every: int | None = None
    #: connection drop every ~N DBIF round trips
    connection_drop_every: int | None = None
    #: consecutive round-trip failures per connection fault (a burst
    #: longer than the DBIF retry budget exhausts the retry loop)
    connection_drop_burst: int = 1
    #: work-process crashes at these absolute simulated times (seconds)
    crash_at_s: tuple[float, ...] = ()
    #: work-process crash every ~N dispatched requests (pool workers)
    work_process_crash_every: int | None = None
    #: kill the whole engine at the Nth durability boundary (WAL
    #: append/flush/fsync or checkpoint begin/page/end); None disables.
    #: Crash-point fuzzing sweeps this index across every boundary.
    crash_at_durability_op: int | None = None
    #: probability that the frame in flight when the engine crashes is
    #: left truncated (torn) on the durable log tail
    torn_write_prob: float = 0.0
    #: relative interval spread, 0.0..0.9
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.connection_drop_burst < 1:
            raise ValueError("connection_drop_burst must be >= 1")
        if not 0.0 <= self.torn_write_prob <= 1.0:
            raise ValueError(
                f"torn_write_prob must be in [0, 1]: {self.torn_write_prob}"
            )
        if self.crash_at_durability_op is not None \
                and self.crash_at_durability_op < 1:
            raise ValueError("crash_at_durability_op must be >= 1")


#: the three standard profiles used by the robustness benchmark
PROFILE_NONE = FaultProfile(name="none")
PROFILE_LIGHT = FaultProfile(
    name="light", seed=1996,
    disk_error_every=25_000, connection_drop_every=8_000, jitter=0.25,
)
PROFILE_HEAVY = FaultProfile(
    name="heavy", seed=1996,
    disk_error_every=5_000, connection_drop_every=1_500, jitter=0.25,
)


class FaultInjector:
    """Raises scheduled faults from component hook points.

    Components call the ``on_*``/``maybe_*`` hooks at well-defined
    operation boundaries; the injector counts the operations and raises
    the scheduled exception when a fault comes due.  All scheduling
    state derives from the profile's seed and the hook call sequence —
    no wall clock, no global randomness.
    """

    def __init__(self, profile: FaultProfile, clock: SimulatedClock,
                 metrics: MetricsCollector) -> None:
        self.profile = profile
        self._clock = clock
        self._metrics = metrics
        self._rng = random.Random(profile.seed)
        self.disk_ops = 0
        self.roundtrips = 0
        self.wp_requests = 0
        self.durability_ops = 0
        #: boundary kind of the most recent durability hook call
        self.last_durability_kind = ""
        #: how often each boundary kind fired (crash-fuzz census)
        self.durability_kinds: dict[str, int] = {}
        self._next_disk_fault = self._next_after(0, profile.disk_error_every)
        self._next_conn_fault = self._next_after(
            0, profile.connection_drop_every)
        self._next_wp_crash = self._next_after(
            0, profile.work_process_crash_every)
        self._conn_burst_left = 0
        self._crashes = sorted(profile.crash_at_s)
        self._crash_index = 0

    # -- schedule arithmetic -------------------------------------------------

    def _next_after(self, count: int, every: int | None) -> int | None:
        """Operation count at which the next fault of a class fires."""
        if every is None:
            return None
        if self.profile.jitter:
            spread = int(every * self.profile.jitter)
            every = every + self._rng.randint(-spread, spread)
        return count + max(1, every)

    # -- hook points ---------------------------------------------------------

    def on_disk_op(self) -> None:
        """Called by the disk model once per attempted page transfer."""
        self.disk_ops += 1
        if self._next_disk_fault is None \
                or self.disk_ops < self._next_disk_fault:
            return
        self._next_disk_fault = self._next_after(
            self.disk_ops, self.profile.disk_error_every)
        self._metrics.count("faults.disk_io_injected")
        from repro.engine.errors import DiskIOError
        raise DiskIOError(
            f"injected disk I/O error at op {self.disk_ops} "
            f"(profile {self.profile.name!r})"
        )

    def on_roundtrip(self) -> None:
        """Called by the DBIF once per attempted round trip."""
        self.roundtrips += 1
        if self._conn_burst_left > 0:
            self._conn_burst_left -= 1
            self._metrics.count("faults.connection_drops_injected")
            from repro.engine.errors import ConnectionLostError
            raise ConnectionLostError(
                f"injected connection drop (burst) at round trip "
                f"{self.roundtrips} (profile {self.profile.name!r})"
            )
        if self._next_conn_fault is None \
                or self.roundtrips < self._next_conn_fault:
            return
        self._conn_burst_left = self.profile.connection_drop_burst - 1
        # The burst is one fault event; the next period starts after it.
        self._next_conn_fault = self._next_after(
            self.roundtrips + self._conn_burst_left,
            self.profile.connection_drop_every)
        self._metrics.count("faults.connection_drops_injected")
        from repro.engine.errors import ConnectionLostError
        raise ConnectionLostError(
            f"injected connection drop at round trip {self.roundtrips} "
            f"(profile {self.profile.name!r})"
        )

    def on_wp_request(self) -> None:
        """Called by the dispatcher once per request rolled into a
        work process (at the transaction boundary, before any work, so
        a crashed request can be requeued idempotently)."""
        self.wp_requests += 1
        if self._next_wp_crash is None \
                or self.wp_requests < self._next_wp_crash:
            return
        self._next_wp_crash = self._next_after(
            self.wp_requests, self.profile.work_process_crash_every)
        self._metrics.count("faults.crashes_injected")
        from repro.r3.errors import WorkProcessCrash
        raise WorkProcessCrash(
            f"injected work-process crash at request {self.wp_requests} "
            f"(profile {self.profile.name!r})"
        )

    def on_durability_op(self, kind: str) -> None:
        """Called by the WAL at every durability boundary.

        ``kind`` names the boundary (``wal.append``, ``wal.flush``,
        ``wal.fsync``, ``checkpoint.begin``, ``checkpoint.page``,
        ``checkpoint.end``).  When the profile arms
        ``crash_at_durability_op``, the Nth call kills the engine with
        a :class:`~repro.engine.errors.SimulatedCrash` — exactly once,
        so post-crash cleanup paths do not re-crash.
        """
        self.durability_ops += 1
        self.last_durability_kind = kind
        self.durability_kinds[kind] = \
            self.durability_kinds.get(kind, 0) + 1
        target = self.profile.crash_at_durability_op
        if target is None or self.durability_ops != target:
            return
        self._metrics.count("faults.engine_crashes_injected")
        from repro.engine.errors import SimulatedCrash
        raise SimulatedCrash(
            f"injected engine crash at durability op {self.durability_ops} "
            f"({kind}, profile {self.profile.name!r})"
        )

    def torn_write_bytes(self, frame: bytes) -> bytes | None:
        """The truncated prefix a crashed flush leaves on disk, if any.

        Consulted by the WAL after an injected engine crash interrupted
        a frame write.  Returns ``None`` for a clean cut (the frame
        never reached the platter) or a strict prefix of ``frame`` for
        a torn write, per the profile's ``torn_write_prob`` and the
        seeded PRNG.
        """
        if self.profile.torn_write_prob <= 0.0 or len(frame) < 2:
            return None
        if self._rng.random() >= self.profile.torn_write_prob:
            return None
        cut = self._rng.randint(1, len(frame) - 1)
        self._metrics.count("faults.torn_writes_injected")
        return frame[:cut]

    def maybe_crash(self) -> None:
        """Called at work-process transaction boundaries.

        Fires once per scheduled crash time, as soon as the simulated
        clock has passed it.
        """
        if self._crash_index >= len(self._crashes):
            return
        if self._clock.now < self._crashes[self._crash_index]:
            return
        due = self._crashes[self._crash_index]
        self._crash_index += 1
        self._metrics.count("faults.crashes_injected")
        from repro.r3.errors import WorkProcessCrash
        raise WorkProcessCrash(
            f"injected work-process crash scheduled at "
            f"{due:.1f}s simulated (now {self._clock.now:.1f}s, "
            f"profile {self.profile.name!r})"
        )

    @property
    def crashes_pending(self) -> int:
        return len(self._crashes) - self._crash_index
