"""Chaos harness: throughput under overload × fault storms.

Darmont's benchmark survey stresses that *multi-user runs under
saturation* — not single-stream power runs — are what expose a
system's real robustness.  This harness sweeps stream counts × fault
profiles over the dispatcher-scheduled throughput test and asserts the
invariants that make the overload machinery trustworthy:

1. **conservation** — per cell, every submitted query is accounted
   for exactly once: ``submitted == completed + shed + rejected``
   (no lost queries, no double counting, crash requeues included);
2. **breaker recovery** — after the fault storm ends, the DBIF
   circuit breaker returns to *closed* (a half-open probe after the
   cooldown succeeds against the healthy backend);
3. **monotone degradation** — at a fixed stream count, a strictly
   heavier fault profile never yields *more* queries/hour;
4. **alert silence** — the workload monitor's default CCMS rules fire
   zero alerts on ``none``-profile cells (no faults, no alarms; the
   heavy profile's breaker trip firing ≥ 1 alert is asserted in the
   test suite rather than as a sweep invariant, since tiny custom
   sweeps need not provoke the breaker).

Everything is deterministic: seeded profiles, the simulated clock and
a fresh system per cell mean a sweep's JSON report is bit-identical
across runs — which is what lets CI assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.r3.dbif import BreakerState
from repro.r3.dispatcher import DispatcherConfig
from repro.sim.faults import FaultProfile

#: Chaos fault profiles, tuned to the operation counts of the open30
#: suite at small scale factors (~20 DBIF round trips and ~3000 disk
#: ops per stream at SF 0.001).  ``light`` is retryable noise: every
#: fault is absorbed by a retry ladder, the run completes with a time
#: penalty.  ``heavy`` is a storm: connection-drop bursts longer than
#: the DBIF retry budget trip the circuit breaker, work processes
#: crash and the dispatcher sheds — the run degrades instead of dying.
CHAOS_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "light": FaultProfile(
        name="chaos-light", seed=1996,
        disk_error_every=300, connection_drop_every=25,
        work_process_crash_every=30, jitter=0.2,
    ),
    "heavy": FaultProfile(
        name="chaos-heavy", seed=1996,
        disk_error_every=60, connection_drop_every=8,
        connection_drop_burst=18, work_process_crash_every=12, jitter=0.2,
    ),
}

#: severity rank used by the monotone-degradation invariant
_SEVERITY = {"none": 0, "light": 1, "heavy": 2}


def default_chaos_config() -> DispatcherConfig:
    """The constrained pool the sweep runs against: 4 dialog processes,
    a bounded queue and a queue-wait deadline, so stream counts past
    the pool size actually contend."""
    return DispatcherConfig(
        dialog_processes=4,
        update_processes=1,
        queue_capacity=8,
        queue_wait_deadline_s=120.0,
        shed_highwater=0.75,
    )


@dataclass
class ChaosCell:
    """One (streams, profile) sweep cell and its invariant verdicts."""

    streams: int
    profile: str
    elapsed_s: float = 0.0
    queries_per_hour: float = 0.0
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    requeued: int = 0
    queue_wait_s: float = 0.0
    updates_submitted: int = 0
    updates_run: int = 0
    updates_shed: int = 0
    wp_restarts: int = 0
    breaker_opened: int = 0
    breaker_final: str = BreakerState.CLOSED.value
    shed_reasons: dict[str, int] = field(default_factory=dict)
    alerts_fired: int = 0
    alerts_by_rule: dict[str, int] = field(default_factory=dict)
    conserved: bool = True
    breaker_recovered: bool = True

    def to_json(self) -> dict:
        return {
            "streams": self.streams,
            "profile": self.profile,
            "elapsed_s": round(self.elapsed_s, 6),
            "queries_per_hour": round(self.queries_per_hour, 3),
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "requeued": self.requeued,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "updates": {
                "submitted": self.updates_submitted,
                "run": self.updates_run,
                "shed": self.updates_shed,
            },
            "wp_restarts": self.wp_restarts,
            "breaker": {
                "opened": self.breaker_opened,
                "final": self.breaker_final,
                "recovered": self.breaker_recovered,
            },
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "alerts": {
                "fired": self.alerts_fired,
                "by_rule": dict(sorted(self.alerts_by_rule.items())),
            },
            "conserved": self.conserved,
        }


@dataclass
class ChaosReport:
    scale_factor: float
    cells: list[ChaosCell] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def cell(self, streams: int, profile: str) -> ChaosCell:
        for cell in self.cells:
            if cell.streams == streams and cell.profile == profile:
                return cell
        raise KeyError(f"no cell ({streams}, {profile})")

    def to_json(self) -> dict:
        return {
            "format": "repro-chaos-v1",
            "scale_factor": self.scale_factor,
            "cells": [cell.to_json() for cell in self.cells],
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def render(self) -> str:
        from repro.core.results import render_table

        rows = []
        for cell in self.cells:
            rows.append([
                cell.streams, cell.profile,
                f"{cell.queries_per_hour:,.0f}",
                cell.completed, cell.shed, cell.rejected, cell.requeued,
                f"{cell.queue_wait_s:.1f}",
                cell.breaker_opened,
                cell.alerts_fired,
                "ok" if (cell.conserved and cell.breaker_recovered)
                else "VIOLATED",
            ])
        table = render_table(
            ["S", "Profile", "q/h", "Done", "Shed", "Rej", "Requeue",
             "Qwait s", "Brk", "Alerts", "Invariants"],
            rows,
            title=f"Chaos sweep at SF={self.scale_factor} "
                  f"(dispatcher-scheduled throughput)")
        if self.violations:
            table += "\n\nInvariant violations:\n" + "\n".join(
                f"  - {v}" for v in self.violations)
        else:
            table += ("\nAll invariants hold: conservation, breaker "
                      "recovery, monotone degradation.")
        return table


def _severity(profile_name: str) -> int:
    return _SEVERITY.get(profile_name, len(_SEVERITY))


def run_chaos_cell(data, streams: int, profile: FaultProfile,
                   scale_factor: float,
                   config: DispatcherConfig | None = None,
                   update_pairs: int = 2,
                   name: str | None = None) -> ChaosCell:
    """Run one (streams, profile) cell on a fresh system.

    ``name`` is the sweep key recorded on the cell (defaults to the
    profile's own name).
    """
    from repro.core.powertest import build_sap_system
    from repro.core.throughput import run_throughput_test
    from repro.r3.appserver import R3Version
    from repro.reports import open30
    from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

    r3 = build_sap_system(data, R3Version.V30)
    r3.monitor.enable()
    suite = open30.make_queries(scale_factor)
    # Disjoint keyspaces: each UF1 set gets its own order-key range so
    # the pairs can be applied to the same database in sequence.
    pair_size = max(1, round(len(data.orders) * 0.001))
    update_sets = [
        (generate_refresh_orders(
            data, seed=123 + i,
            start_key=data.max_orderkey + 1 + i * pair_size),
         delete_keys(data, seed=321 + i))
        for i in range(update_pairs)
    ]
    base = r3.metrics.snapshot()
    r3.attach_faults(profile)
    result = run_throughput_test(
        r3, suite, streams=streams, update_sets=update_sets,
        dispatcher=config or default_chaos_config())
    r3.detach_faults()

    breaker = r3.dbif.breaker
    cell = ChaosCell(streams=streams, profile=name or profile.name)
    cell.elapsed_s = result.elapsed_s
    cell.queries_per_hour = result.queries_per_hour
    cell.submitted = result.submitted
    cell.completed = result.completed
    cell.shed = result.shed
    cell.rejected = result.rejected
    cell.requeued = result.requeued
    cell.queue_wait_s = result.queue_wait_s
    cell.updates_submitted = result.updates_submitted
    cell.updates_run = result.updates_run
    cell.updates_shed = result.updates_shed
    cell.shed_reasons = dict(result.shed_reasons)
    cell.wp_restarts = int(base.get("dispatcher.wp_restarts"))
    cell.breaker_opened = breaker.opened_count
    cell.conserved = result.conservation_ok()
    # Alert totals are captured before the recovery probe below: the
    # probe is harness bookkeeping, not part of the measured storm.
    cell.alerts_fired = r3.monitor.alerts.fired_total
    cell.alerts_by_rule = r3.monitor.alerts.fired_by_rule()

    # Breaker recovery: the storm is over (faults detached).  If the
    # breaker is not closed, wait out the cooldown on the simulated
    # clock and send a probe — against the healthy backend it must
    # succeed and re-close the breaker.
    if breaker.state is not BreakerState.CLOSED:
        r3.clock.charge(breaker.cooldown_s)
        suite[1](r3)
    cell.breaker_final = breaker.state.value
    cell.breaker_recovered = breaker.state is BreakerState.CLOSED
    return cell


def run_chaos(
    scale_factor: float = 0.001,
    stream_counts: tuple[int, ...] = (2, 4, 8),
    profiles: tuple[str, ...] = ("none", "light", "heavy"),
    config: DispatcherConfig | None = None,
    data=None,
    update_pairs: int = 2,
) -> ChaosReport:
    """Sweep ``stream_counts`` × ``profiles`` and check the invariants."""
    from repro.tpcd.dbgen import generate

    unknown = [p for p in profiles if p not in CHAOS_PROFILES]
    if unknown:
        raise ValueError(f"unknown chaos profile(s): {unknown}; "
                         f"choose from {sorted(CHAOS_PROFILES)}")
    data = data if data is not None else generate(scale_factor)
    report = ChaosReport(scale_factor=scale_factor)
    for streams in stream_counts:
        for name in profiles:
            cell = run_chaos_cell(
                data, streams, CHAOS_PROFILES[name], scale_factor,
                config=config, update_pairs=update_pairs, name=name)
            report.cells.append(cell)
            if not cell.conserved:
                report.violations.append(
                    f"S={streams} {name}: conservation violated — "
                    f"submitted {cell.submitted} != completed "
                    f"{cell.completed} + shed {cell.shed} + rejected "
                    f"{cell.rejected}")
            if not cell.breaker_recovered:
                report.violations.append(
                    f"S={streams} {name}: breaker stuck "
                    f"{cell.breaker_final!r} after the storm ended")
            if name == "none" and cell.alerts_fired:
                report.violations.append(
                    f"S={streams} none: {cell.alerts_fired} alert(s) "
                    f"fired without injected faults "
                    f"({cell.alerts_by_rule})")
    # Monotone degradation: within a stream count, heavier profiles
    # must not complete more work per hour (tiny tolerance for float
    # division noise).
    for streams in stream_counts:
        ranked = sorted(
            (c for c in report.cells if c.streams == streams),
            key=lambda c: _severity(c.profile))
        for lighter, heavier in zip(ranked, ranked[1:]):
            if heavier.queries_per_hour > lighter.queries_per_hour * (
                    1 + 1e-9):
                report.violations.append(
                    f"S={streams}: {heavier.profile} yields "
                    f"{heavier.queries_per_hour:,.1f} q/h > "
                    f"{lighter.profile} "
                    f"{lighter.queries_per_hour:,.1f} q/h — "
                    f"degradation is not monotone")
    return report
