"""Chaos harness: throughput under overload × fault storms.

Darmont's benchmark survey stresses that *multi-user runs under
saturation* — not single-stream power runs — are what expose a
system's real robustness.  This harness sweeps stream counts × fault
profiles over the dispatcher-scheduled throughput test and asserts the
invariants that make the overload machinery trustworthy:

1. **conservation** — per cell, every submitted query is accounted
   for exactly once: ``submitted == completed + shed + rejected``
   (no lost queries, no double counting, crash requeues included);
2. **breaker recovery** — after the fault storm ends, the DBIF
   circuit breaker returns to *closed* (a half-open probe after the
   cooldown succeeds against the healthy backend);
3. **monotone degradation** — at a fixed stream count, a strictly
   heavier fault profile never yields *more* queries/hour;
4. **alert silence** — the workload monitor's default CCMS rules fire
   zero alerts on ``none``-profile cells (no faults, no alarms; the
   heavy profile's breaker trip firing ≥ 1 alert is asserted in the
   test suite rather than as a sweep invariant, since tiny custom
   sweeps need not provoke the breaker).

Everything is deterministic: seeded profiles, the simulated clock and
a fresh system per cell mean a sweep's JSON report is bit-identical
across runs — which is what lets CI assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.r3.dbif import BreakerState
from repro.r3.dispatcher import DispatcherConfig
from repro.sim.faults import FaultProfile

#: Chaos fault profiles, tuned to the operation counts of the open30
#: suite at small scale factors (~20 DBIF round trips and ~3000 disk
#: ops per stream at SF 0.001).  ``light`` is retryable noise: every
#: fault is absorbed by a retry ladder, the run completes with a time
#: penalty.  ``heavy`` is a storm: connection-drop bursts longer than
#: the DBIF retry budget trip the circuit breaker, work processes
#: crash and the dispatcher sheds — the run degrades instead of dying.
CHAOS_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "light": FaultProfile(
        name="chaos-light", seed=1996,
        disk_error_every=300, connection_drop_every=25,
        work_process_crash_every=30, jitter=0.2,
    ),
    "heavy": FaultProfile(
        name="chaos-heavy", seed=1996,
        disk_error_every=60, connection_drop_every=8,
        connection_drop_burst=18, work_process_crash_every=12, jitter=0.2,
    ),
}

#: severity rank used by the monotone-degradation invariant
_SEVERITY = {"none": 0, "light": 1, "heavy": 2}


def default_chaos_config() -> DispatcherConfig:
    """The constrained pool the sweep runs against: 4 dialog processes,
    a bounded queue and a queue-wait deadline, so stream counts past
    the pool size actually contend."""
    return DispatcherConfig(
        dialog_processes=4,
        update_processes=1,
        queue_capacity=8,
        queue_wait_deadline_s=120.0,
        shed_highwater=0.75,
    )


@dataclass
class ChaosCell:
    """One (streams, profile) sweep cell and its invariant verdicts."""

    streams: int
    profile: str
    elapsed_s: float = 0.0
    queries_per_hour: float = 0.0
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    requeued: int = 0
    queue_wait_s: float = 0.0
    updates_submitted: int = 0
    updates_run: int = 0
    updates_shed: int = 0
    wp_restarts: int = 0
    breaker_opened: int = 0
    breaker_final: str = BreakerState.CLOSED.value
    shed_reasons: dict[str, int] = field(default_factory=dict)
    alerts_fired: int = 0
    alerts_by_rule: dict[str, int] = field(default_factory=dict)
    conserved: bool = True
    breaker_recovered: bool = True

    def to_json(self) -> dict:
        return {
            "streams": self.streams,
            "profile": self.profile,
            "elapsed_s": round(self.elapsed_s, 6),
            "queries_per_hour": round(self.queries_per_hour, 3),
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "requeued": self.requeued,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "updates": {
                "submitted": self.updates_submitted,
                "run": self.updates_run,
                "shed": self.updates_shed,
            },
            "wp_restarts": self.wp_restarts,
            "breaker": {
                "opened": self.breaker_opened,
                "final": self.breaker_final,
                "recovered": self.breaker_recovered,
            },
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "alerts": {
                "fired": self.alerts_fired,
                "by_rule": dict(sorted(self.alerts_by_rule.items())),
            },
            "conserved": self.conserved,
        }


@dataclass
class ChaosReport:
    scale_factor: float
    cells: list[ChaosCell] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def cell(self, streams: int, profile: str) -> ChaosCell:
        for cell in self.cells:
            if cell.streams == streams and cell.profile == profile:
                return cell
        raise KeyError(f"no cell ({streams}, {profile})")

    def to_json(self) -> dict:
        return {
            "format": "repro-chaos-v1",
            "scale_factor": self.scale_factor,
            "cells": [cell.to_json() for cell in self.cells],
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def render(self) -> str:
        from repro.core.results import render_table

        rows = []
        for cell in self.cells:
            rows.append([
                cell.streams, cell.profile,
                f"{cell.queries_per_hour:,.0f}",
                cell.completed, cell.shed, cell.rejected, cell.requeued,
                f"{cell.queue_wait_s:.1f}",
                cell.breaker_opened,
                cell.alerts_fired,
                "ok" if (cell.conserved and cell.breaker_recovered)
                else "VIOLATED",
            ])
        table = render_table(
            ["S", "Profile", "q/h", "Done", "Shed", "Rej", "Requeue",
             "Qwait s", "Brk", "Alerts", "Invariants"],
            rows,
            title=f"Chaos sweep at SF={self.scale_factor} "
                  f"(dispatcher-scheduled throughput)")
        if self.violations:
            table += "\n\nInvariant violations:\n" + "\n".join(
                f"  - {v}" for v in self.violations)
        else:
            table += ("\nAll invariants hold: conservation, breaker "
                      "recovery, monotone degradation.")
        return table


def _severity(profile_name: str) -> int:
    return _SEVERITY.get(profile_name, len(_SEVERITY))


def run_chaos_cell(data, streams: int, profile: FaultProfile,
                   scale_factor: float,
                   config: DispatcherConfig | None = None,
                   update_pairs: int = 2,
                   name: str | None = None) -> ChaosCell:
    """Run one (streams, profile) cell on a fresh system.

    ``name`` is the sweep key recorded on the cell (defaults to the
    profile's own name).
    """
    from repro.core.powertest import build_sap_system
    from repro.core.throughput import run_throughput_test
    from repro.r3.appserver import R3Version
    from repro.reports import open30
    from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

    r3 = build_sap_system(data, R3Version.V30)
    r3.monitor.enable()
    suite = open30.make_queries(scale_factor)
    # Disjoint keyspaces: each UF1 set gets its own order-key range so
    # the pairs can be applied to the same database in sequence.
    pair_size = max(1, round(len(data.orders) * 0.001))
    update_sets = [
        (generate_refresh_orders(
            data, seed=123 + i,
            start_key=data.max_orderkey + 1 + i * pair_size),
         delete_keys(data, seed=321 + i))
        for i in range(update_pairs)
    ]
    base = r3.metrics.snapshot()
    r3.attach_faults(profile)
    result = run_throughput_test(
        r3, suite, streams=streams, update_sets=update_sets,
        dispatcher=config or default_chaos_config())
    r3.detach_faults()

    breaker = r3.dbif.breaker
    cell = ChaosCell(streams=streams, profile=name or profile.name)
    cell.elapsed_s = result.elapsed_s
    cell.queries_per_hour = result.queries_per_hour
    cell.submitted = result.submitted
    cell.completed = result.completed
    cell.shed = result.shed
    cell.rejected = result.rejected
    cell.requeued = result.requeued
    cell.queue_wait_s = result.queue_wait_s
    cell.updates_submitted = result.updates_submitted
    cell.updates_run = result.updates_run
    cell.updates_shed = result.updates_shed
    cell.shed_reasons = dict(result.shed_reasons)
    cell.wp_restarts = int(base.get("dispatcher.wp_restarts"))
    cell.breaker_opened = breaker.opened_count
    cell.conserved = result.conservation_ok()
    # Alert totals are captured before the recovery probe below: the
    # probe is harness bookkeeping, not part of the measured storm.
    cell.alerts_fired = r3.monitor.alerts.fired_total
    cell.alerts_by_rule = r3.monitor.alerts.fired_by_rule()

    # Breaker recovery: the storm is over (faults detached).  If the
    # breaker is not closed, wait out the cooldown on the simulated
    # clock and send a probe — against the healthy backend it must
    # succeed and re-close the breaker.
    if breaker.state is not BreakerState.CLOSED:
        r3.clock.charge(breaker.cooldown_s)
        suite[1](r3)
    cell.breaker_final = breaker.state.value
    cell.breaker_recovered = breaker.state is BreakerState.CLOSED
    return cell


def run_chaos(
    scale_factor: float = 0.001,
    stream_counts: tuple[int, ...] = (2, 4, 8),
    profiles: tuple[str, ...] = ("none", "light", "heavy"),
    config: DispatcherConfig | None = None,
    data=None,
    update_pairs: int = 2,
) -> ChaosReport:
    """Sweep ``stream_counts`` × ``profiles`` and check the invariants."""
    from repro.tpcd.dbgen import generate

    unknown = [p for p in profiles if p not in CHAOS_PROFILES]
    if unknown:
        raise ValueError(f"unknown chaos profile(s): {unknown}; "
                         f"choose from {sorted(CHAOS_PROFILES)}")
    data = data if data is not None else generate(scale_factor)
    report = ChaosReport(scale_factor=scale_factor)
    for streams in stream_counts:
        for name in profiles:
            cell = run_chaos_cell(
                data, streams, CHAOS_PROFILES[name], scale_factor,
                config=config, update_pairs=update_pairs, name=name)
            report.cells.append(cell)
            if not cell.conserved:
                report.violations.append(
                    f"S={streams} {name}: conservation violated — "
                    f"submitted {cell.submitted} != completed "
                    f"{cell.completed} + shed {cell.shed} + rejected "
                    f"{cell.rejected}")
            if not cell.breaker_recovered:
                report.violations.append(
                    f"S={streams} {name}: breaker stuck "
                    f"{cell.breaker_final!r} after the storm ended")
            if name == "none" and cell.alerts_fired:
                report.violations.append(
                    f"S={streams} none: {cell.alerts_fired} alert(s) "
                    f"fired without injected faults "
                    f"({cell.alerts_by_rule})")
    # Monotone degradation: within a stream count, heavier profiles
    # must not complete more work per hour (tiny tolerance for float
    # division noise).
    for streams in stream_counts:
        ranked = sorted(
            (c for c in report.cells if c.streams == streams),
            key=lambda c: _severity(c.profile))
        for lighter, heavier in zip(ranked, ranked[1:]):
            if heavier.queries_per_hour > lighter.queries_per_hour * (
                    1 + 1e-9):
                report.violations.append(
                    f"S={streams}: {heavier.profile} yields "
                    f"{heavier.queries_per_hour:,.1f} q/h > "
                    f"{lighter.profile} "
                    f"{lighter.queries_per_hour:,.1f} q/h — "
                    f"degradation is not monotone")
    return report


# -- kill-appserver scenario (multi-server scale-out) ---------------------

#: tables buffered on every server of a scale-out cell: the SELECT
#: SINGLE targets of the open30 suite (lfa1) and the update stream's
#: existence checks (vbak) — vbak is also what UF1/UF2 write, so the
#: DDLOG actually carries invalidations between servers.
SCALEOUT_BUFFERED_TABLES = {"vbak": 256 * 1024, "lfa1": 64 * 1024}


def default_scaleout_config() -> DispatcherConfig:
    """The per-server pool for scale-out cells: 2 dialog processes and
    a bounded queue per server, so adding servers adds real service
    capacity (more pool slots, shorter queues) and losing one hurts."""
    return DispatcherConfig(
        dialog_processes=2,
        update_processes=1,
        queue_capacity=8,
        queue_wait_deadline_s=120.0,
        shed_highwater=0.75,
    )


@dataclass
class ScaleoutCell:
    """One (n_servers, kill?) cell of the kill-appserver sweep."""

    n_servers: int
    kill: bool
    routing: str
    sync_period_s: float | None
    streams: int = 0
    elapsed_s: float = 0.0
    queries_per_hour: float = 0.0
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    requeued: int = 0
    queue_wait_s: float = 0.0
    updates_submitted: int = 0
    updates_run: int = 0
    updates_shed: int = 0
    per_server_completed: dict[str, int] = field(default_factory=dict)
    server_crashes: int = 0
    server_rejoins: int = 0
    sessions_rerouted: int = 0
    ddlog_invalidations: int = 0
    stale_reads_prevented: int = 0
    max_read_staleness_s: float = 0.0
    buffer_quality: float | None = None
    shed_reasons: dict[str, int] = field(default_factory=dict)
    alerts_by_rule: dict[str, int] = field(default_factory=dict)
    conserved: bool = True
    recovered: bool = True

    def to_json(self) -> dict:
        return {
            "n_servers": self.n_servers,
            "kill": self.kill,
            "routing": self.routing,
            "sync_period_s": self.sync_period_s,
            "streams": self.streams,
            "elapsed_s": round(self.elapsed_s, 6),
            "queries_per_hour": round(self.queries_per_hour, 3),
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "requeued": self.requeued,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "updates": {
                "submitted": self.updates_submitted,
                "run": self.updates_run,
                "shed": self.updates_shed,
            },
            "per_server_completed": dict(
                sorted(self.per_server_completed.items())),
            "failover": {
                "server_crashes": self.server_crashes,
                "server_rejoins": self.server_rejoins,
                "sessions_rerouted": self.sessions_rerouted,
            },
            "coherence": {
                "ddlog_invalidations": self.ddlog_invalidations,
                "stale_reads_prevented": self.stale_reads_prevented,
                "max_read_staleness_s": round(
                    self.max_read_staleness_s, 6),
                "buffer_quality": (round(self.buffer_quality, 6)
                                   if self.buffer_quality is not None
                                   else None),
            },
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "alerts_by_rule": dict(sorted(self.alerts_by_rule.items())),
            "conserved": self.conserved,
            "recovered": self.recovered,
        }


@dataclass
class ScaleoutReport:
    scale_factor: float
    streams: int
    routing: str
    sync_period_s: float
    cells: list[ScaleoutCell] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def cell(self, n_servers: int, kill: bool) -> ScaleoutCell:
        for cell in self.cells:
            if cell.n_servers == n_servers and cell.kill == kill:
                return cell
        raise KeyError(f"no cell (n_servers={n_servers}, kill={kill})")

    def to_json(self) -> dict:
        return {
            "format": "repro-scaleout-chaos-v1",
            "scale_factor": self.scale_factor,
            "streams": self.streams,
            "routing": self.routing,
            "sync_period_s": self.sync_period_s,
            "cells": [cell.to_json() for cell in self.cells],
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def render(self) -> str:
        from repro.core.results import render_table

        rows = []
        for cell in self.cells:
            rows.append([
                cell.n_servers,
                "kill" if cell.kill else "-",
                f"{cell.queries_per_hour:,.0f}",
                cell.completed, cell.shed, cell.rejected,
                cell.sessions_rerouted,
                cell.ddlog_invalidations,
                cell.stale_reads_prevented,
                f"{cell.max_read_staleness_s:.3f}",
                (f"{cell.buffer_quality:.2f}"
                 if cell.buffer_quality is not None else "-"),
                "ok" if (cell.conserved and cell.recovered)
                else "VIOLATED",
            ])
        table = render_table(
            ["N", "Fail", "q/h", "Done", "Shed", "Rej", "Reroute",
             "DDLOG", "StaleRd", "MaxStale s", "BufQ", "Invariants"],
            rows,
            title=f"Kill-appserver sweep at SF={self.scale_factor} "
                  f"({self.streams} streams, {self.routing} routing, "
                  f"sync={self.sync_period_s}s)")
        if self.violations:
            table += "\n\nInvariant violations:\n" + "\n".join(
                f"  - {v}" for v in self.violations)
        else:
            table += ("\nAll invariants hold: conservation, bounded "
                      "staleness, kill-never-helps, shrinking failover "
                      "impact, post-recovery steady state.")
        return table


def run_scaleout_cell(data, n_servers: int, streams: int,
                      scale_factor: float,
                      routing: str = "sticky",
                      sync_period_s: float = 5.0,
                      kill: bool = False,
                      kill_at_s: float = 0.0,
                      rejoin_after_s: float | None = None,
                      config: DispatcherConfig | None = None,
                      update_pairs: int = 2) -> ScaleoutCell:
    """Run one scale-out cell on a fresh cluster.

    With ``kill`` set, server ``n_servers - 1`` crashes at
    ``kill_at_s`` and (optionally) rejoins ``rejoin_after_s`` later;
    afterwards the cell checks post-recovery steady state: every
    server back up with a closed breaker, and a probe query through
    the rejoined server completing.
    """
    from repro.core.throughput import run_cluster_throughput_test
    from repro.r3.appserver import R3Version
    from repro.r3.cluster import ServerKill, build_sap_cluster
    from repro.reports import open30
    from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

    cluster = build_sap_cluster(
        data, R3Version.V30, n_servers=n_servers,
        sync_period_s=sync_period_s if n_servers > 1 else None,
        routing=routing, buffered_tables=SCALEOUT_BUFFERED_TABLES)
    cluster.monitor.enable()
    suite = open30.make_queries(scale_factor)
    pair_size = max(1, round(len(data.orders) * 0.001))
    update_sets = [
        (generate_refresh_orders(
            data, seed=123 + i,
            start_key=data.max_orderkey + 1 + i * pair_size),
         delete_keys(data, seed=321 + i))
        for i in range(update_pairs)
    ]
    failover = None
    if kill:
        if n_servers < 2:
            raise ValueError("kill requires n_servers >= 2")
        failover = [ServerKill(at_s=kill_at_s, server=n_servers - 1,
                               rejoin_after_s=rejoin_after_s)]
    result = run_cluster_throughput_test(
        cluster, suite, streams=streams, update_sets=update_sets,
        dispatcher=config or default_scaleout_config(),
        failover=failover)

    metrics = cluster.metrics
    cell = ScaleoutCell(
        n_servers=n_servers, kill=kill, routing=routing,
        sync_period_s=cluster.sync_period_s, streams=streams)
    cell.elapsed_s = result.elapsed_s
    cell.queries_per_hour = result.queries_per_hour
    cell.submitted = result.submitted
    cell.completed = result.completed
    cell.shed = result.shed
    cell.rejected = result.rejected
    cell.requeued = result.requeued
    cell.queue_wait_s = result.queue_wait_s
    cell.updates_submitted = result.updates_submitted
    cell.updates_run = result.updates_run
    cell.updates_shed = result.updates_shed
    cell.per_server_completed = dict(result.per_server_completed)
    cell.server_crashes = int(metrics.get("cluster.server_crashes"))
    cell.server_rejoins = int(metrics.get("cluster.server_rejoins"))
    cell.sessions_rerouted = result.sessions_rerouted
    cell.ddlog_invalidations = int(
        metrics.get("cluster.ddlog_invalidations"))
    cell.stale_reads_prevented = int(
        metrics.get("cluster.stale_reads_prevented"))
    cell.max_read_staleness_s = result.max_read_staleness_s
    cell.buffer_quality = result.buffer_quality
    cell.shed_reasons = dict(result.shed_reasons)
    cell.conserved = result.conservation_ok()
    cell.alerts_by_rule = cluster.monitor.alerts.fired_by_rule()

    # Post-recovery steady state: every server is back in rotation
    # with a closed breaker, and the crashed server itself serves a
    # probe query end to end (cold buffers, fresh cursor cache).
    recovered = all(server.up for server in cluster.servers)
    from repro.r3.dbif import BreakerState as _BS

    recovered = recovered and all(
        server.dbif.breaker.state is _BS.CLOSED
        for server in cluster.servers)
    if kill and recovered:
        probe_server = cluster.servers[n_servers - 1]
        try:
            suite[1](probe_server)
        except Exception:          # noqa: BLE001 — any failure = not steady
            recovered = False
    cell.recovered = recovered
    return cell


def run_kill_appserver(
    scale_factor: float = 0.001,
    server_counts: tuple[int, ...] = (1, 2, 4),
    streams: int = 6,
    routing: str = "sticky",
    sync_period_s: float = 5.0,
    kill_fraction: float = 0.3,
    rejoin_fraction: float = 0.25,
    config: DispatcherConfig | None = None,
    data=None,
    update_pairs: int = 2,
) -> ScaleoutReport:
    """Sweep server counts with and without a mid-run app-server crash.

    Per count N >= 2 the sweep runs a no-kill baseline and a kill cell
    (crash at ``kill_fraction`` of the baseline's elapsed time, rejoin
    ``rejoin_fraction`` later) and asserts:

    1. **conservation** in every cell;
    2. **bounded staleness** — no buffered read served under a
       staleness bound of one sync period or more;
    3. **kill never helps** — the kill cell's queries/hour cannot
       exceed its own baseline's;
    4. **shrinking failover impact** — the *relative* throughput drop
       a single crash causes does not grow with the server count
       (losing 1 of 4 servers hurts no more than losing 1 of 2);
    5. **post-recovery steady state** — after the run every server is
       up, breakers are closed and the rejoined server completes a
       probe query.
    """
    from repro.tpcd.dbgen import generate

    data = data if data is not None else generate(scale_factor)
    report = ScaleoutReport(scale_factor=scale_factor, streams=streams,
                            routing=routing, sync_period_s=sync_period_s)
    baselines: dict[int, ScaleoutCell] = {}
    for n_servers in server_counts:
        cell = run_scaleout_cell(
            data, n_servers, streams, scale_factor, routing=routing,
            sync_period_s=sync_period_s, kill=False, config=config,
            update_pairs=update_pairs)
        baselines[n_servers] = cell
        report.cells.append(cell)
        if n_servers < 2:
            continue
        kill_cell = run_scaleout_cell(
            data, n_servers, streams, scale_factor, routing=routing,
            sync_period_s=sync_period_s, kill=True,
            kill_at_s=cell.elapsed_s * kill_fraction,
            rejoin_after_s=cell.elapsed_s * rejoin_fraction,
            config=config, update_pairs=update_pairs)
        report.cells.append(kill_cell)

    for cell in report.cells:
        tag = (f"N={cell.n_servers}"
               f"{' kill' if cell.kill else ''}")
        if not cell.conserved:
            report.violations.append(
                f"{tag}: conservation violated — submitted "
                f"{cell.submitted} != completed {cell.completed} + shed "
                f"{cell.shed} + rejected {cell.rejected}")
        if cell.sync_period_s is not None \
                and cell.max_read_staleness_s >= cell.sync_period_s:
            report.violations.append(
                f"{tag}: buffered read served "
                f"{cell.max_read_staleness_s:.3f}s stale >= sync "
                f"period {cell.sync_period_s}s")
        if not cell.recovered:
            report.violations.append(
                f"{tag}: post-recovery steady state violated (server "
                f"down, breaker open, or probe failed)")
        if cell.kill and cell.server_crashes < 1:
            report.violations.append(f"{tag}: kill cell saw no crash")
        if cell.kill and not cell.alerts_by_rule.get("appserver_down"):
            report.violations.append(
                f"{tag}: appserver_down alert did not fire on a kill")
        if not cell.kill \
                and cell.alerts_by_rule.get("appserver_down"):
            report.violations.append(
                f"{tag}: appserver_down fired without a kill")

    drops: list[tuple[int, float]] = []
    for n_servers in server_counts:
        if n_servers < 2:
            continue
        base = baselines[n_servers]
        kill_cell = report.cell(n_servers, True)
        if kill_cell.queries_per_hour > base.queries_per_hour * (
                1 + 1e-9):
            report.violations.append(
                f"N={n_servers}: kill cell yields "
                f"{kill_cell.queries_per_hour:,.1f} q/h > baseline "
                f"{base.queries_per_hour:,.1f} q/h — a crash must not "
                f"improve throughput")
        if base.queries_per_hour > 0:
            drops.append((
                n_servers,
                1.0 - kill_cell.queries_per_hour
                / base.queries_per_hour))
    for (n_small, drop_small), (n_large, drop_large) in zip(
            drops, drops[1:]):
        if drop_large > drop_small + 1e-9:
            report.violations.append(
                f"failover impact grows with scale: losing 1 of "
                f"{n_large} costs {drop_large:.1%} > losing 1 of "
                f"{n_small} costs {drop_small:.1%}")
    return report
