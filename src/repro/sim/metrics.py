"""Named operation counters with scoped snapshots.

Every layer of the stack counts what it does (pages read, tuples
shipped, round trips, cache hits, ...).  Counters feed both the
simulated clock (via the calibration table) and the experiment reports
(e.g. hit ratios in the paper's Table 8).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator


class MetricsSnapshot:
    """Delta view of a :class:`MetricsCollector` since snapshot creation."""

    def __init__(self, collector: "MetricsCollector") -> None:
        self._collector = collector
        self._base = Counter(collector._counts)

    def delta(self) -> dict[str, float]:
        """Counter deltas accumulated since the snapshot was taken.

        Counters that existed at the base but were reset or removed
        afterwards show up with a negative delta — a silent drop would
        make a ``reset()`` between snapshots look like "nothing
        happened".
        """
        current = self._collector._counts
        out: dict[str, float] = {}
        for name in current.keys() | self._base.keys():
            change = current.get(name, 0) - self._base.get(name, 0)
            if change:
                out[name] = change
        return out

    def get(self, name: str) -> float:
        return self._collector._counts.get(name, 0) - self._base.get(name, 0)


class MetricsScope:
    """Context manager freezing the counter deltas over a ``with`` block.

    After exit, :attr:`delta` holds the per-counter changes accumulated
    inside the block.  The tracer uses one scope per span to attach
    counter deltas (round trips, pages, shipped tuples) to the span.
    """

    def __init__(self, collector: "MetricsCollector") -> None:
        self._collector = collector
        self._snapshot: MetricsSnapshot | None = None
        self.delta: dict[str, float] = {}

    def __enter__(self) -> "MetricsScope":
        self._snapshot = self._collector.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._snapshot is not None
        self.delta = self._snapshot.delta()

    def get(self, name: str) -> float:
        if self._snapshot is None:
            return 0
        return self._snapshot.get(name)


class MetricsCollector:
    """A bag of named, monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def count(self, name: str, amount: float = 1) -> None:
        """Increase counter ``name`` by ``amount`` (default 1)."""
        self._counts[name] += amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """Mark the current state; deltas are measured against it."""
        return MetricsSnapshot(self)

    def scoped(self) -> MetricsScope:
        """Scope counters over a ``with`` block (see :class:`MetricsScope`)."""
        return MetricsScope(self)

    def all(self) -> dict[str, float]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counts.items()))
