"""Named operation counters with scoped snapshots.

Every layer of the stack counts what it does (pages read, tuples
shipped, round trips, cache hits, ...).  Counters feed both the
simulated clock (via the calibration table) and the experiment reports
(e.g. hit ratios in the paper's Table 8).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator


class MetricsSnapshot:
    """Delta view of a :class:`MetricsCollector` since snapshot creation."""

    def __init__(self, collector: "MetricsCollector") -> None:
        self._collector = collector
        self._base = Counter(collector._counts)

    def delta(self) -> dict[str, float]:
        """Counter deltas accumulated since the snapshot was taken."""
        current = self._collector._counts
        out: dict[str, float] = {}
        for name, value in current.items():
            change = value - self._base.get(name, 0)
            if change:
                out[name] = change
        return out

    def get(self, name: str) -> float:
        return self._collector._counts.get(name, 0) - self._base.get(name, 0)


class MetricsCollector:
    """A bag of named, monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def count(self, name: str, amount: float = 1) -> None:
        """Increase counter ``name`` by ``amount`` (default 1)."""
        self._counts[name] += amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """Mark the current state; deltas are measured against it."""
        return MetricsSnapshot(self)

    def all(self) -> dict[str, float]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counts.items()))
