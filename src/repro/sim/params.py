"""All cost-model constants, in one dataclass.

These are the only tunables in the reproduction.  The default values
are calibrated (see ``repro.core.calibration``) so that operation-count
ratios land in the neighbourhood of the paper's 1996 measurements; the
*shape* of every result is a function of counted operations, not of
these constants, so reasonable perturbations preserve every conclusion
(exercised by the calibration-robustness tests).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimParams:
    """Simulated-cost constants shared by the engine and the R/3 layer."""

    # ---- storage ----------------------------------------------------
    page_size_bytes: int = 8192
    #: default buffer pool: the paper's SAP default of 10 MB
    buffer_pool_bytes: int = 10 * 1024 * 1024

    # ---- disk (mid-1990s SCSI disk) ----------------------------------
    seq_read_s: float = 0.0015
    random_read_s: float = 0.012
    write_s: float = 0.010
    #: sequential page write (LSM flush/compaction, direct-path load):
    #: mostly transfer time, like a sequential read plus media overhead
    seq_write_s: float = 0.002
    buffer_hit_s: float = 0.00002

    # ---- engine CPU ---------------------------------------------------
    tuple_cpu_s: float = 0.00002
    index_traverse_s: float = 0.00005
    sort_cmp_s: float = 0.000004
    #: working memory for sorts/hash joins before spilling
    work_mem_bytes: int = 4 * 1024 * 1024

    # ---- SQL front end ---------------------------------------------------
    #: parse + optimize cost per (non-cached) statement compilation
    plan_cpu_s: float = 0.004

    # ---- client/server interface (SAP app server <-> RDBMS) -----------
    roundtrip_s: float = 0.0020
    ship_tuple_s: float = 0.00004
    ship_byte_s: float = 0.0000002

    # ---- ABAP interpreter ---------------------------------------------
    abap_row_s: float = 0.00012
    abap_extract_s: float = 0.00008
    pool_decode_s: float = 0.00010

    # ---- table buffering in the app server -----------------------------
    cache_lookup_s: float = 0.000030
    cache_insert_s: float = 0.000060

    # ---- batch input ----------------------------------------------------
    screen_s: float = 0.12
    batch_record_overhead_s: float = 0.25
    commit_s: float = 0.02

    # ---- robustness / fault handling -------------------------------------
    #: DBIF reconnect attempts before a connection loss becomes permanent
    dbif_max_retries: int = 4
    #: first reconnect backoff; doubles per attempt (exponential)
    dbif_backoff_base_s: float = 0.05
    #: disk-driver retries for one transient page-transfer error
    disk_max_retries: int = 3
    #: error-recovery penalty per failed page transfer
    disk_retry_penalty_s: float = 0.030
    #: writing + syncing one batch-input checkpoint journal record
    checkpoint_s: float = 0.05
    #: reading the journal once when a load resumes after a crash
    journal_read_s: float = 0.02
    #: per-row undo cost when rolling back an uncommitted batch
    rollback_row_s: float = 0.002

    # ---- durability / write-ahead log -------------------------------------
    #: CPU cost of formatting + buffering one WAL record
    wal_append_cpu_s: float = 0.000008
    #: one log force (fsync) at a group-commit boundary
    wal_fsync_s: float = 0.005
    #: WAL records buffered before an automatic group-commit flush
    wal_buffer_records: int = 256
    #: records per log segment before rotation
    wal_segment_records: int = 4096
    #: automatic fuzzy checkpoint every ~N logged records (None: manual)
    wal_checkpoint_every_records: int | None = 20000

    # ---- LSM storage backend ---------------------------------------------
    #: memtable bytes before a size-triggered flush to an L0 SSTable
    lsm_memtable_bytes: int = 256 * 1024
    #: L0 segments that accumulate before compaction into L1 is scheduled
    lsm_l0_compaction_trigger: int = 4
    #: size ratio between adjacent levels (level N+1 holds ratio× level N)
    lsm_level_ratio: int = 8
    #: CPU cost of one memtable insert/lookup (skiplist step, amortised)
    lsm_memtable_op_s: float = 0.000004
    #: CPU cost of one bloom-filter probe on a point read
    lsm_bloom_probe_s: float = 0.000002
    #: CPU cost of one sparse-index binary-search step inside an SSTable
    lsm_index_probe_s: float = 0.000003

    # ---- dispatcher / work-process pool ----------------------------------
    #: rolling a user context into a work process (paper §2: the app
    #: server multiplexes many users over few work processes)
    wp_rollin_s: float = 0.004
    #: rolling the context back out after the dialog step
    wp_rollout_s: float = 0.002
    #: restarting a crashed work process before its request is requeued
    wp_restart_s: float = 2.0

    # ---- parallel query execution ----------------------------------------
    #: hard cap on the degree of parallelism the planner may pick
    parallel_max_degree: int = 8
    #: a lane must be fed at least this many rows to be worth starting
    parallel_min_rows_per_lane: int = 250
    #: coordinator cost per fragment (plan distribution + result merge)
    parallel_fragment_overhead_s: float = 0.003
    #: starting / reaping one worker lane
    parallel_lane_start_s: float = 0.001
    #: shipping one row between lanes or to the coordinator (exchange)
    parallel_ship_tuple_s: float = 0.00001
    #: build sides at or below this many estimated rows are broadcast
    #: to every lane; larger builds are repartitioned by join key
    parallel_broadcast_rows: int = 2000
    #: seed mixed into the deterministic partition hash
    parallel_hash_seed: int = 0

    # ---- multi-app-server cluster / DDLOG coherence -----------------------
    #: appending one invalidation record to the shared DDLOG (piggybacks
    #: on the write's round trip, so it is cheap but not free)
    ddlog_append_s: float = 0.0001
    #: fixed cost of one DDLOG sync poll (read the shared log position)
    ddlog_sync_s: float = 0.0005
    #: applying one replayed invalidation record to the local buffers
    ddlog_replay_record_s: float = 0.00005
    #: restarting a crashed application server before it rejoins the
    #: login balancer's rotation (process start + buffer cold allocate)
    appserver_restart_s: float = 30.0

    # ---- DBIF circuit breaker --------------------------------------------
    #: consecutive DBIF failures (post-retry) before the breaker opens
    breaker_failure_threshold: int = 3
    #: simulated seconds the breaker stays open before half-open probing
    breaker_cooldown_s: float = 30.0
    #: successful half-open probes required to close the breaker again
    breaker_halfopen_probes: int = 1

    def pages_for_bytes(self, byte_count: int) -> int:
        """Number of pages needed to hold ``byte_count`` bytes."""
        if byte_count <= 0:
            return 0
        return -(-byte_count // self.page_size_bytes)
