"""Crash-point fuzzing: kill the engine at every durability boundary.

The durability subsystem's correctness claim is sharp — *whenever* the
engine dies, recovery plus journalled resume lands on a database that
is logically identical to an uncrashed run.  This harness turns the
claim into an exhaustive (or sampled) sweep:

1. **Census** — run the workload once on a fresh durable system with a
   counting injector attached: every WAL append, per-frame flush,
   fsync and checkpoint step calls
   :meth:`~repro.sim.faults.FaultInjector.on_durability_op`, so the
   reference run yields the boundary count *N*, the per-kind census,
   and the reference :meth:`~repro.engine.database.Database.content_digest`.
2. **Sweep** — for each sampled boundary index *k* in ``1..N``, rerun
   the workload on a fresh system with ``crash_at_durability_op=k``:
   the injected :class:`~repro.engine.errors.SimulatedCrash` freezes
   the durable store exactly as a power failure would.  Recover via
   :func:`~repro.sapschema.loader.recover_sap_system` (ARIES passes +
   app-tier journal reconstruction), resume the workload from the
   recovered journal, and compare digests.
3. **Damage variants** — a subset of trials additionally arms
   ``torn_write_prob=1`` (the frame in flight lands truncated on the
   log tail) or flips a byte in the tail frame after the crash (CRC
   failure).  Both must be absorbed as a torn tail: the affected
   transaction becomes a loser, resume replays it, digests still match.

Everything is deterministic (seeded profiles, simulated clock), so a
divergence is a reproducible bug, not flake: rerun with the reported
``k`` and workload to debug it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.errors import SimulatedCrash
from repro.sim.faults import FaultInjector, FaultProfile
from repro.sim.params import SimParams

#: workload names accepted by :func:`run_crash_fuzz`
FUZZ_WORKLOADS = ("load", "uf", "power")


# -- workloads ---------------------------------------------------------------


def _build_durable_system(params: SimParams, v22: bool = False,
                          storage: str = "heap"):
    from repro.engine.wal import DurableStore
    from repro.r3.appserver import R3System, R3Version

    store = DurableStore(params)
    r3 = R3System(
        version=R3Version.V22 if v22 else R3Version.V30,
        params=params, durability="wal", store=store, storage=storage)
    return r3, store


def _durable_fast_setup(r3, data):
    """Bulk-load the SAP schema, upgrade to 3.0 (KONV conversion, drop
    of the shipdate index) and seal the state: the pre-fuzz fixture for
    the update-function and power workloads.  Committed and
    checkpointed, so no crash during the fuzzed section can roll it
    back."""
    from repro.r3.batchinput import LoadJournal
    from repro.r3.upgrade import upgrade_to_30
    from repro.sapschema.loader import load_sap_fast

    load_sap_fast(r3, data, analyze=False)
    upgrade_to_30(r3)
    r3.db.drop_index("idx_vbep_edatu")
    r3.db.analyze()
    journal = LoadJournal()
    journal.setup_done = True
    r3.db.begin()
    r3.db.commit(journal=journal.to_wire())
    r3.db.checkpoint()
    return journal


def _refresh_sets(data):
    from repro.tpcd.dbgen import delete_keys, generate_refresh_orders

    refresh = generate_refresh_orders(data, seed=123,
                                      start_key=data.max_orderkey + 1)
    deletes = delete_keys(data, seed=321)
    return refresh, deletes


class _LoadWorkload:
    """The Table-3 batch-input load, journalled end to end."""

    name = "load"
    v22 = False

    def setup(self, r3, data):
        from repro.r3.batchinput import LoadJournal

        return LoadJournal()

    def run(self, r3, journal, data, commit_interval):
        from repro.sapschema.loader import load_sap_batch_input

        load_sap_batch_input(r3, data, processes=1,
                             commit_interval=commit_interval,
                             journal=journal)


class _UfWorkload:
    """UF1 (insert refresh orders) + UF2 (delete orders), journalled."""

    name = "uf"
    v22 = True  #: built at 2.2 so setup can run the in-place upgrade

    def setup(self, r3, data):
        return _durable_fast_setup(r3, data)

    def run(self, r3, journal, data, commit_interval):
        from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap

        refresh, deletes = _refresh_sets(data)
        run_uf1_sap(r3, refresh, commit_interval=commit_interval,
                    journal=journal)
        run_uf2_sap(r3, deletes, commit_interval=commit_interval,
                    journal=journal)


class _PowerWorkload:
    """A compact power test: read queries (which never touch the WAL)
    interleaved around the journalled update functions."""

    name = "power"
    v22 = True
    query_numbers = (1, 6, 13)

    def setup(self, r3, data):
        return _durable_fast_setup(r3, data)

    def run(self, r3, journal, data, commit_interval):
        from repro.reports import open30
        from repro.reports.updatefuncs import run_uf1_sap, run_uf2_sap

        suite = open30.make_queries(data.scale_factor)
        refresh, deletes = _refresh_sets(data)
        for number in self.query_numbers[:-1]:
            suite[number](r3)
        run_uf1_sap(r3, refresh, commit_interval=commit_interval,
                    journal=journal)
        run_uf2_sap(r3, deletes, commit_interval=commit_interval,
                    journal=journal)
        suite[self.query_numbers[-1]](r3)


_WORKLOADS = {w.name: w for w in (_LoadWorkload(), _UfWorkload(),
                                  _PowerWorkload())}


# -- trial / report records --------------------------------------------------


@dataclass
class CrashTrial:
    """One crash-at-boundary-``k`` experiment."""

    k: int
    mode: str = "clean"  #: clean | torn | corrupt-tail
    kind: str = ""  #: boundary kind the crash landed on
    crashed: bool = False
    torn_frames: int = 0
    tail_corrupted: bool = False
    recovered: bool = False
    resumed: bool = False
    digest_ok: bool = False
    loser_txns: int = 0
    redo_applied: int = 0
    undo_applied: int = 0
    torn_tail_dropped: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.digest_ok and not self.error

    def to_json(self) -> dict:
        return {
            "k": self.k,
            "mode": self.mode,
            "kind": self.kind,
            "crashed": self.crashed,
            "torn_frames": self.torn_frames,
            "tail_corrupted": self.tail_corrupted,
            "recovered": self.recovered,
            "resumed": self.resumed,
            "digest_ok": self.digest_ok,
            "loser_txns": self.loser_txns,
            "redo_applied": self.redo_applied,
            "undo_applied": self.undo_applied,
            "torn_tail_dropped": self.torn_tail_dropped,
            "error": self.error,
            "ok": self.ok,
        }


@dataclass
class WorkloadFuzzReport:
    """The sweep over one workload."""

    workload: str
    boundaries: int = 0
    boundary_kinds: dict[str, int] = field(default_factory=dict)
    reference_digest: str = ""
    trials: list[CrashTrial] = field(default_factory=list)

    @property
    def divergences(self) -> list[CrashTrial]:
        return [t for t in self.trials if not t.ok]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "boundaries": self.boundaries,
            "boundary_kinds": dict(sorted(self.boundary_kinds.items())),
            "reference_digest": self.reference_digest,
            "trials": [t.to_json() for t in self.trials],
            "divergences": len(self.divergences),
            "ok": self.ok,
        }


@dataclass
class CrashFuzzReport:
    scale_factor: float
    commit_interval: int
    sample: int | None
    storage: str = "heap"
    workloads: list[WorkloadFuzzReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(w.ok for w in self.workloads)

    def to_json(self) -> dict:
        return {
            "format": "repro-crashfuzz-v1",
            "scale_factor": self.scale_factor,
            "commit_interval": self.commit_interval,
            "sample": self.sample,
            "storage": self.storage,
            "workloads": [w.to_json() for w in self.workloads],
            "ok": self.ok,
        }

    def render(self) -> str:
        from repro.core.results import render_table

        rows = []
        for wl in self.workloads:
            by_mode: dict[str, int] = {}
            for trial in wl.trials:
                by_mode[trial.mode] = by_mode.get(trial.mode, 0) + 1
            rows.append([
                wl.workload, wl.boundaries, len(wl.trials),
                by_mode.get("clean", 0), by_mode.get("torn", 0),
                by_mode.get("corrupt-tail", 0),
                len(wl.divergences),
                "ok" if wl.ok else "DIVERGED",
            ])
        table = render_table(
            ["Workload", "Boundaries", "Trials", "Clean", "Torn",
             "Corrupt", "Diverged", "Verdict"],
            rows,
            title=f"Crash-point fuzz at SF={self.scale_factor} "
                  f"(commit interval {self.commit_interval})")
        problems = [t for wl in self.workloads for t in wl.divergences]
        if problems:
            table += "\n\nDivergent trials:\n" + "\n".join(
                f"  - {wl.workload} k={t.k} mode={t.mode} kind={t.kind}: "
                f"{t.error or 'digest mismatch'}"
                for wl in self.workloads for t in wl.divergences)
        else:
            table += ("\nEvery sampled crash point recovered to the "
                      "reference digest.")
        return table


# -- the sweep ---------------------------------------------------------------


def _sample_boundaries(total: int, sample: int | None) -> list[int]:
    """Evenly spaced boundary indices, always covering both ends."""
    if total <= 0:
        return []
    if sample is None or sample >= total:
        return list(range(1, total + 1))
    if sample == 1:
        return [total]
    step = (total - 1) / (sample - 1)
    return sorted({round(1 + i * step) for i in range(sample)})


def _census(workload, data, commit_interval: int, params_factory,
            storage: str = "heap") -> tuple[int, dict[str, int], str]:
    """Reference run: boundary count, per-kind census, clean digest."""
    r3, _ = _build_durable_system(params_factory(), v22=workload.v22,
                                  storage=storage)
    journal = workload.setup(r3, data)
    injector = FaultInjector(FaultProfile(name="census"), r3.clock,
                             r3.metrics)
    r3.attach_faults(injector)
    workload.run(r3, journal, data, commit_interval)
    r3.detach_faults()
    return (injector.durability_ops, dict(injector.durability_kinds),
            r3.db.content_digest())


def _run_trial(workload, data, commit_interval: int, k: int, mode: str,
               reference_digest: str, params_factory,
               storage: str = "heap") -> CrashTrial:
    from repro.r3.appserver import R3Version
    from repro.sapschema.loader import recover_sap_system

    trial = CrashTrial(k=k, mode=mode)
    r3, store = _build_durable_system(params_factory(), v22=workload.v22,
                                      storage=storage)
    journal = workload.setup(r3, data)
    profile = FaultProfile(
        name=f"crashfuzz-{workload.name}-{mode}-{k}", seed=1996 + k,
        crash_at_durability_op=k,
        torn_write_prob=1.0 if mode == "torn" else 0.0,
    )
    injector = r3.attach_faults(profile)
    try:
        workload.run(r3, journal, data, commit_interval)
    except SimulatedCrash:
        trial.crashed = True
    trial.kind = injector.last_durability_kind
    trial.torn_frames = int(r3.metrics.get("faults.torn_writes_injected"))
    if not trial.crashed:
        # k beyond this run's boundary count (cannot happen when the
        # sweep samples 1..N of a deterministic workload, but keep the
        # trial meaningful if a caller passes an arbitrary k).
        trial.digest_ok = r3.db.content_digest() == reference_digest
        return trial
    if mode == "corrupt-tail" and store.frame_count:
        store.corrupt_tail_frame()
        trial.tail_corrupted = True
    try:
        r3b, journal_b, report = recover_sap_system(
            store, version=R3Version.V30)
        trial.recovered = True
        trial.loser_txns = report.loser_txns
        trial.redo_applied = report.redo_applied
        trial.undo_applied = report.undo_applied
        trial.torn_tail_dropped = report.torn_tail_dropped
        workload.run(r3b, journal_b, data, commit_interval)
        trial.resumed = True
        trial.digest_ok = r3b.db.content_digest() == reference_digest
    except Exception as exc:  # a diverging trial must not kill the sweep
        trial.error = f"{type(exc).__name__}: {exc}"
    return trial


def run_crash_fuzz(
    scale_factor: float = 0.0002,
    workloads: tuple[str, ...] = ("load",),
    commit_interval: int = 8,
    sample: int | None = 24,
    torn: bool = True,
    corrupt_tail_trials: int = 2,
    checkpoint_every: int | None = 1500,
    data=None,
    params_factory=None,
    storage: str = "heap",
) -> CrashFuzzReport:
    """Sweep injected engine crashes over ``workloads``.

    ``sample=None`` fuzzes *every* boundary (exhaustive); an integer
    bounds the sweep to that many evenly spaced crash points.  With
    ``torn`` set, every other sampled point reruns with guaranteed
    torn-write truncation; ``corrupt_tail_trials`` additional points
    reuse the lowest sampled indices with post-crash CRC damage on the
    log tail.  ``checkpoint_every`` lowers the engine's automatic
    checkpoint interval so the sweep also lands crashes *inside* the
    checkpoint protocol (begin / page writes / end) at fuzz-sized
    workloads.
    """
    from repro.tpcd.dbgen import generate

    if params_factory is None:
        def params_factory() -> SimParams:
            params = SimParams()
            params.wal_checkpoint_every_records = checkpoint_every
            if storage == "lsm":
                # Fuzz-sized datasets would never fill the default
                # memtable: shrink it so the sweep actually lands
                # crashes on lsm.flush / lsm.compaction boundaries.
                params.lsm_memtable_bytes = 8 * 1024
                params.lsm_l0_compaction_trigger = 2
            return params

    unknown = [w for w in workloads if w not in _WORKLOADS]
    if unknown:
        raise ValueError(f"unknown crash-fuzz workload(s): {unknown}; "
                         f"choose from {sorted(_WORKLOADS)}")
    data = data if data is not None else generate(scale_factor)
    report = CrashFuzzReport(scale_factor=scale_factor,
                             commit_interval=commit_interval,
                             sample=sample, storage=storage)
    for name in workloads:
        workload = _WORKLOADS[name]
        boundaries, kinds, reference = _census(
            workload, data, commit_interval, params_factory,
            storage=storage)
        wl_report = WorkloadFuzzReport(
            workload=name, boundaries=boundaries, boundary_kinds=kinds,
            reference_digest=reference)
        ks = _sample_boundaries(boundaries, sample)
        plan = [(k, "clean") for k in ks]
        if torn:
            plan += [(k, "torn") for k in ks[::2]]
        plan += [(k, "corrupt-tail") for k in ks[:corrupt_tail_trials]]
        for k, mode in plan:
            wl_report.trials.append(_run_trial(
                workload, data, commit_interval, k, mode, reference,
                params_factory, storage=storage))
        report.workloads.append(wl_report)
    return report
