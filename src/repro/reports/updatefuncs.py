"""TPC-D update functions UF1/UF2 on SAP R/3, via batch input.

Both SAP variants (Native and Open SQL) implement the update functions
through the batch-input facility, so they show identical performance
(paper Sections 3.4.3 / 3.4.4): each new order walks through the data
entry screens and every consistency check before its rows are inserted
one tuple at a time.
"""

from __future__ import annotations

from repro.r3.appserver import R3System
from repro.r3.batchinput import BatchInputSession, BatchTransaction
from repro.sapschema.loader import order_transactions
from repro.sapschema.mapping import KeyCodec
from repro.tpcd.dbgen import TpcdData


def run_uf1_sap(r3: R3System, refresh: TpcdData) -> int:
    """UF1: insert the refresh orders through batch input."""
    session = BatchInputSession(r3)
    stats = session.run_all(order_transactions(refresh))
    return stats.records_inserted


def run_uf2_sap(r3: R3System, orderkeys: list[int]) -> int:
    """UF2: delete orders (and their items/conditions) via batch input.

    Deletions also run record-wise through transaction processing —
    SAP validates that the order exists, then removes its VBAP/VBEP/
    STXL/KONV rows and the header.
    """
    session = BatchInputSession(r3)
    count = 0
    for orderkey in orderkeys:
        vbeln = KeyCodec.vbeln(orderkey)
        knumv = KeyCodec.knumv(orderkey)
        client = r3.client
        transaction = BatchTransaction(
            screens=2,
            checks=[(
                "SELECT SINGLE vbeln FROM vbak WHERE vbeln = :vbeln",
                {"vbeln": vbeln},
            )],
            deletes=[
                ("DELETE FROM vbap WHERE mandt = ? AND vbeln = ?",
                 (client, vbeln)),
                ("DELETE FROM vbep WHERE mandt = ? AND vbeln = ?",
                 (client, vbeln)),
                ("DELETE FROM stxl WHERE mandt = ? "
                 "AND tdobject = 'VBBK' AND tdname = ?",
                 (client, vbeln)),
                ("DELETE FROM stxl WHERE mandt = ? "
                 "AND tdobject = 'VBBP' AND tdname LIKE ?",
                 (client, vbeln + "%")),
                (_konv_delete_sql(r3), (client, knumv)),
                ("DELETE FROM vbak WHERE mandt = ? AND vbeln = ?",
                 (client, vbeln)),
            ],
        )
        session.run(transaction)
        count += 1
    return count


def _konv_delete_sql(r3: R3System) -> str:
    """KONV rows live in the cluster container until the 3.0 upgrade."""
    if r3.ddic.lookup("konv").encapsulated:
        container = r3.ddic.lookup("konv").container
        return f"DELETE FROM {container} WHERE mandt = ? AND knumv = ?"
    return "DELETE FROM konv WHERE mandt = ? AND knumv = ?"
