"""TPC-D update functions UF1/UF2 on SAP R/3, via batch input.

Both SAP variants (Native and Open SQL) implement the update functions
through the batch-input facility, so they show identical performance
(paper Sections 3.4.3 / 3.4.4): each new order walks through the data
entry screens and every consistency check before its rows are inserted
one tuple at a time.
"""

from __future__ import annotations

from repro.r3.appserver import R3System
from repro.r3.batchinput import (
    BatchInputSession,
    BatchTransaction,
    LoadJournal,
)
from repro.sapschema.loader import order_transactions
from repro.sapschema.mapping import KeyCodec
from repro.tpcd.dbgen import TpcdData


def run_uf1_sap(r3: R3System, refresh: TpcdData,
                commit_interval: int | None = None,
                journal: LoadJournal | None = None) -> int:
    """UF1: insert the refresh orders through batch input.

    With ``commit_interval``/``journal`` set the refresh stream runs as
    a journalled phase ("UF1"), so a crash mid-refresh resumes from the
    last checkpoint exactly like the initial load — the crash-fuzz
    harness relies on this to make UF1 a recoverable workload.
    """
    session = BatchInputSession(r3, commit_interval=commit_interval,
                                journal=journal)
    if journal is not None:
        stats = session.run_phase("UF1", order_transactions(refresh))
    else:
        stats = session.run_all(order_transactions(refresh))
    return stats.records_inserted


def uf2_transactions(r3: R3System, orderkeys: list[int]):
    """The UF2 delete stream as batch transactions (one per order)."""
    for orderkey in orderkeys:
        vbeln = KeyCodec.vbeln(orderkey)
        knumv = KeyCodec.knumv(orderkey)
        client = r3.client
        yield BatchTransaction(
            screens=2,
            checks=[(
                "SELECT SINGLE vbeln FROM vbak WHERE vbeln = :vbeln",
                {"vbeln": vbeln},
            )],
            deletes=[
                ("DELETE FROM vbap WHERE mandt = ? AND vbeln = ?",
                 (client, vbeln)),
                ("DELETE FROM vbep WHERE mandt = ? AND vbeln = ?",
                 (client, vbeln)),
                ("DELETE FROM stxl WHERE mandt = ? "
                 "AND tdobject = 'VBBK' AND tdname = ?",
                 (client, vbeln)),
                ("DELETE FROM stxl WHERE mandt = ? "
                 "AND tdobject = 'VBBP' AND tdname LIKE ?",
                 (client, vbeln + "%")),
                (_konv_delete_sql(r3), (client, knumv)),
                ("DELETE FROM vbak WHERE mandt = ? AND vbeln = ?",
                 (client, vbeln)),
            ],
        )


def run_uf2_sap(r3: R3System, orderkeys: list[int],
                commit_interval: int | None = None,
                journal: LoadJournal | None = None) -> int:
    """UF2: delete orders (and their items/conditions) via batch input.

    Deletions also run record-wise through transaction processing —
    SAP validates that the order exists, then removes its VBAP/VBEP/
    STXL/KONV rows and the header.  Like UF1, the stream becomes a
    journalled, crash-recoverable phase ("UF2") when a journal is
    supplied.
    """
    session = BatchInputSession(r3, commit_interval=commit_interval,
                                journal=journal)
    before = session.stats.transactions
    if journal is not None:
        session.run_phase("UF2", uf2_transactions(r3, orderkeys))
    else:
        session.run_all(uf2_transactions(r3, orderkeys))
    return session.stats.transactions - before


def _konv_delete_sql(r3: R3System) -> str:
    """KONV rows live in the cluster container until the 3.0 upgrade."""
    if r3.ddic.lookup("konv").encapsulated:
        container = r3.ddic.lookup("konv").container
        return f"DELETE FROM {container} WHERE mandt = ? AND knumv = ?"
    return "DELETE FROM konv WHERE mandt = ? AND knumv = ?"
