"""Open SQL reports, Release 2.2G.

No joins, no aggregates: everything beyond a single-table SELECT runs
in the application server.  The reports use the era's idioms —

* join views over transparent tables (``wvbapep`` & friends) to save
  interface crossings where possible,
* nested ``SELECT ... ENDSELECT`` loops (one DB round trip per outer
  row, amortised by the cursor cache),
* internal-table materialization with sorted binary-search reads,
* the EXTRACT/SORT/LOOP AT END grouping idiom,
* KONV reads through the cluster decoder (the only way to see pricing
  conditions in 2.2).
"""

from __future__ import annotations

from repro.r3.abap import InternalTable, group_aggregate
from repro.r3.appserver import R3System
from repro.reports import common as cm
from repro.reports.common import KeyCodec, KonvLookup


class _VbakMemo:
    """SELECT SINGLE against VBAK, memoised for the current order."""

    def __init__(self, r3: R3System, fields: str) -> None:
        self._r3 = r3
        self._fields = fields
        self._vbeln: str | None = None
        self._row: tuple | None = None

    def get(self, vbeln: str) -> tuple | None:
        if vbeln != self._vbeln:
            self._row = self._r3.open_sql.select_single(
                f"SELECT SINGLE {self._fields} FROM vbak "
                f"WHERE vbeln = :vbeln",
                {"vbeln": vbeln},
            )
            self._vbeln = vbeln
        return self._row


def q1(r3: R3System) -> list[tuple]:
    konv = KonvLookup(r3)
    vbak = _VbakMemo(r3, "knumv")
    lines = r3.open_sql.select(
        "SELECT vbeln posnr kwmeng netwr rkflg gbsta FROM wvbapep "
        "WHERE edatu <= :maxdate",
        {"maxdate": cm.Q1_MAX_SHIPDATE},
    )
    records = []
    for vbeln, posnr, kwmeng, netwr, rkflg, gbsta in lines.rows:
        r3.charge_abap(1)
        knumv = vbak.get(vbeln)[0]
        conditions = konv.conditions(knumv)[posnr]
        records.append((rkflg, gbsta, kwmeng, netwr,
                        conditions["disc"], conditions["tax"]))

    def fold(key: tuple, group: list[tuple]) -> tuple:
        count = len(group)
        sum_qty = sum(g[2] for g in group)
        sum_base = sum(g[3] for g in group)
        sum_disc = sum(g[3] * (1 - g[4]) for g in group)
        sum_charge = sum(g[3] * (1 - g[4]) * (1 + g[5]) for g in group)
        avg_disc = sum(g[4] for g in group) / count
        return key + (sum_qty, sum_base, sum_disc, sum_charge,
                      sum_qty / count, sum_base / count, avg_disc, count)

    return sorted(group_aggregate(r3, records,
                                  lambda g: (g[0], g[1]), fold))


def q2(r3: R3System) -> list[tuple]:
    europe = cm.nations_in_region(r3, "EUROPE")
    # European suppliers with their details, keyed by LIFNR.
    suppliers: dict[str, tuple] = {}
    for row in r3.open_sql.select(
            "SELECT lifnr land1 saldo name1 stras telf1 FROM lfa1").rows:
        r3.charge_abap(1)
        if row[1] in europe:
            suppliers[row[0]] = row
    # Nested loops over purchasing info records: min cost per part.
    min_cost: dict[str, float] = {}
    offers: list[tuple] = []
    for infnr, matnr, lifnr in r3.open_sql.select(
            "SELECT infnr matnr lifnr FROM eina").rows:
        r3.charge_abap(1)
        if lifnr not in suppliers:
            continue
        eine = r3.open_sql.select_single(
            "SELECT SINGLE netpr FROM eine WHERE infnr = :infnr",
            {"infnr": infnr},
        )
        netpr = eine[0]
        offers.append((matnr, lifnr, netpr))
        if matnr not in min_cost or netpr < min_cost[matnr]:
            min_cost[matnr] = netpr
    # Candidate parts: size 15, type %BRASS.
    parts: dict[str, tuple] = {}
    for matnr, mtart, mfrpn in r3.open_sql.select(
            "SELECT matnr mtart mfrpn FROM mara "
            "WHERE mtart LIKE :ptype", {"ptype": "%BRASS"}).rows:
        r3.charge_abap(1)
        size = r3.open_sql.select_single(
            "SELECT SINGLE atflv FROM ausp WHERE objek = :objek "
            "AND atinn = 'SIZE'",
            {"objek": matnr},
        )
        if size is not None and size[0] == 15.0:
            parts[matnr] = (mtart, mfrpn)
    picked = []
    for matnr, lifnr, netpr in offers:
        r3.charge_abap(1)
        if matnr not in parts or netpr != min_cost[matnr]:
            continue
        _lifnr, land1, saldo, name1, stras, telf1 = suppliers[lifnr]
        comment = cm.supplier_comment_map(r3, [lifnr])[lifnr]
        picked.append((saldo, name1, europe[land1],
                       KeyCodec.partkey(matnr), parts[matnr][1], stras,
                       telf1, comment))
    itab = InternalTable(r3)
    itab.extend(picked)
    itab.sort(lambda g: (-g[0], g[2], g[1], g[3]), via_disk=False)
    return itab.rows[:100]


def q3(r3: R3System) -> list[tuple]:
    building = InternalTable(r3)
    building.extend(r3.open_sql.select(
        "SELECT kunnr FROM kna1 WHERE brsch = 'BUILDING'").rows)
    building.sort(lambda row: (row[0],))
    # Materialize the shippable lineitems once (internal-table idiom —
    # re-opening the join view per order would be ruinous).
    lines = InternalTable(r3)
    lines.extend(r3.open_sql.select(
        "SELECT vbeln posnr netwr FROM wvbapep WHERE edatu > :cutoff",
        {"cutoff": cm.Q3_DATE}).rows)
    lines.sort(lambda row: (row[0],))
    konv = KonvLookup(r3)
    grouped: list[tuple] = []
    orders = r3.open_sql.select(
        "SELECT vbeln kunnr audat sprio knumv FROM vbak "
        "WHERE audat < :cutoff",
        {"cutoff": cm.Q3_DATE},
    )
    for vbeln, kunnr, audat, sprio, knumv in orders.rows:
        r3.charge_abap(1)
        if building.read_binary((kunnr,)) is None:
            continue
        order_lines = lines.read_binary_all((vbeln,))
        if not order_lines:
            continue
        revenue = 0.0
        for _vbeln, posnr, netwr in order_lines:
            r3.charge_abap(1)
            revenue += netwr * (1 - konv.disc(knumv, posnr))
        grouped.append((KeyCodec.orderkey(vbeln), revenue, audat, sprio))
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[1], g[2]), via_disk=False)
    return itab.rows[:10]


def q4(r3: R3System) -> list[tuple]:
    # Materialize the late order numbers once, then probe in ABAP.
    late = InternalTable(r3)
    late.extend(r3.open_sql.select(
        "SELECT vbeln FROM wvbapep WHERE mbdat < lfdat").rows)
    late.sort(lambda row: (row[0],))
    orders = r3.open_sql.select(
        "SELECT vbeln prior FROM vbak WHERE audat >= :lo AND audat < :hi",
        {"lo": cm.Q4_LO, "hi": cm.Q4_HI},
    )
    qualifying = []
    for vbeln, prior in orders.rows:
        r3.charge_abap(1)
        if late.read_binary((vbeln,)) is not None:
            qualifying.append((prior,))
    return sorted(group_aggregate(
        r3, qualifying, lambda g: (g[0],),
        lambda key, group: key + (len(group),),
    ))


def q5(r3: R3System) -> list[tuple]:
    asia = cm.nations_in_region(r3, "ASIA")
    supplier_nation: dict[str, str] = {}
    for lifnr, land1 in r3.open_sql.select(
            "SELECT lifnr land1 FROM lfa1").rows:
        r3.charge_abap(1)
        if land1 in asia:
            supplier_nation[lifnr] = land1
    customer_nation: dict[str, str] = {}
    for kunnr, land1 in r3.open_sql.select(
            "SELECT kunnr land1 FROM kna1").rows:
        r3.charge_abap(1)
        if land1 in asia:
            customer_nation[kunnr] = land1
    konv = KonvLookup(r3)
    records = []
    orders = r3.open_sql.select(
        "SELECT vbeln kunnr knumv FROM vbak "
        "WHERE audat >= :lo AND audat < :hi",
        {"lo": cm.Q5_LO, "hi": cm.Q5_HI},
    )
    for vbeln, kunnr, knumv in orders.rows:
        r3.charge_abap(1)
        cust_land = customer_nation.get(kunnr)
        if cust_land is None:
            continue
        lines = r3.open_sql.select(
            "SELECT posnr lifnr netwr FROM vbap WHERE vbeln = :vbeln",
            {"vbeln": vbeln},
        )
        for posnr, lifnr, netwr in lines.rows:
            r3.charge_abap(1)
            supp_land = supplier_nation.get(lifnr)
            if supp_land is None or supp_land != cust_land:
                continue
            revenue = netwr * (1 - konv.disc(knumv, posnr))
            records.append((asia[supp_land], revenue))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0],),
        lambda key, group: key + (sum(g[1] for g in group),),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[1],), via_disk=False)
    return itab.rows


def q6(r3: R3System) -> list[tuple]:
    vbak = _VbakMemo(r3, "knumv")
    konv = KonvLookup(r3)
    lines = r3.open_sql.select(
        "SELECT vbeln posnr netwr FROM wvbapep "
        "WHERE edatu >= :lo AND edatu < :hi AND kwmeng < 24",
        {"lo": cm.Q6_LO, "hi": cm.Q6_HI},
    )
    total = 0.0
    any_row = False
    for vbeln, posnr, netwr in lines.rows:
        r3.charge_abap(1)
        knumv = vbak.get(vbeln)[0]
        disc = konv.disc(knumv, posnr)
        if 0.05 <= disc <= 0.07:
            total += netwr * disc
            any_row = True
    return [(total if any_row else None,)]


def q7(r3: R3System) -> list[tuple]:
    names = cm.nation_names(r3)
    fr_de = {land1: name for land1, name in names.items()
             if name in ("FRANCE", "GERMANY")}
    supplier_nation: dict[str, str] = {}
    for lifnr, land1 in r3.open_sql.select(
            "SELECT lifnr land1 FROM lfa1").rows:
        r3.charge_abap(1)
        if land1 in fr_de:
            supplier_nation[lifnr] = fr_de[land1]
    customer_nation: dict[str, str] = {}
    for kunnr, land1 in r3.open_sql.select(
            "SELECT kunnr land1 FROM kna1").rows:
        r3.charge_abap(1)
        if land1 in fr_de:
            customer_nation[kunnr] = fr_de[land1]
    vbak = _VbakMemo(r3, "kunnr knumv")
    konv = KonvLookup(r3)
    records = []
    lines = r3.open_sql.select(
        "SELECT vbeln posnr lifnr netwr edatu FROM wvbapep "
        "WHERE edatu BETWEEN :lo AND :hi",
        {"lo": cm.Q7_LO, "hi": cm.Q7_HI},
    )
    for vbeln, posnr, lifnr, netwr, edatu in lines.rows:
        r3.charge_abap(1)
        supp_nation = supplier_nation.get(lifnr)
        if supp_nation is None:
            continue
        kunnr, knumv = vbak.get(vbeln)
        cust_nation = customer_nation.get(kunnr)
        if cust_nation is None or cust_nation == supp_nation:
            continue
        revenue = netwr * (1 - konv.disc(knumv, posnr))
        records.append((supp_nation, cust_nation, edatu.year, revenue))
    return sorted(group_aggregate(
        r3, records, lambda g: (g[0], g[1], g[2]),
        lambda key, group: key + (sum(g[3] for g in group),),
    ))


def q8(r3: R3System) -> list[tuple]:
    target_parts = InternalTable(r3)
    target_parts.extend(r3.open_sql.select(
        "SELECT matnr FROM mara WHERE mtart = :ptype",
        {"ptype": "ECONOMY ANODIZED STEEL"}).rows)
    target_parts.sort(lambda row: (row[0],))
    america = cm.nations_in_region(r3, "AMERICA")
    names = cm.nation_names(r3)
    supplier_nation: dict[str, str] = {}
    for lifnr, land1 in r3.open_sql.select(
            "SELECT lifnr land1 FROM lfa1").rows:
        r3.charge_abap(1)
        supplier_nation[lifnr] = names[land1]
    customers_america: set[str] = set()
    for kunnr, land1 in r3.open_sql.select(
            "SELECT kunnr land1 FROM kna1").rows:
        r3.charge_abap(1)
        if land1 in america:
            customers_america.add(kunnr)
    konv = KonvLookup(r3)
    records = []
    orders = r3.open_sql.select(
        "SELECT vbeln kunnr audat knumv FROM vbak "
        "WHERE audat BETWEEN :lo AND :hi",
        {"lo": cm.Q7_LO, "hi": cm.Q7_HI},
    )
    for vbeln, kunnr, audat, knumv in orders.rows:
        r3.charge_abap(1)
        if kunnr not in customers_america:
            continue
        lines = r3.open_sql.select(
            "SELECT posnr matnr lifnr netwr FROM vbap "
            "WHERE vbeln = :vbeln",
            {"vbeln": vbeln},
        )
        for posnr, matnr, lifnr, netwr in lines.rows:
            r3.charge_abap(1)
            if target_parts.read_binary((matnr,)) is None:
                continue
            revenue = netwr * (1 - konv.disc(knumv, posnr))
            records.append((audat.year, supplier_nation[lifnr], revenue))

    def fold(key: tuple, group: list[tuple]) -> tuple:
        total = sum(g[2] for g in group)
        brazil = sum(g[2] for g in group if g[1] == "BRAZIL")
        return key + (brazil / total,)

    return sorted(group_aggregate(r3, records, lambda g: (g[0],), fold))


def q9(r3: R3System) -> list[tuple]:
    names = cm.nation_names(r3)
    supplier_nation: dict[str, str] = {}
    for lifnr, land1 in r3.open_sql.select(
            "SELECT lifnr land1 FROM lfa1").rows:
        r3.charge_abap(1)
        supplier_nation[lifnr] = names[land1]
    green_parts = r3.open_sql.select(
        "SELECT matnr FROM makt WHERE maktx LIKE :pname",
        {"pname": "%green%"},
    )
    vbak = _VbakMemo(r3, "audat knumv")
    konv = KonvLookup(r3)
    supplycost: dict[tuple[str, str], float] = {}
    records = []
    for (matnr,) in green_parts.rows:
        r3.charge_abap(1)
        lines = r3.open_sql.select(
            "SELECT vbeln posnr lifnr netwr kwmeng FROM vbap "
            "WHERE matnr = :matnr",
            {"matnr": matnr},
        )
        for vbeln, posnr, lifnr, netwr, kwmeng in lines.rows:
            r3.charge_abap(1)
            cost_key = (matnr, lifnr)
            if cost_key not in supplycost:
                eina = r3.open_sql.select_single(
                    "SELECT SINGLE infnr FROM eina WHERE matnr = :matnr "
                    "AND lifnr = :lifnr",
                    {"matnr": matnr, "lifnr": lifnr},
                )
                eine = r3.open_sql.select_single(
                    "SELECT SINGLE netpr FROM eine WHERE infnr = :infnr",
                    {"infnr": eina[0]},
                )
                supplycost[cost_key] = eine[0]
            audat, knumv = vbak.get(vbeln)
            profit = (netwr * (1 - konv.disc(knumv, posnr))
                      - supplycost[cost_key] * kwmeng)
            records.append((supplier_nation[lifnr], audat.year, profit))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0], g[1]),
        lambda key, group: key + (sum(g[2] for g in group),),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (g[0], -g[1]), via_disk=False)
    return itab.rows


def q10(r3: R3System) -> list[tuple]:
    konv = KonvLookup(r3)
    revenue_by_customer: dict[str, float] = {}
    orders = r3.open_sql.select(
        "SELECT vbeln kunnr knumv FROM vbak "
        "WHERE audat >= :lo AND audat < :hi",
        {"lo": cm.Q10_LO, "hi": cm.Q10_HI},
    )
    for vbeln, kunnr, knumv in orders.rows:
        r3.charge_abap(1)
        lines = r3.open_sql.select(
            "SELECT posnr netwr FROM vbap WHERE vbeln = :vbeln "
            "AND rkflg = 'R'",
            {"vbeln": vbeln},
        )
        for posnr, netwr in lines.rows:
            r3.charge_abap(1)
            revenue = netwr * (1 - konv.disc(knumv, posnr))
            revenue_by_customer[kunnr] = \
                revenue_by_customer.get(kunnr, 0.0) + revenue
    names = cm.nation_names(r3)
    itab = InternalTable(r3)
    for kunnr, revenue in revenue_by_customer.items():
        r3.charge_abap(1)
        itab.append((kunnr, revenue))
    itab.sort(lambda g: (-g[1],), via_disk=False)
    out = []
    for kunnr, revenue in itab.rows[:20]:
        customer = r3.open_sql.select_single(
            "SELECT SINGLE name1 saldo land1 stras telf1 FROM kna1 "
            "WHERE kunnr = :kunnr",
            {"kunnr": kunnr},
        )
        comment = cm.customer_comment_map(r3, [kunnr])[kunnr]
        name1, saldo, land1, stras, telf1 = customer
        out.append((KeyCodec.custkey(kunnr), name1, revenue, saldo,
                    names[land1], stras, telf1, comment))
    return out


def q11(r3: R3System, fraction: float) -> list[tuple]:
    names = cm.nation_names(r3)
    german: list[str] = []
    for lifnr, land1 in r3.open_sql.select(
            "SELECT lifnr land1 FROM lfa1").rows:
        r3.charge_abap(1)
        if names[land1] == "GERMANY":
            german.append(lifnr)
    value_by_part: dict[str, float] = {}
    total = 0.0
    for lifnr in german:
        infos = r3.open_sql.select(
            "SELECT infnr matnr FROM eina WHERE lifnr = :lifnr",
            {"lifnr": lifnr},
        )
        for infnr, matnr in infos.rows:
            r3.charge_abap(1)
            eine = r3.open_sql.select_single(
                "SELECT SINGLE netpr avlqt FROM eine WHERE infnr = :infnr",
                {"infnr": infnr},
            )
            value = eine[0] * eine[1]
            value_by_part[matnr] = value_by_part.get(matnr, 0.0) + value
            total += value
    threshold = total * fraction
    itab = InternalTable(r3)
    for matnr, value in value_by_part.items():
        r3.charge_abap(1)
        if value > threshold:
            itab.append((KeyCodec.partkey(matnr), value))
    itab.sort(lambda g: (-g[1],), via_disk=False)
    return itab.rows


def q12(r3: R3System) -> list[tuple]:
    vbak = _VbakMemo(r3, "prior")
    lines = r3.open_sql.select(
        "SELECT vbeln vsart FROM wvbapep "
        "WHERE vsart IN ('MAIL', 'SHIP') AND mbdat < lfdat "
        "AND edatu < mbdat AND lfdat >= :lo AND lfdat < :hi",
        {"lo": cm.Q12_LO, "hi": cm.Q12_HI},
    )
    records = []
    for vbeln, vsart in lines.rows:
        r3.charge_abap(1)
        prior = vbak.get(vbeln)[0]
        records.append((vsart, prior))

    def fold(key: tuple, group: list[tuple]) -> tuple:
        high = sum(1 for g in group if g[1] in ("1-URGENT", "2-HIGH"))
        return key + (high, len(group) - high)

    return sorted(group_aggregate(r3, records, lambda g: (g[0],), fold))


def q13(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT prior netwr FROM vbak WHERE audat >= :lo "
        "AND audat < :hi AND netwr > :minval",
        {"lo": cm.Q13_LO, "hi": cm.Q13_HI, "minval": 250000.0},
    )
    return sorted(group_aggregate(
        r3, rows.rows, lambda g: (g[0],),
        lambda key, group: key + (len(group), sum(g[1] for g in group)),
    ))


def q14(r3: R3System) -> list[tuple]:
    vbak = _VbakMemo(r3, "knumv")
    konv = KonvLookup(r3)
    mtart_cache: dict[str, str] = {}
    lines = r3.open_sql.select(
        "SELECT vbeln posnr matnr netwr FROM wvbapep "
        "WHERE edatu >= :lo AND edatu < :hi",
        {"lo": cm.Q14_LO, "hi": cm.Q14_HI},
    )
    promo = total = 0.0
    any_row = False
    for vbeln, posnr, matnr, netwr in lines.rows:
        r3.charge_abap(1)
        if matnr not in mtart_cache:
            mara = r3.open_sql.select_single(
                "SELECT SINGLE mtart FROM mara WHERE matnr = :matnr",
                {"matnr": matnr},
            )
            mtart_cache[matnr] = mara[0]
        knumv = vbak.get(vbeln)[0]
        revenue = netwr * (1 - konv.disc(knumv, posnr))
        total += revenue
        any_row = True
        if mtart_cache[matnr].startswith("PROMO"):
            promo += revenue
    if not any_row or total == 0.0:
        return [(None,)]
    return [(100.0 * promo / total,)]


def q15(r3: R3System) -> list[tuple]:
    vbak = _VbakMemo(r3, "knumv")
    konv = KonvLookup(r3)
    lines = r3.open_sql.select(
        "SELECT vbeln posnr lifnr netwr FROM wvbapep "
        "WHERE edatu >= :lo AND edatu < :hi",
        {"lo": cm.Q15_LO, "hi": cm.Q15_HI},
    )
    records = []
    for vbeln, posnr, lifnr, netwr in lines.rows:
        r3.charge_abap(1)
        knumv = vbak.get(vbeln)[0]
        records.append((lifnr, netwr * (1 - konv.disc(knumv, posnr))))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0],),
        lambda key, group: key + (sum(g[1] for g in group),),
    )
    if not grouped:
        return []
    best = max(value for _l, value in grouped)
    out = []
    for lifnr, value in grouped:
        r3.charge_abap(1)
        if value == best:
            supplier = r3.open_sql.select_single(
                "SELECT SINGLE name1 stras telf1 FROM lfa1 "
                "WHERE lifnr = :lifnr",
                {"lifnr": lifnr},
            )
            out.append((KeyCodec.suppkey(lifnr), supplier[0],
                        supplier[1], supplier[2], value))
    return sorted(out)


def q16(r3: R3System) -> list[tuple]:
    complaints = InternalTable(r3)
    complaints.extend(r3.open_sql.select(
        "SELECT tdname FROM stxl WHERE tdobject = 'LFA1' "
        "AND tdline LIKE :pat",
        {"pat": "%Customer%Complaints%"}).rows)
    complaints.sort(lambda row: (row[0],))
    sizes = InternalTable(r3)
    sizes.extend(r3.open_sql.select(
        "SELECT objek atflv FROM ausp WHERE atinn = 'SIZE' "
        "AND atflv IN (49, 14, 23, 45, 19, 3, 36, 9)").rows)
    sizes.sort(lambda row: (row[0],))
    parts = r3.open_sql.select(
        "SELECT matnr extwg mtart FROM mara "
        "WHERE extwg <> 'Brand#45' AND mtart NOT LIKE :ptype",
        {"ptype": "MEDIUM POLISHED%"},
    )
    groups: dict[tuple, set] = {}
    for matnr, extwg, mtart in parts.rows:
        r3.charge_abap(1)
        size_row = sizes.read_binary((matnr,))
        if size_row is None:
            continue
        suppliers = r3.open_sql.select(
            "SELECT lifnr FROM eina WHERE matnr = :matnr",
            {"matnr": matnr},
        )
        for (lifnr,) in suppliers.rows:
            r3.charge_abap(1)
            if complaints.read_binary((lifnr,)) is not None:
                continue
            groups.setdefault((extwg, mtart, size_row[1]), set()).add(lifnr)
    itab = InternalTable(r3)
    for (extwg, mtart, atflv), lifnrs in groups.items():
        r3.charge_abap(1)
        itab.append((extwg, mtart, int(atflv), len(lifnrs)))
    itab.sort(lambda g: (-g[3], g[0], g[1], g[2]), via_disk=False)
    return itab.rows


def q17(r3: R3System) -> list[tuple]:
    parts = r3.open_sql.select(
        "SELECT matnr FROM mara WHERE extwg = 'Brand#23' "
        "AND magrv = :container",
        {"container": "MED BOX"},
    )
    total = 0.0
    any_row = False
    for (matnr,) in parts.rows:
        r3.charge_abap(1)
        # Materialize the part's lineitems in an internal table: one
        # pass for the average (no aggregates in 2.2!), one to filter.
        itab = InternalTable(r3)
        itab.extend(r3.open_sql.select(
            "SELECT kwmeng netwr FROM vbap WHERE matnr = :matnr",
            {"matnr": matnr}).rows)
        if not itab.rows:
            continue
        avg_qty = sum(row[0] for row in itab.loop()) / len(itab)
        for kwmeng, netwr in itab.loop():
            if kwmeng < 0.2 * avg_qty:
                total += netwr
                any_row = True
    return [(total / 7.0 if any_row else None,)]


def make_queries(scale_factor: float):
    """{number: fn(r3) -> rows} for the Open SQL 2.2 suite."""
    q11_fraction = 0.0001 / scale_factor
    queries = {n: globals()[f"q{n}"] for n in range(1, 18) if n != 11}
    queries[11] = lambda r3: q11(r3, q11_fraction)
    return queries
