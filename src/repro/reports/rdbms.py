"""The isolated-RDBMS baseline: standard SQL on the original schema.

A thin adapter so every variant exposes the same ``QUERIES`` mapping
``{number: fn(db_or_r3) -> list[tuple]}``.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.tpcd.queries import build_queries, run_query


def make_queries(scale_factor: float):
    """{number: fn(db) -> rows} running the standard SQL suite."""
    specs = build_queries(scale_factor)

    def runner(number: int):
        def run(db: Database) -> list[tuple]:
            return list(run_query(db, specs[number]).rows)

        run.__name__ = f"q{number}"
        return run

    return {number: runner(number) for number in specs}
