"""Open SQL reports, Release 3.0E.

The 3.0 Open SQL JOIN construct pushes all joins to the RDBMS, but:

* complex aggregations (arithmetic inside SUM/AVG) cannot be
  expressed, so those queries ship the joined rows to the application
  server and group there with the EXTRACT/SORT idiom (paper
  Section 4.2);
* nested queries cannot be expressed, so the reports unnest manually —
  which, the paper found, sometimes beats both Native SQL and the
  isolated RDBMS (Q2/Q11/Q16) because the back end executes nested
  queries naively.
"""

from __future__ import annotations

from repro.r3.abap import InternalTable, group_aggregate
from repro.r3.appserver import R3System
from repro.reports import common as cm
from repro.reports.common import KeyCodec

#: lineitem-cluster Open SQL join fragment: vbap p + vbep e + vbak k +
#: discount condition kd (extend with kt for tax)
_L_JOIN = (
    "FROM vbap AS p "
    "INNER JOIN vbep AS e ON e~vbeln = p~vbeln AND e~posnr = p~posnr "
    "INNER JOIN vbak AS k ON k~vbeln = p~vbeln "
    "INNER JOIN konv AS kd ON kd~knumv = k~knumv AND kd~kposn = p~posnr"
)
_L_JOIN_TAX = (
    _L_JOIN
    + " INNER JOIN konv AS kt ON kt~knumv = k~knumv AND kt~kposn = p~posnr"
)


def _rev(netwr: float, kbetr: float) -> float:
    """l_extendedprice * (1 - l_discount) from VBAP.NETWR + DISC rate."""
    return netwr * (1 + kbetr / 1000.0)


def q1(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT p~rkflg p~gbsta p~kwmeng p~netwr kd~kbetr kt~kbetr "
        + _L_JOIN_TAX
        + " WHERE e~edatu <= :maxdate AND kd~kschl = 'DISC'"
          " AND kt~kschl = 'TAX'",
        {"maxdate": cm.Q1_MAX_SHIPDATE},
    )

    def fold(key: tuple, group: list[tuple]) -> tuple:
        count = len(group)
        sum_qty = sum(g[2] for g in group)
        sum_base = sum(g[3] for g in group)
        sum_disc = sum(_rev(g[3], g[4]) for g in group)
        sum_charge = sum(_rev(g[3], g[4]) * (1 + g[5] / 1000) for g in group)
        avg_disc = sum(-g[4] / 1000 for g in group) / count
        return key + (sum_qty, sum_base, sum_disc, sum_charge,
                      sum_qty / count, sum_base / count, avg_disc, count)

    out = group_aggregate(r3, rows.rows, lambda g: (g[0], g[1]), fold)
    return sorted(out)


def q2(r3: R3System) -> list[tuple]:
    # Manual unnesting: minimum cost per part first (simple MIN pushes).
    min_tab = InternalTable(r3)
    mins = r3.open_sql.select(
        "SELECT ia~matnr MIN( ie~netpr ) "
        "FROM eina AS ia "
        "INNER JOIN eine AS ie ON ie~infnr = ia~infnr "
        "INNER JOIN lfa1 AS s ON s~lifnr = ia~lifnr "
        "INNER JOIN t005 AS n ON n~land1 = s~land1 "
        "INNER JOIN t005u AS r ON r~regio = n~regio "
        "WHERE r~spras = 'E' AND r~bezei = 'EUROPE' "
        "GROUP BY ia~matnr"
    )
    min_tab.extend(mins.rows)
    min_tab.sort(lambda row: (row[0],))

    rows = r3.open_sql.select(
        "SELECT s~saldo s~name1 nt~landx p~matnr p~mfrpn s~stras s~telf1 "
        "st~tdline ie~netpr "
        "FROM mara AS p "
        "INNER JOIN ausp AS a ON a~objek = p~matnr "
        "INNER JOIN eina AS ia ON ia~matnr = p~matnr "
        "INNER JOIN eine AS ie ON ie~infnr = ia~infnr "
        "INNER JOIN lfa1 AS s ON s~lifnr = ia~lifnr "
        "INNER JOIN t005 AS n ON n~land1 = s~land1 "
        "INNER JOIN t005t AS nt ON nt~land1 = n~land1 "
        "INNER JOIN t005u AS r ON r~regio = n~regio "
        "INNER JOIN stxl AS st ON st~tdname = s~lifnr "
        "WHERE a~atinn = 'SIZE' AND a~atflv = :size "
        "AND p~mtart LIKE :ptype AND nt~spras = 'E' "
        "AND r~spras = 'E' AND r~bezei = 'EUROPE' "
        "AND st~tdobject = 'LFA1'",
        {"size": 15.0, "ptype": "%BRASS"},
    )
    picked = []
    for row in rows.rows:
        r3.charge_abap(1)
        minimum = min_tab.read_binary((row[3],))
        if minimum is not None and row[8] == minimum[1]:
            picked.append(row[:8])
    itab = InternalTable(r3)
    itab.extend(picked)
    itab.sort(lambda g: (-g[0], g[2], g[1], g[3]), via_disk=False)
    return [
        row[:3] + (KeyCodec.partkey(row[3]),) + row[4:8]
        for row in itab.rows[:100]
    ]


def q3(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT p~vbeln k~audat k~sprio p~netwr kd~kbetr "
        "FROM kna1 AS cu "
        "INNER JOIN vbak AS k ON k~kunnr = cu~kunnr "
        "INNER JOIN vbap AS p ON p~vbeln = k~vbeln "
        "INNER JOIN vbep AS e ON e~vbeln = p~vbeln AND e~posnr = p~posnr "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "WHERE cu~brsch = 'BUILDING' AND k~audat < :cutoff "
        "AND e~edatu > :cutoff AND kd~kschl = 'DISC'",
        {"cutoff": cm.Q3_DATE},
    )

    def fold(key: tuple, group: list[tuple]) -> tuple:
        revenue = sum(_rev(g[3], g[4]) for g in group)
        return (KeyCodec.orderkey(key[0]), revenue, key[1], key[2])

    grouped = group_aggregate(r3, rows.rows,
                              lambda g: (g[0], g[1], g[2]), fold)
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[1], g[2]), via_disk=False)
    return itab.rows[:10]


def q4(r3: R3System) -> list[tuple]:
    # Unnest the EXISTS: all late lineitems' order numbers first.
    late = r3.open_sql.select(
        "SELECT p~vbeln FROM vbap AS p "
        "INNER JOIN vbep AS e ON e~vbeln = p~vbeln AND e~posnr = p~posnr "
        "WHERE e~mbdat < e~lfdat"
    )
    late_tab = InternalTable(r3)
    late_tab.extend(late.rows)
    late_tab.sort(lambda row: (row[0],))

    orders = r3.open_sql.select(
        "SELECT vbeln prior FROM vbak "
        "WHERE audat >= :lo AND audat < :hi",
        {"lo": cm.Q4_LO, "hi": cm.Q4_HI},
    )
    qualifying = []
    for vbeln, prior in orders.rows:
        r3.charge_abap(1)
        if late_tab.read_binary((vbeln,)) is not None:
            qualifying.append((prior,))
    out = group_aggregate(r3, qualifying, lambda g: (g[0],),
                          lambda key, group: key + (len(group),))
    return sorted(out)


def q5(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT nt~landx p~netwr kd~kbetr "
        "FROM kna1 AS cu "
        "INNER JOIN vbak AS k ON k~kunnr = cu~kunnr "
        "INNER JOIN vbap AS p ON p~vbeln = k~vbeln "
        "INNER JOIN lfa1 AS s ON s~lifnr = p~lifnr "
        "INNER JOIN t005 AS n ON n~land1 = s~land1 "
        "INNER JOIN t005t AS nt ON nt~land1 = n~land1 "
        "INNER JOIN t005u AS r ON r~regio = n~regio "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "WHERE cu~land1 = s~land1 AND nt~spras = 'E' AND r~spras = 'E' "
        "AND r~bezei = 'ASIA' AND k~audat >= :lo AND k~audat < :hi "
        "AND kd~kschl = 'DISC'",
        {"lo": cm.Q5_LO, "hi": cm.Q5_HI},
    )
    grouped = group_aggregate(
        r3, rows.rows, lambda g: (g[0],),
        lambda key, group: key + (sum(_rev(g[1], g[2]) for g in group),),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[1],), via_disk=False)
    return itab.rows


def q6(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT p~netwr kd~kbetr " + _L_JOIN
        + " WHERE e~edatu >= :lo AND e~edatu < :hi"
          " AND kd~kschl = 'DISC'"
          " AND kd~kbetr >= :klo AND kd~kbetr <= :khi"
          " AND p~kwmeng < 24",
        {"lo": cm.Q6_LO, "hi": cm.Q6_HI, "klo": -70.0, "khi": -50.0},
    )
    total = 0.0
    for netwr, kbetr in rows.rows:
        r3.charge_abap(1)
        total += netwr * (-kbetr / 1000.0)
    return [(total if rows.rows else None,)]


def q7(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT nt1~landx nt2~landx e~edatu p~netwr kd~kbetr "
        "FROM lfa1 AS s "
        "INNER JOIN vbap AS p ON p~lifnr = s~lifnr "
        "INNER JOIN vbep AS e ON e~vbeln = p~vbeln AND e~posnr = p~posnr "
        "INNER JOIN vbak AS k ON k~vbeln = p~vbeln "
        "INNER JOIN kna1 AS cu ON cu~kunnr = k~kunnr "
        "INNER JOIN t005t AS nt1 ON nt1~land1 = s~land1 "
        "INNER JOIN t005t AS nt2 ON nt2~land1 = cu~land1 "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "WHERE nt1~spras = 'E' AND nt2~spras = 'E' "
        "AND ((nt1~landx = 'FRANCE' AND nt2~landx = 'GERMANY') "
        "OR (nt1~landx = 'GERMANY' AND nt2~landx = 'FRANCE')) "
        "AND e~edatu BETWEEN :lo AND :hi AND kd~kschl = 'DISC'",
        {"lo": cm.Q7_LO, "hi": cm.Q7_HI},
    )
    grouped = group_aggregate(
        r3, rows.rows, lambda g: (g[0], g[1], g[2].year),
        lambda key, group: key + (sum(_rev(g[3], g[4]) for g in group),),
    )
    return sorted(grouped)


def q8(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT k~audat nts~landx p~netwr kd~kbetr "
        "FROM mara AS pa "
        "INNER JOIN vbap AS p ON p~matnr = pa~matnr "
        "INNER JOIN lfa1 AS s ON s~lifnr = p~lifnr "
        "INNER JOIN vbak AS k ON k~vbeln = p~vbeln "
        "INNER JOIN kna1 AS cu ON cu~kunnr = k~kunnr "
        "INNER JOIN t005 AS nc ON nc~land1 = cu~land1 "
        "INNER JOIN t005u AS r ON r~regio = nc~regio "
        "INNER JOIN t005t AS nts ON nts~land1 = s~land1 "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "WHERE r~spras = 'E' AND r~bezei = 'AMERICA' "
        "AND nts~spras = 'E' AND k~audat BETWEEN :lo AND :hi "
        "AND pa~mtart = :ptype AND kd~kschl = 'DISC'",
        {"lo": cm.Q7_LO, "hi": cm.Q7_HI,
         "ptype": "ECONOMY ANODIZED STEEL"},
    )

    def fold(key: tuple, group: list[tuple]) -> tuple:
        total = sum(_rev(g[2], g[3]) for g in group)
        brazil = sum(
            _rev(g[2], g[3]) for g in group if g[1] == "BRAZIL"
        )
        return key + (brazil / total,)

    grouped = group_aggregate(r3, rows.rows, lambda g: (g[0].year,), fold)
    return sorted(grouped)


def q9(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT nt~landx k~audat p~netwr kd~kbetr ie~netpr p~kwmeng "
        "FROM mara AS pa "
        "INNER JOIN makt AS mk ON mk~matnr = pa~matnr "
        "INNER JOIN vbap AS p ON p~matnr = pa~matnr "
        "INNER JOIN lfa1 AS s ON s~lifnr = p~lifnr "
        "INNER JOIN eina AS ia ON ia~matnr = p~matnr "
        "AND ia~lifnr = p~lifnr "
        "INNER JOIN eine AS ie ON ie~infnr = ia~infnr "
        "INNER JOIN vbak AS k ON k~vbeln = p~vbeln "
        "INNER JOIN t005t AS nt ON nt~land1 = s~land1 "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "WHERE mk~spras = 'E' AND mk~maktx LIKE :pname "
        "AND nt~spras = 'E' AND kd~kschl = 'DISC'",
        {"pname": "%green%"},
    )

    def fold(key: tuple, group: list[tuple]) -> tuple:
        profit = sum(
            _rev(g[2], g[3]) - g[4] * g[5] for g in group
        )
        return key + (profit,)

    grouped = group_aggregate(
        r3, rows.rows, lambda g: (g[0], g[1].year), fold
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (g[0], -g[1]), via_disk=False)
    return itab.rows


def q10(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT cu~kunnr cu~name1 cu~saldo nt~landx cu~stras cu~telf1 "
        "st~tdline p~netwr kd~kbetr "
        "FROM kna1 AS cu "
        "INNER JOIN vbak AS k ON k~kunnr = cu~kunnr "
        "INNER JOIN vbap AS p ON p~vbeln = k~vbeln "
        "INNER JOIN t005t AS nt ON nt~land1 = cu~land1 "
        "INNER JOIN stxl AS st ON st~tdname = cu~kunnr "
        "INNER JOIN konv AS kd ON kd~knumv = k~knumv "
        "AND kd~kposn = p~posnr "
        "WHERE k~audat >= :lo AND k~audat < :hi AND p~rkflg = 'R' "
        "AND nt~spras = 'E' AND st~tdobject = 'KNA1' "
        "AND kd~kschl = 'DISC'",
        {"lo": cm.Q10_LO, "hi": cm.Q10_HI},
    )

    def fold(key: tuple, group: list[tuple]) -> tuple:
        revenue = sum(_rev(g[7], g[8]) for g in group)
        return (KeyCodec.custkey(key[0]), key[1], revenue, key[2],
                key[3], key[4], key[5], key[6])

    grouped = group_aggregate(
        r3, rows.rows,
        lambda g: (g[0], g[1], g[2], g[3], g[4], g[5], g[6]), fold,
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[2],), via_disk=False)
    return itab.rows[:20]


def q11(r3: R3System, fraction: float) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT ia~matnr ie~netpr ie~avlqt "
        "FROM eina AS ia "
        "INNER JOIN eine AS ie ON ie~infnr = ia~infnr "
        "INNER JOIN lfa1 AS s ON s~lifnr = ia~lifnr "
        "INNER JOIN t005t AS nt ON nt~land1 = s~land1 "
        "WHERE nt~spras = 'E' AND nt~landx = 'GERMANY'"
    )
    # Manual unnesting: one pass computes the threshold, the grouped
    # pass filters against it.
    total = 0.0
    for _matnr, netpr, avlqt in rows.rows:
        r3.charge_abap(1)
        total += netpr * avlqt
    threshold = total * fraction
    grouped = group_aggregate(
        r3, rows.rows, lambda g: (g[0],),
        lambda key, group: key + (sum(g[1] * g[2] for g in group),),
    )
    kept = [
        (KeyCodec.partkey(matnr), value)
        for matnr, value in grouped if value > threshold
    ]
    itab = InternalTable(r3)
    itab.extend(kept)
    itab.sort(lambda g: (-g[1],), via_disk=False)
    return itab.rows


def q12(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT p~vsart k~prior "
        "FROM vbak AS k "
        "INNER JOIN vbap AS p ON p~vbeln = k~vbeln "
        "INNER JOIN vbep AS e ON e~vbeln = p~vbeln AND e~posnr = p~posnr "
        "WHERE p~vsart IN ('MAIL', 'SHIP') "
        "AND e~mbdat < e~lfdat AND e~edatu < e~mbdat "
        "AND e~lfdat >= :lo AND e~lfdat < :hi",
        {"lo": cm.Q12_LO, "hi": cm.Q12_HI},
    )

    def fold(key: tuple, group: list[tuple]) -> tuple:
        high = sum(
            1 for g in group if g[1] in ("1-URGENT", "2-HIGH")
        )
        return key + (high, len(group) - high)

    grouped = group_aggregate(r3, rows.rows, lambda g: (g[0],), fold)
    return sorted(grouped)


def q13(r3: R3System) -> list[tuple]:
    # Fully pushable: simple aggregates on single attributes.
    result = r3.open_sql.select(
        "SELECT prior COUNT( * ) SUM( netwr ) FROM vbak "
        "WHERE audat >= :lo AND audat < :hi AND netwr > :minval "
        "GROUP BY prior ORDER BY prior",
        {"lo": cm.Q13_LO, "hi": cm.Q13_HI, "minval": 250000.0},
    )
    return list(result.rows)


def q14(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT pa~mtart p~netwr kd~kbetr " + _L_JOIN
        + " INNER JOIN mara AS pa ON pa~matnr = p~matnr"
          " WHERE e~edatu >= :lo AND e~edatu < :hi AND kd~kschl = 'DISC'",
        {"lo": cm.Q14_LO, "hi": cm.Q14_HI},
    )
    promo = 0.0
    total = 0.0
    for mtart, netwr, kbetr in rows.rows:
        r3.charge_abap(1)
        revenue = _rev(netwr, kbetr)
        total += revenue
        if mtart.startswith("PROMO"):
            promo += revenue
    if total == 0.0:
        return [(None,)]
    return [(100.0 * promo / total,)]


def q15(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT p~lifnr p~netwr kd~kbetr " + _L_JOIN
        + " WHERE e~edatu >= :lo AND e~edatu < :hi AND kd~kschl = 'DISC'",
        {"lo": cm.Q15_LO, "hi": cm.Q15_HI},
    )
    grouped = group_aggregate(
        r3, rows.rows, lambda g: (g[0],),
        lambda key, group: key + (sum(_rev(g[1], g[2]) for g in group),),
    )
    if not grouped:
        return []
    best = max(value for _lifnr, value in grouped)
    out = []
    for lifnr, value in grouped:
        r3.charge_abap(1)
        if value == best:
            supplier = r3.open_sql.select_single(
                "SELECT SINGLE name1 stras telf1 FROM lfa1 "
                "WHERE lifnr = :lifnr",
                {"lifnr": lifnr},
            )
            assert supplier is not None
            out.append((
                KeyCodec.suppkey(lifnr), supplier[0], supplier[1],
                supplier[2], value,
            ))
    return sorted(out)


def q16(r3: R3System) -> list[tuple]:
    complaints = r3.open_sql.select(
        "SELECT tdname FROM stxl WHERE tdobject = 'LFA1' "
        "AND tdline LIKE :pat",
        {"pat": "%Customer%Complaints%"},
    )
    complaint_tab = InternalTable(r3)
    complaint_tab.extend(complaints.rows)
    complaint_tab.sort(lambda row: (row[0],))

    rows = r3.open_sql.select(
        "SELECT pa~extwg pa~mtart a~atflv ia~lifnr "
        "FROM eina AS ia "
        "INNER JOIN mara AS pa ON pa~matnr = ia~matnr "
        "INNER JOIN ausp AS a ON a~objek = pa~matnr "
        "WHERE a~atinn = 'SIZE' AND pa~extwg <> 'Brand#45' "
        "AND pa~mtart NOT LIKE :ptype "
        "AND a~atflv IN (49, 14, 23, 45, 19, 3, 36, 9)",
        {"ptype": "MEDIUM POLISHED%"},
    )
    groups: dict[tuple, set] = {}
    itab = InternalTable(r3)
    for row in rows.rows:
        itab.extract(row)
    itab.sort(lambda g: (g[0], g[1], g[2]))
    for extwg, mtart, atflv, lifnr in itab.rows:
        r3.charge_abap(1)
        if complaint_tab.read_binary((lifnr,)) is not None:
            continue
        groups.setdefault((extwg, mtart, atflv), set()).add(lifnr)
    out = [
        (extwg, mtart, int(atflv), len(lifnrs))
        for (extwg, mtart, atflv), lifnrs in groups.items()
    ]
    result = InternalTable(r3)
    result.extend(out)
    result.sort(lambda g: (-g[3], g[0], g[1], g[2]), via_disk=False)
    return result.rows


def q17(r3: R3System) -> list[tuple]:
    rows = r3.open_sql.select(
        "SELECT p~matnr p~kwmeng p~netwr "
        "FROM vbap AS p "
        "INNER JOIN mara AS pa ON pa~matnr = p~matnr "
        "WHERE pa~extwg = 'Brand#23' AND pa~magrv = :container",
        {"container": "MED BOX"},
    )
    averages: dict[str, float] = {}
    total = 0.0
    any_row = False
    for matnr, kwmeng, netwr in rows.rows:
        r3.charge_abap(1)
        if matnr not in averages:
            avg_row = r3.open_sql.select(
                "SELECT AVG( kwmeng ) FROM vbap WHERE matnr = :matnr",
                {"matnr": matnr},
            ).first()
            averages[matnr] = avg_row[0] if avg_row else 0.0
        if kwmeng < 0.2 * averages[matnr]:
            total += netwr
            any_row = True
    return [(total / 7.0 if any_row else None,)]


def make_queries(scale_factor: float):
    """{number: fn(r3) -> rows} for the Open SQL 3.0 suite."""
    q11_fraction = 0.0001 / scale_factor
    queries = {n: globals()[f"q{n}"] for n in range(1, 18) if n != 11}
    queries[11] = lambda r3: q11(r3, q11_fraction)
    return queries
