"""Native SQL (EXEC SQL) reports, Release 3.0E.

With KONV converted to a transparent table, every query pushes
completely down to the RDBMS: the reports are single EXEC SQL
statements over the SAP schema (note how the vertical partitioning
turns every TPC-D n-way join into a much wider join).  The only ABAP
work left is presentation: converting SAP string keys back to the
TPC-D integer keys.

These reports are "unsafe, non-portable" in the paper's sense: they
hard-code the MANDT client predicate and rely on the back end's SQL
dialect.
"""

from __future__ import annotations

from repro.r3.appserver import R3System
from repro.reports.common import KeyCodec


def _m(client: str, *aliases: str) -> str:
    """The hand-written MANDT predicates a Native SQL author must add."""
    return " AND ".join(f"{alias}.mandt = '{client}'" for alias in aliases)


#: lineitem-cluster join fragments (vbap p / vbep e / vbak k / konv kd,kt)
_J_VBEP = "e.vbeln = p.vbeln AND e.posnr = p.posnr"
_J_VBAK = "k.vbeln = p.vbeln"
_J_KD = "kd.knumv = k.knumv AND kd.kposn = p.posnr AND kd.kschl = 'DISC'"
_J_KT = "kt.knumv = k.knumv AND kt.kposn = p.posnr AND kt.kschl = 'TAX'"

#: l_discount == -kd.kbetr/1000, so (1 - l_discount) == (1 + kd.kbetr/1000)
_REV = "p.netwr * (1 + kd.kbetr / 1000)"


def q1(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.rkflg, p.gbsta,
               SUM(p.kwmeng) AS sum_qty,
               SUM(p.netwr) AS sum_base_price,
               SUM({_REV}) AS sum_disc_price,
               SUM({_REV} * (1 + kt.kbetr / 1000)) AS sum_charge,
               AVG(p.kwmeng) AS avg_qty,
               AVG(p.netwr) AS avg_price,
               AVG(0 - kd.kbetr / 1000) AS avg_disc,
               COUNT(*) AS count_order
        FROM vbap p, vbep e, vbak k, konv kd, konv kt
        WHERE {_m(c, 'p', 'e', 'k', 'kd', 'kt')}
          AND {_J_VBEP} AND {_J_VBAK} AND {_J_KD} AND {_J_KT}
          AND e.edatu <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY p.rkflg, p.gbsta
        ORDER BY p.rkflg, p.gbsta
    """)
    return list(result.rows)


def q2(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT s.saldo, s.name1, nt.landx, p.matnr, p.mfrpn, s.stras,
               s.telf1, st.tdline
        FROM mara p, ausp a, eina ia, eine ie, lfa1 s, t005 n, t005t nt,
             t005u r, stxl st
        WHERE {_m(c, 'p', 'a', 'ia', 'ie', 's', 'n', 'nt', 'r', 'st')}
          AND a.objek = p.matnr AND a.atinn = 'SIZE' AND a.atflv = 15
          AND p.mtart LIKE '%BRASS'
          AND ia.matnr = p.matnr AND ie.infnr = ia.infnr
          AND s.lifnr = ia.lifnr AND n.land1 = s.land1
          AND nt.land1 = n.land1 AND nt.spras = 'E'
          AND r.regio = n.regio AND r.spras = 'E' AND r.bezei = 'EUROPE'
          AND st.tdobject = 'LFA1' AND st.tdname = s.lifnr
          AND ie.netpr = (
              SELECT MIN(ie2.netpr)
              FROM eina ia2, eine ie2, lfa1 s2, t005 n2, t005u r2
              WHERE {_m(c, 'ia2', 'ie2', 's2', 'n2', 'r2')}
                AND ia2.matnr = p.matnr AND ie2.infnr = ia2.infnr
                AND s2.lifnr = ia2.lifnr AND n2.land1 = s2.land1
                AND r2.regio = n2.regio AND r2.spras = 'E'
                AND r2.bezei = 'EUROPE')
        ORDER BY s.saldo DESC, nt.landx, s.name1, p.matnr
        LIMIT 100
    """)
    rows = []
    for row in result.rows:
        r3.charge_abap(1)
        rows.append(row[:3] + (KeyCodec.partkey(row[3]),) + row[4:])
    return rows


def q3(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.vbeln, SUM({_REV}) AS revenue, k.audat, k.sprio
        FROM kna1 cu, vbak k, vbap p, vbep e, konv kd
        WHERE {_m(c, 'cu', 'k', 'p', 'e', 'kd')}
          AND cu.brsch = 'BUILDING' AND cu.kunnr = k.kunnr
          AND {_J_VBAK} AND {_J_VBEP} AND {_J_KD}
          AND k.audat < DATE '1995-03-15' AND e.edatu > DATE '1995-03-15'
        GROUP BY p.vbeln, k.audat, k.sprio
        ORDER BY revenue DESC, k.audat
        LIMIT 10
    """)
    rows = []
    for row in result.rows:
        r3.charge_abap(1)
        rows.append((KeyCodec.orderkey(row[0]),) + row[1:])
    return rows


def q4(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT k.prior, COUNT(*) AS order_count
        FROM vbak k
        WHERE {_m(c, 'k')}
          AND k.audat >= DATE '1993-07-01' AND k.audat < DATE '1993-10-01'
          AND EXISTS (SELECT * FROM vbap p, vbep e
                      WHERE {_m(c, 'p', 'e')}
                        AND p.vbeln = k.vbeln AND {_J_VBEP}
                        AND e.mbdat < e.lfdat)
        GROUP BY k.prior
        ORDER BY k.prior
    """)
    return list(result.rows)


def q5(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT nt.landx, SUM({_REV}) AS revenue
        FROM kna1 cu, vbak k, vbap p, lfa1 s, t005 n, t005t nt, t005u r,
             konv kd
        WHERE {_m(c, 'cu', 'k', 'p', 's', 'n', 'nt', 'r', 'kd')}
          AND cu.kunnr = k.kunnr AND {_J_VBAK} AND p.lifnr = s.lifnr
          AND cu.land1 = s.land1 AND s.land1 = n.land1
          AND nt.land1 = n.land1 AND nt.spras = 'E'
          AND r.regio = n.regio AND r.spras = 'E' AND r.bezei = 'ASIA'
          AND k.audat >= DATE '1994-01-01' AND k.audat < DATE '1995-01-01'
          AND {_J_KD}
        GROUP BY nt.landx
        ORDER BY revenue DESC
    """)
    return list(result.rows)


def q6(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT SUM(p.netwr * (0 - kd.kbetr / 1000)) AS revenue
        FROM vbap p, vbep e, vbak k, konv kd
        WHERE {_m(c, 'p', 'e', 'k', 'kd')}
          AND {_J_VBEP} AND {_J_VBAK} AND {_J_KD}
          AND e.edatu >= DATE '1994-01-01' AND e.edatu < DATE '1995-01-01'
          AND kd.kbetr >= -70 AND kd.kbetr <= -50
          AND p.kwmeng < 24
    """)
    return list(result.rows)


def q7(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT nt1.landx AS supp_nation, nt2.landx AS cust_nation,
               EXTRACT(YEAR FROM e.edatu) AS l_year,
               SUM({_REV}) AS revenue
        FROM lfa1 s, vbap p, vbep e, vbak k, kna1 cu, t005t nt1,
             t005t nt2, konv kd
        WHERE {_m(c, 's', 'p', 'e', 'k', 'cu', 'nt1', 'nt2', 'kd')}
          AND s.lifnr = p.lifnr AND {_J_VBAK} AND {_J_VBEP}
          AND cu.kunnr = k.kunnr
          AND nt1.land1 = s.land1 AND nt1.spras = 'E'
          AND nt2.land1 = cu.land1 AND nt2.spras = 'E'
          AND ((nt1.landx = 'FRANCE' AND nt2.landx = 'GERMANY')
               OR (nt1.landx = 'GERMANY' AND nt2.landx = 'FRANCE'))
          AND e.edatu BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
          AND {_J_KD}
        GROUP BY nt1.landx, nt2.landx, EXTRACT(YEAR FROM e.edatu)
        ORDER BY supp_nation, cust_nation, l_year
    """)
    return list(result.rows)


def q8(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT EXTRACT(YEAR FROM k.audat) AS o_year,
               SUM(CASE WHEN nts.landx = 'BRAZIL' THEN {_REV}
                        ELSE 0 END) / SUM({_REV}) AS mkt_share
        FROM mara pa, lfa1 s, vbap p, vbak k, kna1 cu, t005 nc, t005u r,
             t005t nts, konv kd
        WHERE {_m(c, 'pa', 's', 'p', 'k', 'cu', 'nc', 'r', 'nts', 'kd')}
          AND pa.matnr = p.matnr AND s.lifnr = p.lifnr AND {_J_VBAK}
          AND cu.kunnr = k.kunnr AND nc.land1 = cu.land1
          AND r.regio = nc.regio AND r.spras = 'E' AND r.bezei = 'AMERICA'
          AND nts.land1 = s.land1 AND nts.spras = 'E'
          AND k.audat BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
          AND pa.mtart = 'ECONOMY ANODIZED STEEL'
          AND {_J_KD}
        GROUP BY EXTRACT(YEAR FROM k.audat)
        ORDER BY o_year
    """)
    return list(result.rows)


def q9(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT nt.landx AS nation, EXTRACT(YEAR FROM k.audat) AS o_year,
               SUM({_REV} - ie.netpr * p.kwmeng) AS sum_profit
        FROM mara pa, makt mk, lfa1 s, vbap p, eina ia, eine ie, vbak k,
             t005t nt, konv kd
        WHERE {_m(c, 'pa', 'mk', 's', 'p', 'ia', 'ie', 'k', 'nt', 'kd')}
          AND s.lifnr = p.lifnr AND ia.matnr = p.matnr
          AND ia.lifnr = p.lifnr AND ie.infnr = ia.infnr
          AND pa.matnr = p.matnr AND mk.matnr = pa.matnr
          AND mk.spras = 'E' AND {_J_VBAK}
          AND nt.land1 = s.land1 AND nt.spras = 'E'
          AND mk.maktx LIKE '%green%'
          AND {_J_KD}
        GROUP BY nt.landx, EXTRACT(YEAR FROM k.audat)
        ORDER BY nation, o_year DESC
    """)
    return list(result.rows)


def q10(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT cu.kunnr, cu.name1, SUM({_REV}) AS revenue, cu.saldo,
               nt.landx, cu.stras, cu.telf1, st.tdline
        FROM kna1 cu, vbak k, vbap p, t005t nt, stxl st, konv kd
        WHERE {_m(c, 'cu', 'k', 'p', 'nt', 'st', 'kd')}
          AND cu.kunnr = k.kunnr AND {_J_VBAK}
          AND k.audat >= DATE '1993-10-01' AND k.audat < DATE '1994-01-01'
          AND p.rkflg = 'R'
          AND nt.land1 = cu.land1 AND nt.spras = 'E'
          AND st.tdobject = 'KNA1' AND st.tdname = cu.kunnr
          AND {_J_KD}
        GROUP BY cu.kunnr, cu.name1, cu.saldo, cu.telf1, nt.landx,
                 cu.stras, st.tdline
        ORDER BY revenue DESC
        LIMIT 20
    """)
    rows = []
    for row in result.rows:
        r3.charge_abap(1)
        rows.append((KeyCodec.custkey(row[0]),) + row[1:])
    return rows


def q11(r3: R3System, fraction: float) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT ia.matnr, SUM(ie.netpr * ie.avlqt) AS value
        FROM eina ia, eine ie, lfa1 s, t005t nt
        WHERE {_m(c, 'ia', 'ie', 's', 'nt')}
          AND ie.infnr = ia.infnr AND s.lifnr = ia.lifnr
          AND nt.land1 = s.land1 AND nt.spras = 'E'
          AND nt.landx = 'GERMANY'
        GROUP BY ia.matnr
        HAVING SUM(ie.netpr * ie.avlqt) > (
            SELECT SUM(ie2.netpr * ie2.avlqt) * {fraction}
            FROM eina ia2, eine ie2, lfa1 s2, t005t nt2
            WHERE {_m(c, 'ia2', 'ie2', 's2', 'nt2')}
              AND ie2.infnr = ia2.infnr AND s2.lifnr = ia2.lifnr
              AND nt2.land1 = s2.land1 AND nt2.spras = 'E'
              AND nt2.landx = 'GERMANY')
        ORDER BY value DESC
    """)
    rows = []
    for row in result.rows:
        r3.charge_abap(1)
        rows.append((KeyCodec.partkey(row[0]),) + row[1:])
    return rows


def q12(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.vsart,
               SUM(CASE WHEN k.prior = '1-URGENT' OR k.prior = '2-HIGH'
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN k.prior <> '1-URGENT'
                         AND k.prior <> '2-HIGH'
                        THEN 1 ELSE 0 END) AS low_line_count
        FROM vbak k, vbap p, vbep e
        WHERE {_m(c, 'k', 'p', 'e')}
          AND {_J_VBAK} AND {_J_VBEP}
          AND p.vsart IN ('MAIL', 'SHIP')
          AND e.mbdat < e.lfdat AND e.edatu < e.mbdat
          AND e.lfdat >= DATE '1994-01-01' AND e.lfdat < DATE '1995-01-01'
        GROUP BY p.vsart
        ORDER BY p.vsart
    """)
    return list(result.rows)


def q13(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT k.prior, COUNT(*) AS order_count,
               SUM(k.netwr) AS total_value
        FROM vbak k
        WHERE {_m(c, 'k')}
          AND k.audat >= DATE '1995-01-01' AND k.audat < DATE '1995-04-01'
          AND k.netwr > 250000
        GROUP BY k.prior
        ORDER BY k.prior
    """)
    return list(result.rows)


def q14(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT 100.00 * SUM(CASE WHEN pa.mtart LIKE 'PROMO%'
                                 THEN {_REV} ELSE 0 END)
               / SUM({_REV}) AS promo_revenue
        FROM vbap p, vbep e, vbak k, mara pa, konv kd
        WHERE {_m(c, 'p', 'e', 'k', 'pa', 'kd')}
          AND {_J_VBEP} AND {_J_VBAK} AND pa.matnr = p.matnr
          AND e.edatu >= DATE '1995-09-01' AND e.edatu < DATE '1995-10-01'
          AND {_J_KD}
    """)
    return list(result.rows)


def q15(r3: R3System) -> list[tuple]:
    c = r3.client
    view_sql = f"""
        SELECT p.lifnr AS supplier_no, SUM({_REV}) AS total_revenue
        FROM vbap p, vbep e, vbak k, konv kd
        WHERE {_m(c, 'p', 'e', 'k', 'kd')}
          AND {_J_VBEP} AND {_J_VBAK} AND {_J_KD}
          AND e.edatu >= DATE '1996-01-01' AND e.edatu < DATE '1996-04-01'
        GROUP BY p.lifnr
    """
    r3.db.create_view("wrevenue", view_sql)
    try:
        result = r3.native_sql.exec_sql(f"""
            SELECT s.lifnr, s.name1, s.stras, s.telf1, v.total_revenue
            FROM lfa1 s, wrevenue v
            WHERE {_m(c, 's')}
              AND s.lifnr = v.supplier_no
              AND v.total_revenue = (SELECT MAX(v2.total_revenue)
                                     FROM wrevenue v2)
            ORDER BY s.lifnr
        """)
    finally:
        r3.db.drop_view("wrevenue")
    rows = []
    for row in result.rows:
        r3.charge_abap(1)
        rows.append((KeyCodec.suppkey(row[0]),) + row[1:])
    return rows


def q16(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT pa.extwg, pa.mtart, a.atflv,
               COUNT(DISTINCT ia.lifnr) AS supplier_cnt
        FROM eina ia, mara pa, ausp a
        WHERE {_m(c, 'ia', 'pa', 'a')}
          AND pa.matnr = ia.matnr
          AND a.objek = pa.matnr AND a.atinn = 'SIZE'
          AND pa.extwg <> 'Brand#45'
          AND pa.mtart NOT LIKE 'MEDIUM POLISHED%'
          AND a.atflv IN (49, 14, 23, 45, 19, 3, 36, 9)
          AND ia.lifnr NOT IN (SELECT st.tdname FROM stxl st
                               WHERE st.mandt = '{c}'
                                 AND st.tdobject = 'LFA1'
                                 AND st.tdline LIKE '%Customer%Complaints%')
        GROUP BY pa.extwg, pa.mtart, a.atflv
        ORDER BY supplier_cnt DESC, pa.extwg, pa.mtart, a.atflv
    """)
    rows = []
    for row in result.rows:
        r3.charge_abap(1)
        rows.append(row[:2] + (int(row[2]), row[3]))
    return rows


def q17(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT SUM(p.netwr) / 7.0 AS avg_yearly
        FROM vbap p, mara pa
        WHERE {_m(c, 'p', 'pa')}
          AND pa.matnr = p.matnr
          AND pa.extwg = 'Brand#23' AND pa.magrv = 'MED BOX'
          AND p.kwmeng < (SELECT 0.2 * AVG(p2.kwmeng) FROM vbap p2
                          WHERE p2.mandt = '{c}'
                            AND p2.matnr = pa.matnr)
    """)
    return list(result.rows)


def make_queries(scale_factor: float):
    """{number: fn(r3) -> rows} for the Native SQL 3.0 suite."""
    q11_fraction = 0.0001 / scale_factor
    queries = {n: globals()[f"q{n}"] for n in range(1, 18) if n != 11}
    queries[11] = lambda r3: q11(r3, q11_fraction)
    return queries
