"""Shared pieces of the SAP-side reports."""

from __future__ import annotations

import datetime

from repro.r3.appserver import R3System
from repro.sapschema.mapping import KeyCodec

#: TPC-D parameter dates used by several reports
Q1_MAX_SHIPDATE = datetime.date(1998, 12, 1) - datetime.timedelta(days=90)
Q3_DATE = datetime.date(1995, 3, 15)
Q4_LO = datetime.date(1993, 7, 1)
Q4_HI = datetime.date(1993, 10, 1)
Q5_LO = datetime.date(1994, 1, 1)
Q5_HI = datetime.date(1995, 1, 1)
Q6_LO = datetime.date(1994, 1, 1)
Q6_HI = datetime.date(1995, 1, 1)
Q7_LO = datetime.date(1995, 1, 1)
Q7_HI = datetime.date(1996, 12, 31)
Q10_LO = datetime.date(1993, 10, 1)
Q10_HI = datetime.date(1994, 1, 1)
Q12_LO = datetime.date(1994, 1, 1)
Q12_HI = datetime.date(1995, 1, 1)
Q13_LO = datetime.date(1995, 1, 1)
Q13_HI = datetime.date(1995, 4, 1)
Q14_LO = datetime.date(1995, 9, 1)
Q14_HI = datetime.date(1995, 10, 1)
Q15_LO = datetime.date(1996, 1, 1)
Q15_HI = datetime.date(1996, 4, 1)


def discount_of(kbetr: float) -> float:
    """KONV 'DISC' rate (negative per-mille) -> l_discount."""
    return -kbetr / 1000.0


def tax_of(kbetr: float) -> float:
    """KONV 'TAX' rate (per-mille) -> l_tax."""
    return kbetr / 1000.0


class KonvLookup:
    """Per-order pricing-condition fetch with a one-document memo.

    Reports that loop over lineitems grouped by order fetch each
    order's KONV conditions once; the lookup goes through Open SQL, so
    in 2.2 it decodes the cluster and in 3.0 it probes the transparent
    table — exactly the paper's two regimes.
    """

    def __init__(self, r3: R3System) -> None:
        self._r3 = r3
        self._knumv: str | None = None
        self._by_position: dict[str, dict[str, float]] = {}

    def conditions(self, knumv: str) -> dict[str, dict[str, float]]:
        """posnr -> {'disc': ..., 'tax': ...} for one pricing document."""
        if knumv != self._knumv:
            with self._r3.tracer.span("report.konv_fetch", knumv=knumv):
                result = self._r3.open_sql.select(
                    "SELECT kposn kschl kbetr FROM konv WHERE knumv = :knumv",
                    {"knumv": knumv},
                )
            table: dict[str, dict[str, float]] = {}
            for kposn, kschl, kbetr in result.rows:
                entry = table.setdefault(kposn, {})
                if kschl == "DISC":
                    entry["disc"] = discount_of(kbetr)
                elif kschl == "TAX":
                    entry["tax"] = tax_of(kbetr)
            self._knumv = knumv
            self._by_position = table
        return self._by_position

    def disc(self, knumv: str, posnr: str) -> float:
        return self.conditions(knumv)[posnr]["disc"]

    def tax(self, knumv: str, posnr: str) -> float:
        return self.conditions(knumv)[posnr]["tax"]


def nation_names(r3: R3System) -> dict[str, str]:
    """land1 -> nation name (via the country join view)."""
    result = r3.open_sql.select("SELECT land1 landx FROM wt005tx")
    return {land1: landx for land1, landx in result.rows}


def nation_regions(r3: R3System) -> dict[str, str]:
    """land1 -> regio."""
    result = r3.open_sql.select("SELECT land1 regio FROM t005")
    return {land1: regio for land1, regio in result.rows}


def region_by_name(r3: R3System, name: str) -> str | None:
    """region name -> regio key."""
    result = r3.open_sql.select(
        "SELECT regio FROM t005u WHERE bezei = :name", {"name": name}
    )
    row = result.first()
    return row[0] if row else None


def nations_in_region(r3: R3System, region_name: str) -> dict[str, str]:
    """land1 -> nation name, restricted to one region."""
    regio = region_by_name(r3, region_name)
    names = nation_names(r3)
    regions = nation_regions(r3)
    return {
        land1: name for land1, name in names.items()
        if regions.get(land1) == regio
    }


def supplier_comment_map(r3: R3System, lifnrs: list[str]) -> dict[str, str]:
    """lifnr -> s_comment via STXL single-record probes."""
    out: dict[str, str] = {}
    with r3.tracer.span("report.comment_probes", kind="supplier",
                        probes=len(lifnrs)):
        for lifnr in lifnrs:
            row = r3.open_sql.select_single(
                "SELECT SINGLE tdline FROM stxl WHERE tdobject = 'LFA1' "
                "AND tdname = :name",
                {"name": lifnr},
            )
            out[lifnr] = row[0] if row else ""
    return out


def customer_comment_map(r3: R3System, kunnrs: list[str]) -> dict[str, str]:
    out: dict[str, str] = {}
    with r3.tracer.span("report.comment_probes", kind="customer",
                        probes=len(kunnrs)):
        for kunnr in kunnrs:
            row = r3.open_sql.select_single(
                "SELECT SINGLE tdline FROM stxl WHERE tdobject = 'KNA1' "
                "AND tdname = :name",
                {"name": kunnr},
            )
            out[kunnr] = row[0] if row else ""
    return out


def as_int_key(value: str) -> int:
    return int(value)


def round2(value: float) -> float:
    return round(value, 2)


__all__ = [
    "KeyCodec", "KonvLookup", "discount_of", "tax_of", "nation_names",
    "nation_regions", "region_by_name", "nations_in_region",
    "supplier_comment_map", "customer_comment_map", "as_int_key", "round2",
]
