"""Warehouse extraction reports (paper Table 9).

Thin alias: the implementation lives in :mod:`repro.warehouse.extract`
so the warehouse subsystem is self-contained; this module keeps the
per-variant report layout symmetric.
"""

from repro.warehouse.extract import (
    ExtractResult,
    extract_all,
    extract_customer,
    extract_lineitem,
    extract_nation,
    extract_orders,
    extract_part,
    extract_partsupp,
    extract_region,
    extract_supplier,
)

__all__ = [
    "ExtractResult", "extract_all", "extract_region", "extract_nation",
    "extract_supplier", "extract_part", "extract_partsupp",
    "extract_customer", "extract_orders", "extract_lineitem",
]
