"""Native SQL (EXEC SQL) reports, Release 2.2G.

In 2.2 KONV is a cluster table, invisible to EXEC SQL.  Queries that
need pricing conditions are therefore *broken down* (paper
Section 3.4.3): the transparent part runs as one EXEC SQL join —
ordered by document number for cluster locality — and the KONV part is
merged in the application server through per-document Open SQL cluster
reads, followed by EXTRACT/SORT grouping.  Queries that never touch
KONV are identical to their 3.0 counterparts.
"""

from __future__ import annotations

from repro.r3.abap import InternalTable, group_aggregate
from repro.r3.appserver import R3System
from repro.reports import native30
from repro.reports.common import KeyCodec, KonvLookup
from repro.reports.native30 import _J_VBAK, _J_VBEP, _m

# KONV-free queries: byte-identical to the 3.0 Native reports.
q2 = native30.q2
q4 = native30.q4
q11 = native30.q11
q12 = native30.q12
q13 = native30.q13
q16 = native30.q16
q17 = native30.q17


def q1(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.vbeln, p.posnr, p.kwmeng, p.netwr, p.rkflg, p.gbsta,
               k.knumv
        FROM vbap p, vbep e, vbak k
        WHERE {_m(c, 'p', 'e', 'k')} AND {_J_VBEP} AND {_J_VBAK}
          AND e.edatu <= DATE '1998-12-01' - INTERVAL '90' DAY
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for vbeln, posnr, kwmeng, netwr, rkflg, gbsta, knumv in result.rows:
        r3.charge_abap(1)
        conditions = konv.conditions(knumv)[posnr]
        records.append((rkflg, gbsta, kwmeng, netwr,
                        conditions["disc"], conditions["tax"]))

    def fold(key: tuple, group: list[tuple]) -> tuple:
        count = len(group)
        sum_qty = sum(g[2] for g in group)
        sum_base = sum(g[3] for g in group)
        sum_disc = sum(g[3] * (1 - g[4]) for g in group)
        sum_charge = sum(g[3] * (1 - g[4]) * (1 + g[5]) for g in group)
        avg_disc = sum(g[4] for g in group) / count
        return key + (sum_qty, sum_base, sum_disc, sum_charge,
                      sum_qty / count, sum_base / count, avg_disc, count)

    return sorted(group_aggregate(r3, records,
                                  lambda g: (g[0], g[1]), fold))


def q3(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.vbeln, p.posnr, p.netwr, k.audat, k.sprio, k.knumv
        FROM kna1 cu, vbak k, vbap p, vbep e
        WHERE {_m(c, 'cu', 'k', 'p', 'e')}
          AND cu.brsch = 'BUILDING' AND cu.kunnr = k.kunnr
          AND {_J_VBAK} AND {_J_VBEP}
          AND k.audat < DATE '1995-03-15' AND e.edatu > DATE '1995-03-15'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for vbeln, posnr, netwr, audat, sprio, knumv in result.rows:
        r3.charge_abap(1)
        revenue = netwr * (1 - konv.disc(knumv, posnr))
        records.append((vbeln, audat, sprio, revenue))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0], g[1], g[2]),
        lambda key, group: (KeyCodec.orderkey(key[0]),
                            sum(g[3] for g in group), key[1], key[2]),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[1], g[2]), via_disk=False)
    return itab.rows[:10]


def q5(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT nt.landx, p.netwr, p.vbeln, p.posnr, k.knumv
        FROM kna1 cu, vbak k, vbap p, lfa1 s, t005 n, t005t nt, t005u r
        WHERE {_m(c, 'cu', 'k', 'p', 's', 'n', 'nt', 'r')}
          AND cu.kunnr = k.kunnr AND {_J_VBAK} AND p.lifnr = s.lifnr
          AND cu.land1 = s.land1 AND s.land1 = n.land1
          AND nt.land1 = n.land1 AND nt.spras = 'E'
          AND r.regio = n.regio AND r.spras = 'E' AND r.bezei = 'ASIA'
          AND k.audat >= DATE '1994-01-01' AND k.audat < DATE '1995-01-01'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for landx, netwr, vbeln, posnr, knumv in result.rows:
        r3.charge_abap(1)
        records.append((landx, netwr * (1 - konv.disc(knumv, posnr))))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0],),
        lambda key, group: key + (sum(g[1] for g in group),),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[1],), via_disk=False)
    return itab.rows


def q6(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.vbeln, p.posnr, p.netwr, k.knumv
        FROM vbap p, vbep e, vbak k
        WHERE {_m(c, 'p', 'e', 'k')} AND {_J_VBEP} AND {_J_VBAK}
          AND e.edatu >= DATE '1994-01-01' AND e.edatu < DATE '1995-01-01'
          AND p.kwmeng < 24
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    total = 0.0
    any_row = False
    for vbeln, posnr, netwr, knumv in result.rows:
        r3.charge_abap(1)
        disc = konv.disc(knumv, posnr)
        if 0.05 <= disc <= 0.07:
            total += netwr * disc
            any_row = True
    return [(total if any_row else None,)]


def q7(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT nt1.landx, nt2.landx, e.edatu, p.netwr, p.vbeln, p.posnr,
               k.knumv
        FROM lfa1 s, vbap p, vbep e, vbak k, kna1 cu, t005t nt1, t005t nt2
        WHERE {_m(c, 's', 'p', 'e', 'k', 'cu', 'nt1', 'nt2')}
          AND s.lifnr = p.lifnr AND {_J_VBAK} AND {_J_VBEP}
          AND cu.kunnr = k.kunnr
          AND nt1.land1 = s.land1 AND nt1.spras = 'E'
          AND nt2.land1 = cu.land1 AND nt2.spras = 'E'
          AND ((nt1.landx = 'FRANCE' AND nt2.landx = 'GERMANY')
               OR (nt1.landx = 'GERMANY' AND nt2.landx = 'FRANCE'))
          AND e.edatu BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for supp, cust, edatu, netwr, vbeln, posnr, knumv in result.rows:
        r3.charge_abap(1)
        records.append((supp, cust, edatu.year,
                        netwr * (1 - konv.disc(knumv, posnr))))
    return sorted(group_aggregate(
        r3, records, lambda g: (g[0], g[1], g[2]),
        lambda key, group: key + (sum(g[3] for g in group),),
    ))


def q8(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT k.audat, nts.landx, p.netwr, p.vbeln, p.posnr, k.knumv
        FROM mara pa, lfa1 s, vbap p, vbak k, kna1 cu, t005 nc, t005u r,
             t005t nts
        WHERE {_m(c, 'pa', 's', 'p', 'k', 'cu', 'nc', 'r', 'nts')}
          AND pa.matnr = p.matnr AND s.lifnr = p.lifnr AND {_J_VBAK}
          AND cu.kunnr = k.kunnr AND nc.land1 = cu.land1
          AND r.regio = nc.regio AND r.spras = 'E' AND r.bezei = 'AMERICA'
          AND nts.land1 = s.land1 AND nts.spras = 'E'
          AND k.audat BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
          AND pa.mtart = 'ECONOMY ANODIZED STEEL'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for audat, landx, netwr, vbeln, posnr, knumv in result.rows:
        r3.charge_abap(1)
        records.append((audat.year, landx,
                        netwr * (1 - konv.disc(knumv, posnr))))

    def fold(key: tuple, group: list[tuple]) -> tuple:
        total = sum(g[2] for g in group)
        brazil = sum(g[2] for g in group if g[1] == "BRAZIL")
        return key + (brazil / total,)

    return sorted(group_aggregate(r3, records, lambda g: (g[0],), fold))


def q9(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT nt.landx, k.audat, p.netwr, p.kwmeng, ie.netpr, p.vbeln,
               p.posnr, k.knumv
        FROM mara pa, makt mk, lfa1 s, vbap p, eina ia, eine ie, vbak k,
             t005t nt
        WHERE {_m(c, 'pa', 'mk', 's', 'p', 'ia', 'ie', 'k', 'nt')}
          AND s.lifnr = p.lifnr AND ia.matnr = p.matnr
          AND ia.lifnr = p.lifnr AND ie.infnr = ia.infnr
          AND pa.matnr = p.matnr AND mk.matnr = pa.matnr
          AND mk.spras = 'E' AND {_J_VBAK}
          AND nt.land1 = s.land1 AND nt.spras = 'E'
          AND mk.maktx LIKE '%green%'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for landx, audat, netwr, kwmeng, netpr, vbeln, posnr, knumv \
            in result.rows:
        r3.charge_abap(1)
        profit = netwr * (1 - konv.disc(knumv, posnr)) - netpr * kwmeng
        records.append((landx, audat.year, profit))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0], g[1]),
        lambda key, group: key + (sum(g[2] for g in group),),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (g[0], -g[1]), via_disk=False)
    return itab.rows


def q10(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT cu.kunnr, cu.name1, cu.saldo, nt.landx, cu.stras,
               cu.telf1, st.tdline, p.netwr, p.vbeln, p.posnr, k.knumv
        FROM kna1 cu, vbak k, vbap p, t005t nt, stxl st
        WHERE {_m(c, 'cu', 'k', 'p', 'nt', 'st')}
          AND cu.kunnr = k.kunnr AND {_J_VBAK}
          AND k.audat >= DATE '1993-10-01' AND k.audat < DATE '1994-01-01'
          AND p.rkflg = 'R'
          AND nt.land1 = cu.land1 AND nt.spras = 'E'
          AND st.tdobject = 'KNA1' AND st.tdname = cu.kunnr
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for (kunnr, name1, saldo, landx, stras, telf1, tdline, netwr,
         vbeln, posnr, knumv) in result.rows:
        r3.charge_abap(1)
        revenue = netwr * (1 - konv.disc(knumv, posnr))
        records.append((kunnr, name1, saldo, landx, stras, telf1,
                        tdline, revenue))
    grouped = group_aggregate(
        r3, records,
        lambda g: (g[0], g[1], g[2], g[3], g[4], g[5], g[6]),
        lambda key, group: (
            KeyCodec.custkey(key[0]), key[1],
            sum(g[7] for g in group), key[2], key[3], key[4], key[5],
            key[6],
        ),
    )
    itab = InternalTable(r3)
    itab.extend(grouped)
    itab.sort(lambda g: (-g[2],), via_disk=False)
    return itab.rows[:20]


def q14(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT pa.mtart, p.netwr, p.vbeln, p.posnr, k.knumv
        FROM vbap p, vbep e, vbak k, mara pa
        WHERE {_m(c, 'p', 'e', 'k', 'pa')}
          AND {_J_VBEP} AND {_J_VBAK} AND pa.matnr = p.matnr
          AND e.edatu >= DATE '1995-09-01' AND e.edatu < DATE '1995-10-01'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    promo = total = 0.0
    any_row = False
    for mtart, netwr, vbeln, posnr, knumv in result.rows:
        r3.charge_abap(1)
        revenue = netwr * (1 - konv.disc(knumv, posnr))
        total += revenue
        any_row = True
        if mtart.startswith("PROMO"):
            promo += revenue
    if not any_row or total == 0.0:
        return [(None,)]
    return [(100.0 * promo / total,)]


def q15(r3: R3System) -> list[tuple]:
    c = r3.client
    result = r3.native_sql.exec_sql(f"""
        SELECT p.lifnr, p.netwr, p.vbeln, p.posnr, k.knumv
        FROM vbap p, vbep e, vbak k
        WHERE {_m(c, 'p', 'e', 'k')} AND {_J_VBEP} AND {_J_VBAK}
          AND e.edatu >= DATE '1996-01-01' AND e.edatu < DATE '1996-04-01'
        ORDER BY p.vbeln
    """)
    konv = KonvLookup(r3)
    records = []
    for lifnr, netwr, vbeln, posnr, knumv in result.rows:
        r3.charge_abap(1)
        records.append((lifnr, netwr * (1 - konv.disc(knumv, posnr))))
    grouped = group_aggregate(
        r3, records, lambda g: (g[0],),
        lambda key, group: key + (sum(g[1] for g in group),),
    )
    if not grouped:
        return []
    best = max(value for _l, value in grouped)
    out = []
    for lifnr, value in grouped:
        r3.charge_abap(1)
        if value == best:
            supplier = r3.native_sql.exec_sql(f"""
                SELECT s.name1, s.stras, s.telf1 FROM lfa1 s
                WHERE {_m(c, 's')} AND s.lifnr = '{lifnr}'
            """).rows[0]
            out.append((KeyCodec.suppkey(lifnr),) + supplier + (value,))
    return sorted(out)


def make_queries(scale_factor: float):
    """{number: fn(r3) -> rows} for the Native SQL 2.2 suite."""
    q11_fraction = 0.0001 / scale_factor
    queries = {n: globals()[f"q{n}"] for n in range(1, 18) if n != 11}
    queries[11] = lambda r3: q11(r3, q11_fraction)
    return queries
