"""TPC-D report implementations for every variant the paper measures.

* :mod:`repro.reports.rdbms`    — standard SQL on the original schema
* :mod:`repro.reports.native30` — EXEC SQL on the SAP schema, Release 3.0E
* :mod:`repro.reports.open30`   — Open SQL reports, Release 3.0E
* :mod:`repro.reports.native22` — EXEC SQL + KONV cluster loops, 2.2G
* :mod:`repro.reports.open22`   — Open SQL nested-loop reports, 2.2G
* :mod:`repro.reports.updatefuncs` — UF1/UF2 via batch input
* :mod:`repro.reports.warehouse`   — Table 9 extraction reports

Every implementation of a query returns the same logical rows as the
RDBMS baseline (validated by the test suite), in the representation of
the original TPC-D schema (integer keys, plain column values).
"""
