"""``python -m repro lint`` — the analyzer's command-line entry.

Exit status is the CI contract: 0 when every finding is baselined (or
none exist), 1 when a new, non-baselined finding appears, 2 when the
baseline itself is missing or unreadable (a configuration error must
never masquerade as a clean — or failed — lint).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, default_baseline_path
from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import analyze_paths
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import run_rules


def default_lint_paths() -> list[Path]:
    """The report sources the analyzer was built for."""
    import repro.reports

    return [Path(repro.reports.__file__).resolve().parent]


def run_lint(paths: list[str | Path] | None = None,
             output_format: str = "text",
             baseline_path: str | Path | None = None,
             use_baseline: bool = True,
             write_baseline: bool = False,
             scale: float = 1.0,
             emit=print) -> int:
    """Analyze ``paths`` and render findings; returns the exit status."""
    targets = [Path(p) for p in paths] if paths else default_lint_paths()
    analyses = analyze_paths(targets)
    schema = SchemaInfo(scale_factor=scale)
    findings = run_rules(analyses, schema)

    resolved_baseline = Path(baseline_path) if baseline_path \
        else default_baseline_path()
    if write_baseline:
        Baseline.from_findings(findings).save(resolved_baseline)
        emit(f"wrote {len(findings)} finding key(s) to "
             f"{resolved_baseline}")
        return 0

    baseline = Baseline()
    if use_baseline:
        if not resolved_baseline.exists():
            print(
                f"lint: baseline file {resolved_baseline} is missing — "
                f"run `python -m repro lint --write-baseline` to create "
                f"it, or pass --no-baseline to lint without one",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = Baseline.load(resolved_baseline)
        except (OSError, ValueError, AttributeError) as exc:
            print(
                f"lint: baseline file {resolved_baseline} is unreadable "
                f"({exc}) — fix or regenerate it with "
                f"`python -m repro lint --write-baseline`",
                file=sys.stderr,
            )
            return 2
    fresh = baseline.apply(findings)

    if output_format == "json":
        emit(render_json(findings))
    else:
        emit(render_text(findings))
    return 1 if fresh else 0


def run_lint_command(args) -> int:
    """Adapter for the ``python -m repro`` argument namespace."""
    return run_lint(
        paths=args.paths or None,
        output_format=args.format,
        baseline_path=args.baseline,
        use_baseline=not args.no_baseline,
        write_baseline=args.write_baseline,
        scale=args.lint_scale,
    )
