"""Static performance analysis of the Open SQL report sources.

``repro.analysis`` inspects the report code in ``repro.reports``
*without executing it*: a Python-``ast`` extractor finds every
``open_sql.select`` / ``select_single`` / ``exec_sql`` call site
(with its loop nesting and memoization wrappers), parses the embedded
statements with the existing Open SQL / engine SQL parsers, and
cross-checks them against the data dictionary to emit ranked findings
— the paper's anti-patterns, detected before a single row is read.

Pipeline: extractor → rules → cost model → baseline → report.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cli import run_lint
from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import analyze_paths
from repro.analysis.rules import Finding, RULES, run_rules

__all__ = [
    "Baseline", "Finding", "RULES", "SchemaInfo", "analyze_paths",
    "run_lint", "run_rules",
]
