"""Call-site extraction from report sources via the Python ``ast``.

The extractor reads report modules *as text* and finds every database
access — ``open_sql.select`` / ``open_sql.select_single`` /
``native_sql.exec_sql`` — together with the context the rules need:

* the enclosing loop nesting (and, where the loop iterates a SELECT
  result, a link to that statement so cardinalities compose),
* memoization guards (``if key not in cache:`` / ``if x != self._x:``)
  and module-local memo wrapper classes (``_VbakMemo`` and friends),
* the embedded statement text, resolved through module-level string
  constants and f-string concatenation, parsed with
  :func:`repro.r3.opensql.parser.parse_open_sql`,
* ABAP-side grouping idioms (``group_aggregate`` — the EXTRACT/SORT/
  LOOP AT END figure) and :class:`~repro.reports.common.KonvLookup`
  cluster probes.

Nothing is imported or executed from the analyzed modules.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.r3.errors import OpenSqlError
from repro.r3.opensql.ast import OSSelect
from repro.r3.opensql.parser import parse_open_sql

#: placeholder substituted for unresolvable f-string interpolations
DYNAMIC_MARKER = "dynfld"

_OPEN_SQL_METHODS = {"select", "select_single"}
_NATIVE_SQL_METHODS = {"exec_sql"}
_KONV_METHODS = {"conditions", "disc", "tax"}


@dataclass
class StatementSite:
    """One database call site in a report source."""

    path: str
    module: str
    line: int
    func: str
    api: str  # 'select' | 'select_single' | 'exec_sql'
    sql: str | None
    dynamic: bool
    host_vars: tuple[str, ...]
    loop_depth: int
    memoized: bool
    #: enclosing loops' data sources, outermost first (None = unknown)
    outer: tuple["StatementSite | None", ...] = ()
    var_name: str | None = None
    stmt: OSSelect | None = None
    parse_error: str | None = None
    #: whitespace-normalised source text of the SQL argument — a
    #: position-independent identity for statements whose text cannot
    #: be resolved statically (baseline keys must survive line drift)
    sql_src: str | None = None


@dataclass
class IdiomSite:
    """A non-SQL anti-pattern site: ABAP grouping or a memo wrapper."""

    path: str
    module: str
    line: int
    func: str
    kind: str  # 'group_aggregate' | 'wrapper_call' | 'konv_lookup'
    #       | 'abap_sort'
    loop_depth: int
    memoized: bool
    outer: tuple["StatementSite | None", ...] = ()
    source: StatementSite | None = None
    simple_fold: bool = False
    detail: str = ""


@dataclass
class ModuleAnalysis:
    """Everything extracted from one report module."""

    path: str
    module: str
    release: str | None  # '2.2' | '3.0' | None
    sites: list[StatementSite] = field(default_factory=list)
    idioms: list[IdiomSite] = field(default_factory=list)


def infer_release(module: str) -> str | None:
    """R/3 release a report family targets, from its module name."""
    if "22" in module:
        return "2.2"
    if "30" in module or module in ("rdbms", "warehouse", "updatefuncs"):
        return "3.0"
    return None


# -- string resolution -----------------------------------------------------


def _resolve_str(node: ast.expr,
                 env: dict[str, str]) -> tuple[str | None, bool]:
    """Resolve an expression to SQL text: (text, had_dynamic_parts).

    Module-level constants and concatenation resolve exactly;
    f-string interpolations become :data:`DYNAMIC_MARKER`; anything
    else (calls, attributes) makes the whole text unresolvable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id], False
        return None, True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left, left_dyn = _resolve_str(node.left, env)
        right, right_dyn = _resolve_str(node.right, env)
        if left is None or right is None:
            return None, True
        return left + right, left_dyn or right_dyn
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        dynamic = False
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            elif isinstance(value, ast.FormattedValue):
                if value.conversion != -1 or value.format_spec is not None:
                    # A conversion (!r) or format spec (:>8) changes the
                    # interpolated text in ways we do not model; the
                    # resolved value would be wrong, so keep the marker.
                    parts.append(DYNAMIC_MARKER)
                    dynamic = True
                    continue
                text, _dyn = _resolve_str(value.value, env)
                if text is not None:
                    parts.append(text)
                else:
                    parts.append(DYNAMIC_MARKER)
                dynamic = True
            else:
                return None, True
        return "".join(parts), dynamic
    return None, True


def _module_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = <string expression>`` bindings, in order."""
    env: dict[str, str] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        text, dynamic = _resolve_str(stmt.value, env)
        if text is not None and not dynamic:
            env[target.id] = text
    return env


# -- per-function scan ------------------------------------------------------


def _is_memo_guard(test: ast.expr) -> bool:
    """``if key not in cache:`` / ``if key != self._key:`` shapes."""
    for node in ast.walk(test):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.NotIn, ast.NotEq)) for op in node.ops
        ):
            return True
    return False


def _call_method(node: ast.Call) -> tuple[str | None, str | None]:
    """(object chain tail, method) for ``x.y.method(...)`` calls."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None, None
    method = func.attr
    base = func.value
    if isinstance(base, ast.Attribute):
        return base.attr, method
    if isinstance(base, ast.Name):
        return base.id, method
    return None, method


def _simple_fold(fold: ast.expr | ast.FunctionDef | None) -> bool:
    """Does a fold only compute pushable aggregates?

    Pushable means plain ``len(group)`` plus ``sum``/``min``/``max``
    over a bare subscript of the group row — no arithmetic inside the
    aggregate and no filtering ``if`` in the comprehension (paper
    Section 4.2: 3.0 Open SQL takes simple aggregates only).
    """
    if fold is None:
        return False
    body: ast.AST
    if isinstance(fold, ast.Lambda):
        body = fold.body
    elif isinstance(fold, ast.FunctionDef):
        body = fold
    else:
        return False
    saw_aggregate = False
    for node in ast.walk(body):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Name):
            return False  # method/helper call inside the fold
        if func.id == "len":
            saw_aggregate = True
            continue
        if func.id not in ("sum", "min", "max"):
            return False
        if not node.args or not isinstance(node.args[0], ast.GeneratorExp):
            return False
        gen = node.args[0]
        if any(comp.ifs for comp in gen.generators):
            return False
        if not isinstance(gen.elt, ast.Subscript):
            return False
        saw_aggregate = True
    return saw_aggregate


class _ModuleContext:
    def __init__(self, path: Path, module: str, tree: ast.Module) -> None:
        self.path = str(path)
        self.module = module
        self.env = _module_constants(tree)
        #: class name -> (first wrapped site, memoized?)
        self.wrapper_classes: dict[str, tuple[StatementSite, bool]] = {}


class _FunctionScanner:
    """One pass over a function body, tracking loop and memo context."""

    def __init__(self, ctx: _ModuleContext, qualname: str,
                 node: ast.FunctionDef) -> None:
        self.ctx = ctx
        self.func = qualname
        self.node = node
        self.sites: list[StatementSite] = []
        self.idioms: list[IdiomSite] = []
        self._select_vars: dict[str, StatementSite] = {}
        self._wrapper_vars: dict[str, str] = {}  # var -> kind marker
        self._local_funcs: dict[str, ast.FunctionDef] = {}
        self._call_sites: dict[int, StatementSite] = {}  # id(Call) -> site

    def run(self) -> None:
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.FunctionDef) and sub is not self.node:
                self._local_funcs[sub.name] = sub
        self._scan_stmts(self.node.body, (), False)

    # -- statement dispatch ------------------------------------------------

    def _scan_stmts(self, body: list[ast.stmt],
                    loops: tuple[StatementSite | None, ...],
                    memo: bool) -> None:
        for stmt in body:
            self._scan_stmt(stmt, loops, memo)

    def _scan_stmt(self, stmt: ast.stmt,
                   loops: tuple[StatementSite | None, ...],
                   memo: bool) -> None:
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter, loops, memo)
            source = self._loop_source(stmt.iter)
            self._scan_stmts(stmt.body, loops + (source,), memo)
            self._scan_stmts(stmt.orelse, loops, memo)
        elif isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, loops, memo)
            self._scan_stmts(stmt.body, loops + (None,), memo)
            self._scan_stmts(stmt.orelse, loops, memo)
        elif isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, loops, memo)
            self._scan_stmts(stmt.body, loops,
                             memo or _is_memo_guard(stmt.test))
            self._scan_stmts(stmt.orelse, loops, memo)
        elif isinstance(stmt, (ast.With, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, loops, memo)
            for name in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, name, [])
                for child in children:
                    if isinstance(child, ast.ExceptHandler):
                        self._scan_stmts(child.body, loops, memo)
                    elif isinstance(child, ast.stmt):
                        self._scan_stmt(child, loops, memo)
        elif isinstance(stmt, ast.FunctionDef):
            # Nested defs (fold functions) run in the same dynamic
            # context they are called from; scan them in place.
            self._scan_stmts(stmt.body, loops, memo)
        elif isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, loops, memo)
            self._bind_assignment(stmt)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, loops, memo)

    def _bind_assignment(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0],
                                                    ast.Name):
            return
        name = stmt.targets[0].id
        value = stmt.value
        if isinstance(value, ast.Call):
            site = self._call_sites.get(id(value))
            if site is not None:
                site.var_name = name
                self._select_vars[name] = site
                return
            if isinstance(value.func, ast.Name):
                cls = value.func.id
                if cls == "KonvLookup":
                    self._wrapper_vars[name] = "konv_lookup"
                elif cls in self.ctx.wrapper_classes:
                    self._wrapper_vars[name] = cls

    # -- expression scan ---------------------------------------------------

    def _scan_expr(self, node: ast.expr,
                   loops: tuple[StatementSite | None, ...],
                   memo: bool) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._handle_call(sub, loops, memo)

    def _handle_call(self, call: ast.Call,
                     loops: tuple[StatementSite | None, ...],
                     memo: bool) -> None:
        base, method = _call_method(call)
        if base == "open_sql" and method in _OPEN_SQL_METHODS:
            self._add_statement(call, method, loops, memo)
            return
        if base == "native_sql" and method in _NATIVE_SQL_METHODS:
            self._add_statement(call, "exec_sql", loops, memo)
            return
        func = call.func
        if (isinstance(func, ast.Name) and func.id == "group_aggregate") \
                or (isinstance(func, ast.Attribute)
                    and func.attr == "group_aggregate"):
            self._add_group_aggregate(call, loops, memo)
            return
        if isinstance(func, ast.Name) and func.id == "sorted" and \
                call.args:
            self._add_abap_sort(call, loops, memo)
            return
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            kind = self._wrapper_vars.get(func.value.id)
            if kind == "konv_lookup" and func.attr in _KONV_METHODS:
                self.idioms.append(IdiomSite(
                    path=self.ctx.path, module=self.ctx.module,
                    line=call.lineno, func=self.func, kind="konv_lookup",
                    loop_depth=len(loops), memoized=True, outer=loops,
                    detail=f"KonvLookup.{func.attr}",
                ))
            elif kind is not None and kind != "konv_lookup":
                source, wrapped_memo = self.ctx.wrapper_classes[kind]
                self.idioms.append(IdiomSite(
                    path=self.ctx.path, module=self.ctx.module,
                    line=call.lineno, func=self.func, kind="wrapper_call",
                    loop_depth=len(loops), memoized=wrapped_memo,
                    outer=loops, source=source,
                    detail=f"{kind}.{func.attr}",
                ))

    def _add_statement(self, call: ast.Call, api: str,
                       loops: tuple[StatementSite | None, ...],
                       memo: bool) -> None:
        sql: str | None = None
        dynamic = False
        if call.args:
            sql, dynamic = _resolve_str(call.args[0], self.ctx.env)
        host_vars: tuple[str, ...] = ()
        if len(call.args) > 1 and isinstance(call.args[1], ast.Dict):
            host_vars = tuple(
                str(key.value) for key in call.args[1].keys
                if isinstance(key, ast.Constant)
            )
        sql_src: str | None = None
        if call.args:
            sql_src = " ".join(ast.unparse(call.args[0]).split())
        site = StatementSite(
            path=self.ctx.path, module=self.ctx.module, line=call.lineno,
            func=self.func, api=api, sql=sql, dynamic=dynamic,
            host_vars=host_vars, loop_depth=len(loops), memoized=memo,
            outer=loops, sql_src=sql_src,
        )
        if api != "exec_sql" and sql is not None:
            try:
                site.stmt = parse_open_sql(sql)
            except OpenSqlError as exc:
                site.parse_error = str(exc)
        self.sites.append(site)
        self._call_sites[id(call)] = site

    def _add_group_aggregate(self, call: ast.Call,
                             loops: tuple[StatementSite | None, ...],
                             memo: bool) -> None:
        source = None
        if len(call.args) > 1:
            source = self._rows_source(call.args[1])
        fold: ast.expr | ast.FunctionDef | None = None
        if len(call.args) > 3:
            fold_arg = call.args[3]
            if isinstance(fold_arg, ast.Lambda):
                fold = fold_arg
            elif isinstance(fold_arg, ast.Name):
                fold = self._local_funcs.get(fold_arg.id)
        self.idioms.append(IdiomSite(
            path=self.ctx.path, module=self.ctx.module, line=call.lineno,
            func=self.func, kind="group_aggregate", loop_depth=len(loops),
            memoized=memo, outer=loops, source=source,
            simple_fold=_simple_fold(fold),
            detail="EXTRACT/SORT/LOOP AT END grouping",
        ))

    def _add_abap_sort(self, call: ast.Call,
                       loops: tuple[StatementSite | None, ...],
                       memo: bool) -> None:
        """``sorted()`` over rows whose SELECT origin is knowable."""
        arg = call.args[0]
        source = self._rows_source(arg)
        if source is None and isinstance(arg, ast.Call):
            # sorted(group_aggregate(r3, <rows>, ...)): the sort rides
            # on the grouped form of the same SELECT's rows.
            func = arg.func
            is_ga = (isinstance(func, ast.Name)
                     and func.id == "group_aggregate") or (
                isinstance(func, ast.Attribute)
                and func.attr == "group_aggregate")
            if is_ga and len(arg.args) > 1:
                source = self._rows_source(arg.args[1])
        if source is None:
            return
        table = source.stmt.table if source.stmt is not None else "select"
        self.idioms.append(IdiomSite(
            path=self.ctx.path, module=self.ctx.module, line=call.lineno,
            func=self.func, kind="abap_sort", loop_depth=len(loops),
            memoized=memo, outer=loops, source=source,
            detail=f"sorted() over {table} rows",
        ))

    # -- data-flow helpers -------------------------------------------------

    def _rows_source(self, node: ast.expr) -> StatementSite | None:
        """Which SELECT produced this expression's rows, if knowable."""
        if isinstance(node, ast.Attribute) and node.attr == "rows":
            return self._rows_source(node.value)
        if isinstance(node, ast.Call):
            direct = self._call_sites.get(id(node))
            if direct is not None:
                return direct
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("loop", "read_binary_all"):
                return None
        if isinstance(node, ast.Name):
            return self._select_vars.get(node.id)
        return None

    def _loop_source(self, iter_expr: ast.expr) -> StatementSite | None:
        return self._rows_source(iter_expr)


# -- module / path drivers --------------------------------------------------


def analyze_module(path: str | Path) -> ModuleAnalysis:
    """Extract every call site and idiom from one source file."""
    path = Path(path)
    return analyze_source(path.read_text(), path.stem, path)


def analyze_source(source: str, module: str,
                   path: str | Path) -> ModuleAnalysis:
    """Extract from source text that need not exist on disk — the
    rewriter analyses its own generated modules through this."""
    path = Path(path)
    tree = ast.parse(source, filename=str(path))
    ctx = _ModuleContext(path, module, tree)
    analysis = ModuleAnalysis(
        path=str(path), module=module, release=infer_release(module),
    )

    # First pass: memo wrapper classes (their methods hold the SELECT).
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        wrapped: list[StatementSite] = []
        memoized = False
        for method in stmt.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            scanner = _FunctionScanner(
                ctx, f"{stmt.name}.{method.name}", method
            )
            scanner.run()
            wrapped.extend(scanner.sites)
            memoized = memoized or any(s.memoized for s in scanner.sites)
            analysis.sites.extend(scanner.sites)
            analysis.idioms.extend(scanner.idioms)
        if wrapped:
            ctx.wrapper_classes[stmt.name] = (wrapped[0], memoized)

    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            scanner = _FunctionScanner(ctx, stmt.name, stmt)
            scanner.run()
            analysis.sites.extend(scanner.sites)
            analysis.idioms.extend(scanner.idioms)
    return analysis


def analyze_paths(paths: Iterable[str | Path]) -> list[ModuleAnalysis]:
    """Analyze files and directories (``*.py``, sorted, no dunders)."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(
                p for p in entry.rglob("*.py")
                if not p.name.startswith("__")
            ))
        else:
            files.append(entry)
    return [analyze_module(path) for path in files]
