"""Rendering of analyzer findings: human text and machine JSON."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.rules import RULES, RULES_BY_ID, Finding

_SEVERITY_ORDER = ("error", "warning", "info")


def _short_path(path: str) -> str:
    """Repo-relative path when possible, for stable readable output."""
    parts = Path(path).parts
    if "repro" in parts:
        index = parts.index("repro")
        return str(Path(*parts[index - 1 if index else 0:]))
    return path


def render_text(findings: list[Finding]) -> str:
    lines: list[str] = []
    for finding in findings:
        tag = " [baselined]" if finding.baselined else ""
        lines.append(
            f"{_short_path(finding.path)}:{finding.line}: "
            f"{finding.rule} {finding.severity}{tag} {finding.func}: "
            f"{finding.message} [paper: {finding.paper}]"
        )
    lines.append("")
    lines.extend(render_summary(findings))
    return "\n".join(lines)


def render_summary(findings: list[Finding]) -> list[str]:
    lines = ["rule  new  baselined  title"]
    for rule in RULES:
        matching = [f for f in findings if f.rule == rule.id]
        if not matching:
            continue
        fresh = sum(1 for f in matching if not f.baselined)
        lines.append(
            f"{rule.id}  {fresh:3d}  {len(matching) - fresh:9d}  "
            f"{rule.title}"
        )
    total_fresh = sum(1 for f in findings if not f.baselined)
    by_severity = {
        severity: sum(1 for f in findings if f.severity == severity)
        for severity in _SEVERITY_ORDER
    }
    severity_note = ", ".join(
        f"{count} {name}" for name, count in by_severity.items() if count
    )
    lines.append(
        f"{len(findings)} finding(s) ({severity_note or 'none'}); "
        f"{total_fresh} new, "
        f"{len(findings) - total_fresh} baselined"
    )
    return lines


def render_json(findings: list[Finding]) -> str:
    payload = {
        "rules": [
            {"id": rule.id, "title": rule.title, "paper": rule.paper}
            for rule in RULES
        ],
        "findings": [
            {**f.as_dict(), "path": _short_path(f.path)}
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "new": sum(1 for f in findings if not f.baselined),
            "baselined": sum(1 for f in findings if f.baselined),
            "by_rule": {
                rule_id: sum(1 for f in findings if f.rule == rule_id)
                for rule_id in RULES_BY_ID
                if any(f.rule == rule_id for f in findings)
            },
            "by_severity": {
                severity: sum(
                    1 for f in findings if f.severity == severity
                )
                for severity in _SEVERITY_ORDER
            },
        },
    }
    return json.dumps(payload, indent=2)
