"""Static schema metadata and cost estimation for the analyzer.

The analyzer never opens a database: everything it knows about tables
comes from the same sources the DDIC would consult at runtime —
:mod:`repro.sapschema.tables` for field inventories, keys, kinds and
secondary indexes, :mod:`repro.sapschema.views` for the 2.2 join
views, and the TPC-D base cardinalities of :mod:`repro.tpcd.dbgen`
scaled to a nominal scale factor.  Selectivity defaults are imported
from :mod:`repro.engine.stats` so the static estimates blind
themselves exactly the way the runtime optimizer does on parameter
markers (the Table 6 trap).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.engine.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
)
from repro.r3.ddic import TableKind
from repro.sapschema.tables import SAP_SECONDARY_INDEXES, SAP_TABLE_INFO
from repro.sapschema.views import JOIN_VIEWS
from repro.tpcd.dbgen import (
    BASE_CUSTOMERS,
    BASE_ORDERS,
    BASE_PARTS,
    BASE_SUPPLIERS,
)

#: TPC-D 1.0 derived cardinalities at SF = 1 (lineitems ~4 per order,
#: KONV carries one DISC and one TAX condition per lineitem)
_BASE_LINEITEMS = 4 * BASE_ORDERS

#: logical SAP table -> row count at SF = 1.0
BASE_SAP_ROWS: dict[str, int] = {
    "t005": 25,
    "t005t": 25,
    "t005u": 5,
    "mara": BASE_PARTS,
    "makt": BASE_PARTS,
    "a004": BASE_PARTS,
    "konp": BASE_PARTS,
    "lfa1": BASE_SUPPLIERS,
    "eina": 4 * BASE_PARTS,
    "eine": 4 * BASE_PARTS,
    "ausp": BASE_PARTS,
    "kna1": BASE_CUSTOMERS,
    "vbak": BASE_ORDERS,
    "vbap": _BASE_LINEITEMS,
    "vbep": _BASE_LINEITEMS,
    "konv": 2 * _BASE_LINEITEMS,
    "stxl": BASE_SUPPLIERS + BASE_CUSTOMERS,
}

#: rows below which a full scan is never worth a finding
FULL_SCAN_ROW_FLOOR = 1_000

_VIEW_COLUMN_RE = re.compile(r"(\w+)\.(\w+)\s+AS\s+(\w+)", re.IGNORECASE)
_VIEW_FROM_RE = re.compile(r"\bFROM\s+([\w\s,]+?)\s+WHERE", re.IGNORECASE)


@dataclass
class TableInfo:
    """What the analyzer knows about one logical table or view."""

    name: str
    kind: TableKind
    is_view: bool
    rows: int
    #: ordered non-MANDT key fields ('' for views)
    key_fields: tuple[str, ...]
    #: all declared field names
    field_names: tuple[str, ...]
    #: columns that lead a usable access path (key prefix or index)
    indexed_columns: frozenset[str] = field(default_factory=frozenset)
    #: view column -> (base table, base column); empty for base tables
    view_columns: dict[str, tuple[str, str]] = field(default_factory=dict)


class SchemaInfo:
    """DDIC snapshot + statistics, assembled without a live system."""

    def __init__(self, scale_factor: float = 1.0) -> None:
        self.scale_factor = scale_factor
        self.tables: dict[str, TableInfo] = {}
        self._secondary: dict[str, list[str]] = {}
        for _name, table, columns in SAP_SECONDARY_INDEXES:
            self._secondary.setdefault(table, []).append(columns[0])
        for name, info in SAP_TABLE_INFO.items():
            keys = tuple(
                f.name.lower() for f in info.fields if f.key
            )
            indexed = set(self._secondary.get(name, []))
            if keys:
                indexed.add(keys[0])
            self.tables[name] = TableInfo(
                name=name,
                kind=info.kind,
                is_view=False,
                rows=self._scaled(BASE_SAP_ROWS.get(name, 0)),
                key_fields=keys,
                field_names=tuple(f.name.lower() for f in info.fields),
                indexed_columns=frozenset(indexed),
            )
        for view, sql in JOIN_VIEWS.items():
            self.tables[view] = self._view_info(view, sql)

    def _scaled(self, base: int) -> int:
        if base <= 25:  # t005 and friends do not scale
            return base
        return max(1, int(base * self.scale_factor))

    def _view_info(self, view: str, sql: str) -> TableInfo:
        columns: dict[str, tuple[str, str]] = {}
        for base, base_col, view_col in _VIEW_COLUMN_RE.findall(sql):
            columns[view_col.lower()] = (base.lower(), base_col.lower())
        rows = 0
        indexed: set[str] = set()
        for view_col, (base, base_col) in columns.items():
            base_info = self.tables.get(base)
            if base_info is None:
                continue
            rows = max(rows, base_info.rows)
            if base_col in base_info.indexed_columns:
                indexed.add(view_col)
        return TableInfo(
            name=view, kind=TableKind.TRANSPARENT, is_view=True,
            rows=rows, key_fields=(),
            field_names=tuple(columns),
            indexed_columns=frozenset(indexed),
            view_columns=columns,
        )

    # -- lookups ----------------------------------------------------------

    def lookup(self, name: str) -> TableInfo | None:
        return self.tables.get(name.lower())

    def kind_in_release(self, name: str, release: str | None) -> TableKind:
        """Table kind as the given R/3 release sees it.

        The 3.0 installation of the paper converts KONV to transparent
        (Section 3.2); every other kind is release-independent.
        """
        info = self.lookup(name)
        if info is None:
            return TableKind.TRANSPARENT
        if release == "3.0" and info.name == "konv":
            return TableKind.TRANSPARENT
        return info.kind

    def has_index_on(self, table: str, column: str) -> bool:
        info = self.lookup(table)
        if info is None:
            return False
        return column.lower() in info.indexed_columns

    def is_full_key(self, table: str, bound: set[str]) -> bool:
        """Do the bound columns cover the table's full logical key?"""
        info = self.lookup(table)
        if info is None or not info.key_fields:
            return True  # unknown/view: don't speculate
        return all(key in bound for key in info.key_fields)


# -- selectivity and cost -------------------------------------------------

#: fallback iteration count when a loop's source is not a SELECT
UNKNOWN_LOOP_ROWS = 100

#: amortisation factor applied to memoised per-row probes (the cursor
#: cache / wrapper memo turns N probes into ~N/10 distinct ones)
MEMO_AMORTISATION = 0.1


def predicate_selectivity(op: str, value_known: bool) -> float:
    """Selectivity of a single sargable conjunct, System-R style.

    ``value_known`` is False for host variables — parameter markers —
    in which case the estimator falls back to the blind defaults that
    make the Table 6 index plan look attractive.
    """
    if op == "=":
        return DEFAULT_EQ_SELECTIVITY
    if op in ("<", "<=", ">", ">=", "between"):
        return DEFAULT_RANGE_SELECTIVITY
    if op == "like":
        return DEFAULT_LIKE_SELECTIVITY
    if op == "in":
        return min(1.0, 5 * DEFAULT_EQ_SELECTIVITY)
    return 1.0


def estimate_result_rows(info: TableInfo | None,
                         conjuncts: list[tuple[str, str, bool]]) -> int:
    """Rows a statement returns: table rows × conjunct selectivities.

    ``conjuncts`` are (column, op, value_known) for the top-level
    AND-connected predicates; key-equality collapses to one row.
    """
    if info is None:
        return UNKNOWN_LOOP_ROWS
    rows = float(info.rows)
    bound_eq = {c for c, op, _known in conjuncts if op == "="}
    if info.key_fields and all(k in bound_eq for k in info.key_fields):
        return 1
    for _column, op, value_known in conjuncts:
        rows *= predicate_selectivity(op, value_known)
    return max(1, int(rows))


def severity_for_calls(est_calls: float) -> str:
    """Map an estimated database-call count to a severity level."""
    if est_calls >= 10_000:
        return "error"
    if est_calls >= 100:
        return "warning"
    return "info"


def severity_for_rows(est_rows: float) -> str:
    """Map an estimated scanned-row count to a severity level."""
    if est_rows >= 500_000:
        return "error"
    if est_rows >= 20_000:
        return "warning"
    return "info"
