"""The analyzer's rule catalogue — the paper's traps, made static.

Each rule inspects extracted call sites / idioms plus the DDIC
snapshot and emits :class:`Finding` objects carrying a severity, a
static cost estimate and a pointer to the paper table the anti-pattern
reproduces:

========  =======================================  ===================
rule      anti-pattern                             paper evidence
========  =======================================  ===================
R001      SELECT inside a loop (nested-loop join   Table 4, Section 2.2
          executed from the application server)
R002      SELECT * / wide field list over the      Table 2, Section 3.1
          vertically partitioned SAP row
R003      WHERE clause without a usable key or     Section 4.1
          index prefix (full-scan risk)
R004      host-variable range predicate — the      Table 6, Section 4.1
          parameter-marker plan trap
R005      aggregation in ABAP where the 3.0        Table 7, Section 4.2
          GROUP BY pushdown applies
R006      KONV cluster decode inside a loop        Table 4, Section 3.2
R007      SELECT SINGLE without the full key       Table 8, Section 4.3
          (table buffer bypass)
R008      embedded statement not analyzable        —
R009      full-table report on a large table       Section 5
          eligible for a parallel partitioned scan
R010      ORDER BY performed in ABAP (sorted()     Table 7, Section 4.2
          over fetched rows the engine could sort)
========  =======================================  ===================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.analysis.costmodel import (
    FULL_SCAN_ROW_FLOOR,
    MEMO_AMORTISATION,
    UNKNOWN_LOOP_ROWS,
    SchemaInfo,
    estimate_result_rows,
    severity_for_calls,
    severity_for_rows,
)
from repro.analysis.extractor import (
    ModuleAnalysis,
    StatementSite,
)
from repro.engine.errors import EngineError
from repro.engine.expr import ColumnRef
from repro.engine.plan.fingerprint import fingerprint
from repro.engine.sql.parser import parse_select
from repro.r3.ddic import TableKind
from repro.r3.errors import R3Error
from repro.r3.opensql.ast import (
    OSBetween,
    OSBool,
    OSComp,
    OSCond,
    OSField,
    OSLike,
    OSLiteral,
    OSSelect,
    OSStar,
)
from repro.r3.opensql.translate import translate

#: select-list width beyond which a field list counts as "wide"
WIDE_FIELD_LIST = 12

_SEVERITY_RANK = {"error": 0, "warning": 1, "info": 2}
_RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass
class Rule:
    id: str
    title: str
    paper: str


RULES: list[Rule] = [
    Rule("R001", "SELECT inside a loop (application-server join)",
         "Table 4, Section 2.2"),
    Rule("R002", "SELECT * / wide field list on a partitioned SAP table",
         "Table 2, Section 3.1"),
    Rule("R003", "WHERE clause without a usable key or index prefix",
         "Section 4.1"),
    Rule("R004", "host-variable range predicate (parameter-marker trap)",
         "Table 6, Section 4.1"),
    Rule("R005", "aggregation in ABAP where 3.0 pushdown applies",
         "Table 7, Section 4.2"),
    Rule("R006", "pool/cluster table decode inside a loop",
         "Table 4, Section 3.2"),
    Rule("R007", "SELECT SINGLE without the full key (buffer bypass)",
         "Table 8, Section 4.3"),
    Rule("R008", "embedded statement not statically analyzable", "—"),
    Rule("R009", "full-table report eligible for a parallel scan",
         "Section 5"),
    Rule("R010", "ORDER BY performed in ABAP (sorted() over fetched rows)",
         "Table 7, Section 4.2"),
]

RULES_BY_ID = {rule.id: rule for rule in RULES}


@dataclass
class Finding:
    rule: str
    severity: str
    path: str
    module: str
    line: int
    func: str
    message: str
    paper: str
    estimate: dict = field(default_factory=dict)
    key: str = ""
    baselined: bool = False

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "title": RULES_BY_ID[self.rule].title,
            "severity": self.severity,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "func": self.func,
            "message": self.message,
            "paper": self.paper,
            "estimate": self.estimate,
            "key": self.key,
            "baselined": self.baselined,
        }


# -- predicate analysis ----------------------------------------------------


@dataclass
class Conjunct:
    """One top-level AND-connected predicate, statically classified."""

    table: str | None  # resolved table/view of the left-hand field
    column: str
    op: str  # '=', '<', '<=', '>', '>=', '<>', 'like', 'in', 'between'
    value_known: bool  # False when a host variable is involved
    col_col: bool = False  # both sides are fields
    from_on: bool = False  # came from a join ON clause
    leading_wildcard: bool = False  # LIKE '%...'

    @property
    def sargable(self) -> bool:
        if self.op == "<>":
            return False
        if self.op == "like" and self.leading_wildcard:
            return False
        return True


def _alias_map(stmt: OSSelect) -> dict[str | None, str]:
    refs: dict[str | None, str] = {stmt.alias or stmt.table: stmt.table}
    refs[None] = stmt.table  # unqualified fields hit the main table
    for join in stmt.joins:
        refs[join.alias or join.table] = join.table
    return refs


def _resolve(field_ref: OSField, aliases: dict[str | None, str]) -> str | None:
    return aliases.get(field_ref.alias, aliases[None]
                       if field_ref.alias is None else None)


def collect_conjuncts(stmt: OSSelect) -> list[Conjunct]:
    """Top-level AND-connected predicates plus join ON conditions.

    OR / NOT subtrees are skipped entirely — they cannot drive an
    index access, which is exactly what the rules care about.
    """
    aliases = _alias_map(stmt)
    out: list[Conjunct] = []

    def add_comp(comp: OSComp, from_on: bool) -> None:
        table = _resolve(comp.left, aliases)
        if isinstance(comp.right, OSField):
            out.append(Conjunct(table, comp.left.name, comp.op, True,
                                col_col=True, from_on=from_on))
            right_table = _resolve(comp.right, aliases)
            out.append(Conjunct(right_table, comp.right.name, comp.op,
                                True, col_col=True, from_on=from_on))
            return
        known = isinstance(comp.right, OSLiteral)
        out.append(Conjunct(table, comp.left.name, comp.op, known,
                            from_on=from_on))

    def walk(node: OSCond) -> None:
        if isinstance(node, OSBool):
            if node.op == "AND":
                walk(node.left)
                walk(node.right)
            return  # OR: not sargable at the top level
        if isinstance(node, OSComp):
            add_comp(node, from_on=False)
        elif isinstance(node, OSLike) and not node.negated:
            known = isinstance(node.pattern, OSLiteral)
            pattern = node.pattern.value if known else ""
            out.append(Conjunct(
                _resolve(node.left, aliases), node.left.name, "like",
                known,
                leading_wildcard=known and str(pattern).startswith("%"),
            ))
        elif isinstance(node, OSBetween) and not node.negated:
            known = (isinstance(node.low, OSLiteral)
                     and isinstance(node.high, OSLiteral))
            out.append(Conjunct(_resolve(node.left, aliases),
                                node.left.name, "between", known))
        # OSIn/OSNot/negated forms: skipped (no index use modelled)

    if stmt.where is not None:
        walk(stmt.where)
    for join in stmt.joins:
        for comp in join.on:
            add_comp(comp, from_on=True)
    return out


def estimate_site_rows(site: StatementSite | None,
                       schema: SchemaInfo) -> int:
    """Rows a statement site returns per execution (1 for SINGLE)."""
    if site is None or site.stmt is None:
        return UNKNOWN_LOOP_ROWS
    stmt = site.stmt
    if stmt.single or stmt.up_to == 1:
        return 1
    if stmt.has_aggregates and not stmt.group_by:
        return 1
    info = schema.lookup(stmt.table)
    conjuncts = [
        (c.column, c.op, c.value_known)
        for c in collect_conjuncts(stmt)
        if c.table == stmt.table and not c.col_col and c.sargable
    ]
    rows = estimate_result_rows(info, conjuncts)
    if stmt.up_to is not None:
        rows = min(rows, stmt.up_to)
    return rows


def estimate_loop_calls(outer: tuple[StatementSite | None, ...],
                        schema: SchemaInfo, memoized: bool) -> float:
    """How many times a loop body at this nesting runs end to end."""
    calls = 1.0
    for source in outer:
        calls *= estimate_site_rows(source, schema)
    if memoized:
        calls *= MEMO_AMORTISATION
    return max(1.0, calls)


def predicate_fingerprint(stmt: OSSelect,
                          schema: SchemaInfo) -> tuple | None:
    """Structural fingerprint of the translated WHERE clause.

    Runs the statement through the real translator (every literal and
    host variable becomes a ``?`` marker), re-parses the backend SQL
    with the engine parser, pseudo-binds column references to stable
    positions, and fingerprints via :mod:`repro.engine.plan`.  Two
    sites that would share a cursor-cache plan share a fingerprint.
    """
    def field_names_of(table: str) -> list[str]:
        info = schema.lookup(table)
        return list(info.field_names) if info else []

    try:
        translation = translate(stmt, field_names_of, lambda _t: True)
        parsed = parse_select(translation.sql)
    except (R3Error, EngineError):
        return None
    where = parsed.where
    if where is None:
        return None
    positions: dict[tuple, int] = {}
    for node in where.walk():
        if isinstance(node, ColumnRef):
            key = (node.qualifier, node.name)
            node._position = positions.setdefault(key, len(positions))
    try:
        return fingerprint(where)
    except EngineError:
        return None


# -- the rules -------------------------------------------------------------


def _table_of(site: StatementSite) -> str:
    if site.stmt is not None:
        return site.stmt.table
    if site.sql:
        tokens = site.sql.upper().split()
        if "FROM" in tokens:
            index = tokens.index("FROM")
            if index + 1 < len(tokens):
                return tokens[index + 1].lower().strip(",()")
    return "?"


def _loop_note(outer: tuple[StatementSite | None, ...]) -> str:
    sources = [
        _table_of(src) if src is not None else "?" for src in outer
    ]
    return " > ".join(sources)


def rule_select_in_loop(analysis: ModuleAnalysis,
                        schema: SchemaInfo) -> list[Finding]:
    """R001: any database call repeated per row of an outer loop."""
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.loop_depth < 1:
            continue
        calls = estimate_loop_calls(site.outer, schema, site.memoized)
        per_call = estimate_site_rows(site, schema)
        table = _table_of(site)
        memo_note = " (memoized)" if site.memoized else ""
        findings.append(Finding(
            rule="R001", severity=severity_for_calls(calls),
            path=site.path, module=site.module, line=site.line,
            func=site.func,
            message=(
                f"{site.api} on {table} inside loop over "
                f"{_loop_note(site.outer)}{memo_note}: "
                f"~{int(calls):,} DB calls of ~{per_call:,} row(s) each"
            ),
            paper=RULES_BY_ID["R001"].paper,
            estimate={"db_calls": int(calls),
                      "rows_per_call": per_call,
                      "rows_shipped": int(calls) * per_call},
            key=_key("R001", site.module, site.func,
                     site.sql or f"{site.api}:{table}"),
        ))
    for idiom in analysis.idioms:
        if idiom.kind != "wrapper_call" or idiom.loop_depth < 1:
            continue
        calls = estimate_loop_calls(idiom.outer, schema, idiom.memoized)
        table = _table_of(idiom.source) if idiom.source else "?"
        findings.append(Finding(
            rule="R001", severity=severity_for_calls(calls),
            path=idiom.path, module=idiom.module, line=idiom.line,
            func=idiom.func,
            message=(
                f"{idiom.detail} wraps a SELECT on {table} inside loop "
                f"over {_loop_note(idiom.outer)} (memo wrapper): "
                f"~{int(calls):,} DB calls"
            ),
            paper=RULES_BY_ID["R001"].paper,
            estimate={"db_calls": int(calls)},
            key=_key("R001", idiom.module, idiom.func, idiom.detail),
        ))
    return findings


def rule_select_star(analysis: ModuleAnalysis,
                     schema: SchemaInfo) -> list[Finding]:
    """R002: * or wide field lists drag the ~10x filler payload along."""
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.stmt is None:
            continue
        stmt = site.stmt
        info = schema.lookup(stmt.table)
        star = any(isinstance(item, OSStar) for item in stmt.items)
        width = len([i for i in stmt.items if isinstance(i, OSField)])
        if star and info is not None:
            width = len(info.field_names)
        elif width <= WIDE_FIELD_LIST:
            continue
        rows = estimate_site_rows(site, schema)
        cells = rows * width
        what = "SELECT *" if star else f"{width}-field select list"
        findings.append(Finding(
            rule="R002", severity=severity_for_rows(cells / 10),
            path=site.path, module=site.module, line=site.line,
            func=site.func,
            message=(
                f"{what} on {stmt.table} ships ~{width} columns "
                f"x ~{rows:,} rows of the partitioned SAP row "
                f"(filler fields included)"
            ),
            paper=RULES_BY_ID["R002"].paper,
            estimate={"columns": width, "rows": rows, "cells": cells},
            key=_key("R002", site.module, site.func, site.sql or ""),
        ))
    return findings


def rule_missing_key_prefix(analysis: ModuleAnalysis,
                            schema: SchemaInfo) -> list[Finding]:
    """R003: no sargable WHERE conjunct hits any usable access path."""
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.stmt is None:
            continue
        stmt = site.stmt
        conjuncts = collect_conjuncts(stmt)
        driving = [
            c for c in conjuncts
            if c.sargable and not c.col_col and not c.from_on
            and c.table is not None
            and schema.has_index_on(c.table, c.column)
        ]
        if driving:
            continue
        refs = [stmt.table] + [j.table for j in stmt.joins]
        rows = max(
            (info.rows for info in map(schema.lookup, refs)
             if info is not None),
            default=0,
        )
        if rows < FULL_SCAN_ROW_FLOOR:
            continue
        where_note = (
            "no WHERE clause" if stmt.where is None
            else "no WHERE conjunct usable as a key/index prefix"
        )
        findings.append(Finding(
            rule="R003", severity=severity_for_rows(rows),
            path=site.path, module=site.module, line=site.line,
            func=site.func,
            message=(
                f"{site.api} on {', '.join(refs)}: {where_note} — "
                f"full scan of ~{rows:,} rows"
            ),
            paper=RULES_BY_ID["R003"].paper,
            estimate={"rows_scanned": rows},
            key=_key("R003", site.module, site.func, site.sql or ""),
        ))
    return findings


def rule_host_variable_trap(analysis: ModuleAnalysis,
                            schema: SchemaInfo) -> list[Finding]:
    """R004: range predicate through a ``?`` marker on an indexed column.

    The translator turns the host variable into a parameter marker, so
    the optimizer prices the predicate at its blind default and keeps
    an index plan that collapses when the actual range is wide — the
    Table 6 measurement.
    """
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.stmt is None:
            continue
        stmt = site.stmt
        seen: set[tuple[str | None, str]] = set()
        trapped = [
            c for c in collect_conjuncts(stmt)
            if not c.value_known and not c.col_col
            and c.op in _RANGE_OPS + ("between", "like")
            and c.table is not None
            and schema.has_index_on(c.table, c.column)
        ]
        for conjunct in trapped:
            spot = (conjunct.table, conjunct.column)
            if spot in seen:
                continue
            seen.add(spot)
            info = schema.lookup(conjunct.table)
            rows = info.rows if info else 0
            plan_key = predicate_fingerprint(stmt, schema)
            findings.append(Finding(
                rule="R004", severity="warning",
                path=site.path, module=site.module, line=site.line,
                func=site.func,
                message=(
                    f"range predicate {conjunct.column} {conjunct.op} "
                    f":hostvar on indexed {conjunct.table} becomes a "
                    f"? marker — optimizer keeps the index plan "
                    f"regardless of range width over ~{rows:,} rows"
                ),
                paper=RULES_BY_ID["R004"].paper,
                estimate={"table_rows": rows,
                          "plan_fingerprint": repr(plan_key)},
                key=_key("R004", site.module, site.func,
                         f"{site.sql}|{conjunct.column}"),
            ))
    return findings


def rule_abap_aggregation(analysis: ModuleAnalysis,
                          schema: SchemaInfo) -> list[Finding]:
    """R005: EXTRACT/SORT/LOOP grouping whose fold the DB could run."""
    findings: list[Finding] = []
    for idiom in analysis.idioms:
        if idiom.kind != "group_aggregate" or not idiom.simple_fold:
            continue
        source = idiom.source
        if source is None or source.stmt is None:
            continue  # fed by ABAP-computed records, not a raw SELECT
        if source.api == "exec_sql":
            continue  # Native SQL can aggregate in any release
        if source.stmt.has_aggregates or source.stmt.group_by:
            continue  # already pushed
        rows = estimate_site_rows(source, schema)
        findings.append(Finding(
            rule="R005", severity=severity_for_rows(rows),
            path=idiom.path, module=idiom.module, line=idiom.line,
            func=idiom.func,
            message=(
                f"{idiom.detail} over raw SELECT on "
                f"{source.stmt.table} computes only simple aggregates "
                f"— 3.0 GROUP BY pushdown would ship the group rows "
                f"instead of ~{rows:,} detail rows"
            ),
            paper=RULES_BY_ID["R005"].paper,
            estimate={"rows_shipped": rows},
            key=_key("R005", idiom.module, idiom.func,
                     source.sql or idiom.detail),
        ))
    return findings


def rule_cluster_decode_in_loop(analysis: ModuleAnalysis,
                                schema: SchemaInfo) -> list[Finding]:
    """R006: per-row pool/cluster container decode, as this release
    sees the table (the 3.0 install converted KONV to transparent)."""
    findings: list[Finding] = []
    release = analysis.release
    for idiom in analysis.idioms:
        if idiom.kind != "konv_lookup" or idiom.loop_depth < 1:
            continue
        if schema.kind_in_release("konv", release) == TableKind.TRANSPARENT:
            continue
        calls = estimate_loop_calls(idiom.outer, schema, idiom.memoized)
        findings.append(Finding(
            rule="R006", severity=severity_for_calls(calls),
            path=idiom.path, module=idiom.module, line=idiom.line,
            func=idiom.func,
            message=(
                f"{idiom.detail} decodes the KONV cluster container "
                f"inside loop over {_loop_note(idiom.outer)}: "
                f"~{int(calls):,} decodes (memoized per document)"
            ),
            paper=RULES_BY_ID["R006"].paper,
            estimate={"decodes": int(calls)},
            key=_key("R006", idiom.module, idiom.func, idiom.detail),
        ))
    for site in analysis.sites:
        if site.stmt is None or site.loop_depth < 1:
            continue
        kind = schema.kind_in_release(site.stmt.table, release)
        if kind == TableKind.TRANSPARENT:
            continue
        calls = estimate_loop_calls(site.outer, schema, site.memoized)
        findings.append(Finding(
            rule="R006", severity=severity_for_calls(calls),
            path=site.path, module=site.module, line=site.line,
            func=site.func,
            message=(
                f"{site.api} on {kind.name.lower()} table "
                f"{site.stmt.table} inside loop over "
                f"{_loop_note(site.outer)}: ~{int(calls):,} container "
                f"decodes"
            ),
            paper=RULES_BY_ID["R006"].paper,
            estimate={"decodes": int(calls)},
            key=_key("R006", site.module, site.func, site.sql or ""),
        ))
    return findings


def rule_partial_key_single(analysis: ModuleAnalysis,
                            schema: SchemaInfo) -> list[Finding]:
    """R007: SELECT SINGLE that cannot hit the table buffer."""
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.api != "select_single" or site.stmt is None:
            continue
        stmt = site.stmt
        if stmt.has_joins:
            continue
        info = schema.lookup(stmt.table)
        if info is None or info.is_view or not info.key_fields:
            continue
        bound = {
            c.column for c in collect_conjuncts(stmt)
            if c.op == "=" and not c.col_col and c.table == stmt.table
        }
        if schema.is_full_key(stmt.table, bound):
            continue
        missing = [k for k in info.key_fields if k not in bound]
        severity = ("warning"
                    if site.loop_depth >= 1 and not site.memoized
                    else "info")
        findings.append(Finding(
            rule="R007", severity=severity,
            path=site.path, module=site.module, line=site.line,
            func=site.func,
            message=(
                f"SELECT SINGLE {stmt.table} binds "
                f"{sorted(bound) or 'no key fields'} but the full key "
                f"needs {list(info.key_fields)} — bypasses the table "
                f"buffer (missing {missing})"
            ),
            paper=RULES_BY_ID["R007"].paper,
            estimate={"bound": sorted(bound),
                      "key": list(info.key_fields)},
            key=_key("R007", site.module, site.func, site.sql or ""),
        ))
    return findings


def rule_unparseable(analysis: ModuleAnalysis,
                     schema: SchemaInfo) -> list[Finding]:
    """R008: statements the analyzer could not fully see through."""
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.api == "exec_sql":
            continue  # Native SQL is expected to be dynamic
        if site.parse_error is not None:
            message = f"embedded Open SQL fails to parse: {site.parse_error}"
            severity = "warning"
        elif site.sql is None:
            message = ("statement text is dynamic and could not be "
                       "statically resolved")
            severity = "info"
        else:
            continue
        findings.append(Finding(
            rule="R008", severity=severity,
            path=site.path, module=site.module, line=site.line,
            func=site.func, message=message,
            paper=RULES_BY_ID["R008"].paper,
            estimate={},
            key=_key("R008", site.module, site.func,
                     site.parse_error
                     or f"dynamic:{site.sql_src or ''}"),
        ))
    return findings


#: defaults of the engine's parallel knobs, used to size the suggestion
_PARALLEL_MAX_DEGREE = 8
_PARALLEL_MIN_ROWS_PER_LANE = 250


def rule_parallel_candidate(analysis: ModuleAnalysis,
                            schema: SchemaInfo) -> list[Finding]:
    """R009: full-table report on a table a partitioned scan could split.

    A SELECT that binds no equality sarg on an indexed column reads
    (most of) the table regardless of any range predicate — exactly the
    scan shape the parallel engine splits across worker lanes.  Flagged
    as ``info``: not a defect, an opportunity (run the report with
    ``--degree N``).  Fires on the big document tables (LINEITEM /
    ORDERS live in VBAP / VBAK after the SAP mapping); tables too small
    to feed two lanes stay quiet.
    """
    findings: list[Finding] = []
    for site in analysis.sites:
        if site.stmt is None:
            continue
        stmt = site.stmt
        if stmt.single or stmt.up_to == 1:
            continue
        info = schema.lookup(stmt.table)
        if info is None or info.is_view:
            continue
        rows = info.rows
        if rows < FULL_SCAN_ROW_FLOOR:
            continue
        degree = min(_PARALLEL_MAX_DEGREE,
                     rows // _PARALLEL_MIN_ROWS_PER_LANE)
        if degree < 2:
            continue
        eq_driven = any(
            c.op == "=" and not c.col_col and not c.from_on
            and c.table == stmt.table
            and schema.has_index_on(stmt.table, c.column)
            for c in collect_conjuncts(stmt)
        )
        if eq_driven:
            continue  # an index narrows the scan; lanes would idle
        where_note = ("no WHERE clause" if stmt.where is None
                      else "no equality sarg on an indexed column")
        findings.append(Finding(
            rule="R009", severity="info",
            path=site.path, module=site.module, line=site.line,
            func=site.func,
            message=(
                f"{site.api} on {stmt.table} reads ~{rows:,} rows "
                f"({where_note}) — eligible for a partitioned parallel "
                f"scan at degree {degree} (run with --degree {degree})"
            ),
            paper=RULES_BY_ID["R009"].paper,
            estimate={"rows_scanned": rows, "suggested_degree": degree},
            key=_key("R009", site.module, site.func, site.sql or ""),
        ))
    return findings


def rule_abap_sort(analysis: ModuleAnalysis,
                   schema: SchemaInfo) -> list[Finding]:
    """R010: ``sorted()`` over fetched rows the engine could order.

    The application server pays ``n log n`` comparisons on rows the
    engine has already materialised; ORDER BY runs the same sort next
    to the data (with an index, for free).  ``sorted()`` over rows the
    extractor cannot trace stays quiet — only provable pushdowns fire.
    """
    findings: list[Finding] = []
    for idiom in analysis.idioms:
        if idiom.kind != "abap_sort":
            continue
        source = idiom.source
        if source is None or source.api == "exec_sql":
            continue
        if source.stmt is None:
            continue
        if source.stmt.order_by:
            continue  # engine already orders; sorted() is redundant
        rows = estimate_site_rows(source, schema)
        findings.append(Finding(
            rule="R010", severity=severity_for_rows(rows),
            path=idiom.path, module=idiom.module, line=idiom.line,
            func=idiom.func,
            message=(
                f"{idiom.detail} sorts ~{rows:,} fetched rows on the "
                f"application server — ORDER BY would run the sort in "
                f"the engine, next to the data"
            ),
            paper=RULES_BY_ID["R010"].paper,
            estimate={"rows_shipped": rows},
            key=_key("R010", idiom.module, idiom.func,
                     source.sql or idiom.detail),
        ))
    return findings


_RULE_FUNCS = [
    rule_select_in_loop,
    rule_select_star,
    rule_missing_key_prefix,
    rule_host_variable_trap,
    rule_abap_aggregation,
    rule_cluster_decode_in_loop,
    rule_partial_key_single,
    rule_unparseable,
    rule_parallel_candidate,
    rule_abap_sort,
]


def _key(rule: str, module: str, func: str, payload: str) -> str:
    """Baseline fingerprint: rule + scope + *normalised* content.

    The payload is whitespace-collapsed so reformatting a statement
    (or any edit that merely moves lines around) never churns the
    baseline — fingerprints follow what a site *does*, not where it
    sits in the file.
    """
    payload = " ".join(payload.split())
    digest = hashlib.sha1(
        f"{rule}|{module}|{func}|{payload}".encode()
    ).hexdigest()[:10]
    return f"{rule}:{module}:{func}:{digest}"


def run_rules(analyses: list[ModuleAnalysis],
              schema: SchemaInfo) -> list[Finding]:
    """Run the whole catalogue; rank by severity then estimated cost."""
    findings: list[Finding] = []
    for analysis in analyses:
        for rule_func in _RULE_FUNCS:
            findings.extend(rule_func(analysis, schema))
    # Disambiguate textually identical sites within one function.
    by_key: dict[str, int] = {}
    for finding in sorted(findings, key=lambda f: (f.module, f.line)):
        count = by_key.get(finding.key, 0)
        by_key[finding.key] = count + 1
        if count:
            finding.key = f"{finding.key}#{count + 1}"

    def magnitude(finding: Finding) -> float:
        est = finding.estimate
        return float(max(
            est.get("db_calls", 0), est.get("rows_shipped", 0),
            est.get("rows_scanned", 0), est.get("decodes", 0),
            est.get("cells", 0), est.get("table_rows", 0),
        ))

    findings.sort(key=lambda f: (
        _SEVERITY_RANK.get(f.severity, 3), -magnitude(f),
        f.module, f.line, f.rule,
    ))
    return findings
