"""Finding baseline: suppress-but-count the intentional idioms.

The 2.2 report family *deliberately* codes the paper's anti-patterns —
that is the whole experiment — so the lint gate cannot simply fail on
them.  Instead a committed JSON baseline lists the stable keys of
known findings; baselined findings are reported and counted but do
not fail the gate, while any finding whose key is not in the file is
"new" and does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.rules import Finding


def default_baseline_path() -> Path:
    """``lint-baseline.json`` at the repository root (next to src/)."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / "lint-baseline.json"


class Baseline:
    """A set of accepted finding keys with a short context note each."""

    def __init__(self, entries: dict[str, str] | None = None) -> None:
        self.entries: dict[str, str] = dict(entries or {})

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls(data.get("findings", {}))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls({
            f.key: f"{f.module}.{f.func}:{f.line} {f.rule} {f.severity}"
            for f in findings
        })

    def save(self, path: str | Path) -> None:
        payload = {
            "comment": (
                "Accepted lint findings. The 2.2 reports intentionally "
                "reproduce the paper's anti-patterns; regenerate with "
                "`python -m repro lint --write-baseline` after reviewing "
                "any new finding."
            ),
            "findings": dict(sorted(self.entries.items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Mark baselined findings in place; returns the new ones."""
        fresh: list[Finding] = []
        for finding in findings:
            finding.baselined = finding.key in self.entries
            if not finding.baselined:
                fresh.append(finding)
        return fresh

    def __len__(self) -> int:
        return len(self.entries)
