"""Differential verification: prove every rewrite tick-for-tick.

The harness compiles the rewritten report modules, builds *two*
identical SAP systems from one generated data set, runs every query of
a family on both — original code on one, rewritten code on the other —
and asserts:

(a) identical result rows (ordered, 2-decimal tolerance — the same
    comparator the TPC-D answer checks use), and
(b) the measured simulated-clock speedup, side by side with the cost
    model's prediction from the statement sites of both sources.

A rewrite that survives is *proven*, not plausible.  Failures are
recorded per query; any mismatch, run error, or refusal without a
stated reason fails the family.
"""

from __future__ import annotations

import math
import sys
import types
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import (
    ModuleAnalysis,
    analyze_source,
)
from repro.analysis.rewrite.planner import ModuleRewrite, plan_module
from repro.analysis.rules import (
    collect_conjuncts,
    estimate_loop_calls,
    estimate_site_rows,
)
from repro.core.powertest import build_sap_system
from repro.r3.appserver import R3Version
from repro.sim.params import SimParams
from repro.tpcd.answers import rows_match
from repro.tpcd.dbgen import generate

#: report families the rewriter runs over, with their support modules
#: (shared helpers the family calls into, rewritten alongside it)
FAMILIES: dict[str, dict] = {
    "open22": {"module": "open22", "support": ["common"]},
    "native22": {"module": "native22", "support": ["common"]},
}

#: speedup below which a directly-rewritten query counts as a
#: regression (small negative noise on untouched queries is fine;
#: a rewrite that slows its own query down is not)
MIN_DIRECT_SPEEDUP = 0.90

#: a rewrite predicted to win big (>= 2x) must show at least this much
#: measured speedup, or the prediction-vs-measurement contract fails
PREDICTED_BACKSTOP = 1.3

#: the backstop only judges queries whose original run does real work —
#: the prediction is asymptotic, and a query that finishes in a few
#: milliseconds at a tiny scale factor has nothing to amortise against
MIN_PREDICTION_BASIS_S = 0.1


def reports_dir() -> Path:
    import repro.reports

    return Path(repro.reports.__file__).resolve().parent


@dataclass
class QueryVerification:
    """One query's original-vs-rewritten differential outcome."""

    query: int
    changed: bool          # its own function was rewritten
    indirect: bool         # it calls a rewritten support function
    rows_match: bool | None = None
    orig_s: float | None = None
    new_s: float | None = None
    measured_speedup: float | None = None
    predicted_speedup: float | None = None
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "query": self.query, "changed": self.changed,
            "indirect": self.indirect, "rows_match": self.rows_match,
            "orig_s": self.orig_s, "new_s": self.new_s,
            "measured_speedup": self.measured_speedup,
            "predicted_speedup": self.predicted_speedup,
            "error": self.error,
        }


@dataclass
class FamilyVerification:
    """Everything the harness learned about one report family."""

    family: str
    modules: list[ModuleRewrite]
    queries: list[QueryVerification] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    executed: bool = False

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def applied(self) -> list:
        return [a for m in self.modules for a in m.applied]

    @property
    def refusals(self) -> list:
        return [r for m in self.modules for r in m.refusals]

    def as_dict(self) -> dict:
        return {
            "family": self.family, "ok": self.ok,
            "executed": self.executed,
            "modules": [m.as_dict() for m in self.modules],
            "queries": [q.as_dict() for q in self.queries],
            "problems": list(self.problems),
        }


# -- cost-model predictions -------------------------------------------------


def predicted_function_cost(analysis: ModuleAnalysis, func: str,
                            schema: SchemaInfo,
                            buffered: frozenset[str],
                            params: SimParams) -> float:
    """Predicted seconds the cost model charges one report function.

    Counts interface crossings, shipped rows and ABAP row handling for
    every statement site, plus sort/extract work for the grouping and
    sorting idioms — the same quantities the rewrites shift between
    layers, so the original/rewritten ratio predicts the speedup.
    """
    total = 0.0
    for site in analysis.sites:
        if site.func != func:
            continue
        calls = estimate_loop_calls(site.outer, schema, site.memoized)
        rows = estimate_site_rows(site, schema)
        if site.api == "select_single":
            per_call = params.roundtrip_s + params.ship_tuple_s
            if site.stmt is not None and site.stmt.table in buffered:
                bound = {
                    c.column for c in collect_conjuncts(site.stmt)
                    if c.op == "=" and not c.col_col
                    and c.table == site.stmt.table
                }
                if schema.is_full_key(site.stmt.table, bound):
                    per_call = params.cache_lookup_s
        elif site.api == "select":
            per_call = params.roundtrip_s + rows * (
                params.ship_tuple_s + params.abap_row_s)
        else:  # exec_sql
            per_call = params.roundtrip_s + rows * params.ship_tuple_s
        total += calls * per_call
    for idiom in analysis.idioms:
        if idiom.func != func:
            continue
        rows = estimate_site_rows(idiom.source, schema)
        log_rows = math.log2(rows) if rows > 1 else 1.0
        if idiom.kind == "group_aggregate":
            total += rows * (params.abap_extract_s
                             + 2 * params.abap_row_s)
            total += rows * log_rows * params.sort_cmp_s
        elif idiom.kind == "abap_sort":
            total += rows * log_rows * params.sort_cmp_s
    return total


# -- module loading ---------------------------------------------------------


def _exec_module(name: str, source: str, path: str) -> types.ModuleType:
    mod = types.ModuleType(name)
    mod.__file__ = path
    exec(compile(source, path, "exec"), mod.__dict__)
    return mod


def load_rewritten(main: ModuleRewrite,
                   support: list[ModuleRewrite]) -> types.ModuleType:
    """Exec the rewritten family module with its rewritten helpers.

    References to original support modules (or to their top-level
    functions) inside the family namespace are rebound to the
    rewritten counterparts, so cross-module rewrites compose.
    """
    rewritten_support: dict[str, types.ModuleType] = {}
    for mr in support:
        rewritten_support[f"repro.reports.{mr.module}"] = _exec_module(
            f"_rewritten_{mr.module}", mr.rewritten_source, mr.path)
    mod = _exec_module(f"_rewritten_{main.module}",
                       main.rewritten_source, main.path)
    for attr, value in list(mod.__dict__.items()):
        if isinstance(value, types.ModuleType) and \
                value.__name__ in sys.modules and \
                value.__name__ in rewritten_support:
            mod.__dict__[attr] = rewritten_support[value.__name__]
        elif callable(value):
            for orig_name, new_mod in rewritten_support.items():
                orig_mod = sys.modules.get(orig_name)
                if orig_mod is not None and \
                        getattr(orig_mod, getattr(value, "__name__", ""),
                                None) is value and \
                        hasattr(new_mod, value.__name__):
                    mod.__dict__[attr] = getattr(new_mod, value.__name__)
                    break
    return mod


# -- the harness ------------------------------------------------------------


def _function_names_used(source: str, func: str) -> set[str]:
    """Attribute/function names referenced inside ``func``'s body."""
    import ast

    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == func:
            return {
                sub.attr for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
            } | {
                sub.id for sub in ast.walk(node)
                if isinstance(sub, ast.Name)
            }
    return set()


def verify_family(family: str, scale_factor: float,
                  data=None) -> FamilyVerification:
    """Plan, execute and differential-check one report family."""
    import importlib

    spec = FAMILIES[family]
    schema = SchemaInfo(scale_factor)
    base = reports_dir()
    support = [plan_module(base / f"{name}.py", schema)
               for name in spec["support"]]
    main = plan_module(base / f"{spec['module']}.py", schema)
    result = FamilyVerification(family, [main] + support)

    for refusal in result.refusals:
        if not refusal.reason.strip():
            result.problems.append(
                f"{refusal.rule} refusal at {refusal.func}:{refusal.line} "
                f"carries no reason — refused-but-claimed-safe")

    support_changed = {
        fr.func for mr in support for fr in mr.functions.values()
        if fr.changed
    }
    if not main.changed and not support_changed:
        return result  # nothing to execute; planning evidence only

    orig_mod = importlib.import_module(f"repro.reports.{spec['module']}")
    new_mod = load_rewritten(main, support)
    if data is None:
        data = generate(scale_factor)
    r3_orig = build_sap_system(data, R3Version.V30)
    r3_new = build_sap_system(data, R3Version.V30)
    queries_orig = orig_mod.make_queries(scale_factor)
    queries_new = new_mod.make_queries(scale_factor)

    analysis_orig = analyze_source(main.original_source, main.module,
                                   main.path)
    analysis_new = analyze_source(main.rewritten_source, main.module,
                                  main.path)
    buffered = frozenset(
        a.table for a in result.applied if a.kind == "full_key")
    params = SimParams()

    result.executed = True
    for number in sorted(queries_orig):
        func = f"q{number}"
        ledger = main.functions.get(func)
        changed = ledger.changed if ledger else False
        used = _function_names_used(main.original_source, func)
        indirect = bool(support_changed & used)
        entry = QueryVerification(number, changed, indirect)
        result.queries.append(entry)
        try:
            span = r3_orig.measure()
            rows_a = queries_orig[number](r3_orig)
            entry.orig_s = span.stop()
            span = r3_new.measure()
            rows_b = queries_new[number](r3_new)
            entry.new_s = span.stop()
        except Exception as exc:  # noqa: BLE001 — report, then fail
            entry.error = f"{type(exc).__name__}: {exc}"
            result.problems.append(f"q{number} raised: {entry.error}")
            continue
        entry.rows_match = rows_match(rows_a, rows_b, ordered=True,
                                      places=2)
        if entry.new_s:
            entry.measured_speedup = entry.orig_s / entry.new_s
        if changed:
            pred_orig = predicted_function_cost(
                analysis_orig, func, schema, frozenset(), params)
            pred_new = predicted_function_cost(
                analysis_new, func, schema, buffered, params)
            if pred_orig > 0 and pred_new > 0:
                entry.predicted_speedup = pred_orig / pred_new
        if not entry.rows_match:
            result.problems.append(
                f"q{number} rows diverge between original and rewritten")
        if changed and entry.measured_speedup is not None and \
                entry.measured_speedup < MIN_DIRECT_SPEEDUP:
            result.problems.append(
                f"q{number} was rewritten but measures "
                f"{entry.measured_speedup:.2f}x — a regression")
        if entry.predicted_speedup is not None and \
                entry.predicted_speedup >= 2.0 and \
                entry.measured_speedup is not None and \
                entry.measured_speedup < PREDICTED_BACKSTOP and \
                entry.orig_s is not None and \
                entry.orig_s >= MIN_PREDICTION_BASIS_S:
            result.problems.append(
                f"q{number} predicted {entry.predicted_speedup:.1f}x "
                f"but measured only {entry.measured_speedup:.2f}x")
    return result


def verify_families(families: list[str],
                    scale_factor: float) -> list[FamilyVerification]:
    data = generate(scale_factor)
    return [verify_family(name, scale_factor, data=data)
            for name in families]
