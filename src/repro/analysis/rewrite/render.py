"""Open SQL AST -> statement text.

The inverse of :mod:`repro.r3.opensql.parser`: renders an
:class:`~repro.r3.opensql.ast.OSSelect` back into the space-separated
Open SQL surface syntax, so transforms can manipulate statements as
ASTs and emit source code that round-trips through the parser.  Every
rendered statement is re-parsed by the planner as a self-check.
"""

from __future__ import annotations

import re

from repro.r3.opensql.ast import (
    OSAgg,
    OSBetween,
    OSBool,
    OSComp,
    OSCond,
    OSField,
    OSHost,
    OSIn,
    OSLike,
    OSLiteral,
    OSNot,
    OSOperand,
    OSSelect,
    OSStar,
)

_NUMBER = re.compile(r"^\d+(\.\d+)?$")


class RenderError(Exception):
    """The AST holds a value the Open SQL grammar cannot spell."""


def _literal(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        raise RenderError("Open SQL has no boolean literals")
    if isinstance(value, (int, float)):
        text = repr(value)
        if not _NUMBER.match(text):
            raise RenderError(f"unrepresentable number literal {text}")
        return text
    raise RenderError(f"unrepresentable literal {value!r}")


def _operand(op: OSOperand) -> str:
    if isinstance(op, OSField):
        return op.display()
    if isinstance(op, OSHost):
        return f":{op.name}"
    if isinstance(op, OSLiteral):
        return _literal(op.value)
    raise RenderError(f"unrenderable operand {op!r}")


def _cond(cond: OSCond) -> str:
    if isinstance(cond, OSComp):
        return f"{cond.left.display()} {cond.op} {_operand(cond.right)}"
    if isinstance(cond, OSLike):
        op = "NOT LIKE" if cond.negated else "LIKE"
        return f"{cond.left.display()} {op} {_operand(cond.pattern)}"
    if isinstance(cond, OSIn):
        op = "NOT IN" if cond.negated else "IN"
        items = ", ".join(_operand(item) for item in cond.items)
        return f"{cond.left.display()} {op} ( {items} )"
    if isinstance(cond, OSBetween):
        op = "NOT BETWEEN" if cond.negated else "BETWEEN"
        return (f"{cond.left.display()} {op} {_operand(cond.low)} "
                f"AND {_operand(cond.high)}")
    if isinstance(cond, OSBool):
        return (f"{_bool_child(cond.left, cond.op)} {cond.op} "
                f"{_bool_child(cond.right, cond.op)}")
    if isinstance(cond, OSNot):
        inner = _cond(cond.operand)
        if isinstance(cond.operand, (OSBool, OSNot)):
            inner = f"( {inner} )"
        return f"NOT {inner}"
    raise RenderError(f"unrenderable condition {cond!r}")


def _bool_child(child: OSCond, parent_op: str) -> str:
    # AND binds tighter than OR: an OR under an AND needs parentheses
    # (and parenthesising every boolean child would also round-trip,
    # but keeps the generated SQL noisier than the hand-written form).
    text = _cond(child)
    if isinstance(child, OSBool) and parent_op == "AND" and child.op == "OR":
        return f"( {text} )"
    return text


def _item(item: OSField | OSAgg | OSStar) -> str:
    if isinstance(item, OSStar):
        return "*"
    if isinstance(item, OSField):
        return item.display()
    if isinstance(item, OSAgg):
        arg = "*" if item.arg is None else item.arg.display()
        return f"{item.func}( {arg} )"
    raise RenderError(f"unrenderable select item {item!r}")


def render_select(stmt: OSSelect) -> str:
    """Render ``stmt`` as Open SQL text that re-parses to the same AST."""
    parts = ["SELECT"]
    if stmt.single:
        parts.append("SINGLE")
    parts.extend(_item(item) for item in stmt.items)
    parts.append("FROM")
    parts.append(stmt.table)
    if stmt.alias:
        parts.extend(["AS", stmt.alias])
    for join in stmt.joins:
        parts.extend(["INNER", "JOIN", join.table])
        if join.alias:
            parts.extend(["AS", join.alias])
        parts.append("ON")
        parts.append(" AND ".join(_cond(comp) for comp in join.on))
    if stmt.where is not None:
        parts.extend(["WHERE", _cond(stmt.where)])
    if stmt.group_by:
        parts.append("GROUP BY")
        parts.extend(f.display() for f in stmt.group_by)
    if stmt.order_by:
        parts.append("ORDER BY")
        for field, descending in stmt.order_by:
            parts.append(field.display())
            if descending:
                parts.append("DESCENDING")
    if stmt.up_to is not None:
        parts.extend(["UP", "TO", str(stmt.up_to), "ROWS"])
    return " ".join(parts)
