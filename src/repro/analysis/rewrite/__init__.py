"""Rule-driven report rewriting: the SQL Inspector grows hands.

``repro.analysis`` (R001-R010) *flags* 2.2-style anti-patterns; this
package *fixes* them.  Each transform is an AST-to-AST rewrite keyed to
the rule that triggered it:

========  ==================  ============================================
Rule      Transform           2.2 idiom -> 3.0 idiom
========  ==================  ============================================
R001      join_merge          SELECT SINGLE inside a SELECT loop ->
                              single pushed INNER JOIN
R001      hoist               loop-invariant SELECT -> moved before loop
R005      group_pushdown      ABAP-side group_aggregate() -> GROUP BY
R007      full_key            partial-key SELECT SINGLE -> full key via
                              installation constants + table buffering
R010      order_pushdown      ABAP sorted() over fetched rows -> ORDER BY
========  ==================  ============================================

The planner (:mod:`.planner`) discovers candidates per report function,
resolves conflicts (a join merge supersedes a full-key rewrite of the
same probe), applies them in dependency order and records *refusals*
with reasons whenever a safety precondition fails — unsafe sites stay
flagged, never rewritten.  The differential harness (:mod:`.verify`)
compiles the rewritten source, runs original and rewritten reports
against the same seeded database and asserts identical rows plus the
cost-model-predicted and clock-measured speedup.
"""

from repro.analysis.rewrite.planner import ModuleRewrite, plan_module
from repro.analysis.rewrite.render import render_select
from repro.analysis.rewrite.transforms import (
    INSTALLATION_KEY_CONSTANTS,
    Applied,
    Refusal,
)

__all__ = [
    "Applied",
    "INSTALLATION_KEY_CONSTANTS",
    "ModuleRewrite",
    "Refusal",
    "plan_module",
    "render_select",
]
