"""Module-level rewrite planning.

:func:`plan_module` parses a report module, runs the
:class:`~repro.analysis.rewrite.transforms.FunctionTransformer` over
every top-level report function (class-wrapped reports keep their
memo state and are left alone) and returns a :class:`ModuleRewrite`
bundling the rewritten source with the per-function applied/refused
ledger.  The rewritten module is compiled as a syntax self-check, and
diffs are rendered against the *normalised* original (``ast.unparse``
of the pristine tree) so they show only semantic changes, never
formatting noise.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import _module_constants
from repro.analysis.rewrite.transforms import (
    Applied,
    FunctionTransformer,
    Refusal,
)


@dataclass
class FunctionRewrite:
    """The rewrite ledger of one report function."""

    func: str
    applied: list[Applied] = field(default_factory=list)
    refusals: list[Refusal] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)

    def as_dict(self) -> dict:
        return {
            "func": self.func,
            "applied": [a.as_dict() for a in self.applied],
            "refusals": [r.as_dict() for r in self.refusals],
        }


@dataclass
class ModuleRewrite:
    """One module's planned rewrite: sources plus the full ledger."""

    module: str
    path: str
    original_source: str
    original_normalized: str
    rewritten_source: str
    functions: dict[str, FunctionRewrite]

    @property
    def changed(self) -> bool:
        return any(f.changed for f in self.functions.values())

    @property
    def applied(self) -> list[Applied]:
        return [a for f in self.functions.values() for a in f.applied]

    @property
    def refusals(self) -> list[Refusal]:
        return [r for f in self.functions.values() for r in f.refusals]

    def diff(self) -> str:
        """Unified diff, normalised original vs rewritten."""
        return "".join(difflib.unified_diff(
            self.original_normalized.splitlines(keepends=True),
            self.rewritten_source.splitlines(keepends=True),
            fromfile=f"a/{self.module}.py",
            tofile=f"b/{self.module}.py",
        ))

    def as_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "changed": self.changed,
            "functions": [
                f.as_dict() for f in self.functions.values()
                if f.applied or f.refusals
            ],
        }


def plan_module(path: str | Path, schema: SchemaInfo,
                module: str | None = None) -> ModuleRewrite:
    """Plan every safe rewrite for the module at ``path``."""
    path = Path(path)
    source = path.read_text()
    if module is None:
        module = path.stem
    tree = ast.parse(source, filename=str(path))
    original_normalized = ast.unparse(ast.parse(source)) + "\n"
    env = _module_constants(tree)

    functions: dict[str, FunctionRewrite] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        transformer = FunctionTransformer(node, env, schema)
        transformer.run()
        if transformer.applied or transformer.refusals:
            functions[node.name] = FunctionRewrite(
                node.name, transformer.applied, transformer.refusals)

    rewritten_source = ast.unparse(tree) + "\n"
    compile(rewritten_source, str(path), "exec")  # syntax self-check
    return ModuleRewrite(
        module=module,
        path=str(path),
        original_source=source,
        original_normalized=original_normalized,
        rewritten_source=rewritten_source,
        functions=functions,
    )
