"""Rendering for rewrite plans and verification runs.

Produces the bug-tracker-style ``repro-rewrite-v1`` JSON document (the
CI artifact) and a human text summary of what was applied, what was
refused and why, and how every rewritten query measured against its
prediction.
"""

from __future__ import annotations

import json

from repro.analysis.rewrite.verify import FamilyVerification

SCHEMA_NAME = "repro-rewrite-v1"


def build_report(results: list[FamilyVerification],
                 scale_factor: float, checked: bool) -> dict:
    applied = [a for r in results for a in r.applied]
    refused = [r for fam in results for r in fam.refusals]
    failed = [p for r in results for p in r.problems]
    return {
        "schema": SCHEMA_NAME,
        "scale_factor": scale_factor,
        "checked": checked,
        "summary": {
            "applied": len(applied),
            "refused": len(refused),
            "failed": len(failed),
            "rules_applied": sorted({a.rule for a in applied}),
            "ok": all(r.ok for r in results),
        },
        "families": [r.as_dict() for r in results],
    }


def render_json(results: list[FamilyVerification], scale_factor: float,
                checked: bool) -> str:
    return json.dumps(build_report(results, scale_factor, checked),
                      indent=2, sort_keys=True)


def render_text(results: list[FamilyVerification],
                checked: bool) -> str:
    lines: list[str] = []
    for fam in results:
        lines.append(f"family {fam.family}: "
                     f"{len(fam.applied)} applied, "
                     f"{len(fam.refusals)} refused"
                     + ("" if fam.ok else
                        f", {len(fam.problems)} problem(s)"))
        for module in fam.modules:
            for fn in module.functions.values():
                for a in fn.applied:
                    lines.append(
                        f"  + {a.rule} {a.kind:<14} "
                        f"{module.module}.{a.func}:{a.line} "
                        f"[{a.table}] {a.detail}")
        for module in fam.modules:
            for fn in module.functions.values():
                for r in fn.refusals:
                    lines.append(
                        f"  - {r.rule} {r.kind:<14} "
                        f"{module.module}.{r.func}:{r.line} "
                        f"refused: {r.reason}")
        if fam.executed:
            lines.append("  query  rows   measured  predicted")
            for q in fam.queries:
                if q.error:
                    lines.append(f"  q{q.query:<5} ERROR: {q.error}")
                    continue
                if not (q.changed or q.indirect):
                    continue
                tag = "direct" if q.changed else "indirect"
                measured = (f"{q.measured_speedup:6.2f}x"
                            if q.measured_speedup is not None else
                            "      -")
                predicted = (f"{q.predicted_speedup:6.2f}x"
                             if q.predicted_speedup is not None else
                             "      -")
                match = "ok " if q.rows_match else "BAD"
                lines.append(f"  q{q.query:<5} {match}   {measured}  "
                             f"{predicted}   ({tag})")
        for problem in fam.problems:
            lines.append(f"  ! {problem}")
    total_applied = sum(len(r.applied) for r in results)
    rules = sorted({a.rule for r in results for a in r.applied})
    verdict = "" if not checked else (
        " — verification PASSED" if all(r.ok for r in results)
        else " — verification FAILED")
    lines.append(f"{total_applied} rewrite(s) applied across "
                 f"{len(results)} family(ies), rules: "
                 f"{', '.join(rules) or 'none'}{verdict}")
    return "\n".join(lines)
