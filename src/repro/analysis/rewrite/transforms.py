"""The rewrite rules: Python-AST surgery keyed to Inspector rule IDs.

A :class:`FunctionTransformer` owns one top-level report function and
applies, in dependency order:

1. ``join_merge`` (R001) — a ``SELECT SINGLE`` probe executed per row
   of an enclosing SELECT loop is fused into the outer statement as an
   INNER JOIN; the loop unpacks the joined columns instead of probing.
2. ``hoist`` (R001) — a loop-invariant SELECT moves in front of the
   outermost loop it does not depend on.
3. ``group_pushdown`` (R005) — a ``group_aggregate`` fold of pushable
   aggregates becomes GROUP BY in the feeding SELECT.
4. ``order_pushdown`` (R010) — ``sorted()`` over fetched rows becomes
   ORDER BY (chained after a group pushdown, or standalone).
5. ``full_key`` (R007) — a partial-key ``SELECT SINGLE`` whose missing
   key columns carry installation-wide constants is completed to the
   full key and the table is activated for buffering.

Every precondition failure is recorded as a :class:`Refusal` with the
reason — unsafe sites stay flagged, never rewritten.  The transformer
only ever *narrows* statements it fully parsed; rendered SQL is parsed
back as a self-check before it replaces the original text.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.extractor import _resolve_str
from repro.analysis.rewrite.render import render_select
from repro.r3.ddic import TableKind
from repro.r3.errors import OpenSqlError
from repro.r3.opensql.ast import (
    OSAgg,
    OSBetween,
    OSBool,
    OSComp,
    OSCond,
    OSField,
    OSHost,
    OSIn,
    OSLike,
    OSLiteral,
    OSJoin,
    OSNot,
    OSSelect,
)
from repro.r3.opensql.parser import parse_open_sql
from repro.sapschema.mapping import LANGUAGE

#: key columns whose value is fixed by the installation itself — the
#: SAP mapping writes every EINE row for purchasing org 1000 / info
#: category 0 / plant 0001, and every STXL text under text id 0001 in
#: the login language with a single line (SRTF2 = 0).  Completing a
#: partial key with these constants selects the same row the partial
#: probe found, but through the table buffer.
INSTALLATION_KEY_CONSTANTS: dict[str, dict[str, object]] = {
    "eine": {"ekorg": "1000", "esokz": "0", "werks": "0001"},
    "stxl": {"tdid": "0001", "tdspras": LANGUAGE, "srtf2": 0},
}

#: bytes granted to a table buffer activated by a full_key rewrite
BUFFER_BYTES = 1 << 22

_CHARGE_METHODS = {"charge_abap", "charge_decode"}


@dataclass
class Applied:
    """One rewrite that went through."""

    rule: str
    kind: str
    func: str
    line: int
    table: str
    detail: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule, "kind": self.kind, "func": self.func,
            "line": self.line, "table": self.table, "detail": self.detail,
        }


@dataclass
class Refusal:
    """A flagged site the planner declined to touch, with the reason."""

    rule: str
    kind: str
    func: str
    line: int
    reason: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule, "kind": self.kind, "func": self.func,
            "line": self.line, "reason": self.reason,
        }


class RewriteError(Exception):
    """An invariant the transformer relies on failed mid-apply."""


# -- small AST helpers ------------------------------------------------------


def _is_open_sql_call(call: ast.Call) -> str | None:
    """'select' / 'select_single' for ``<x>.open_sql.<method>(...)``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in ("select", "select_single"):
        return None
    base = func.value
    if isinstance(base, ast.Attribute) and base.attr == "open_sql":
        return func.attr
    return None


def _system_name(call: ast.Call) -> str | None:
    """The R3System variable of ``r3.open_sql.select...`` (or None)."""
    func = call.func
    if isinstance(func, ast.Attribute) and \
            isinstance(func.value, ast.Attribute) and \
            isinstance(func.value.value, ast.Name):
        return func.value.value.id
    return None


def _is_pure(node: ast.expr) -> bool:
    """No calls/awaits/comprehensions — safe to keep before a merge."""
    return not any(
        isinstance(sub, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom,
                         ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp, ast.NamedExpr))
        for sub in ast.walk(node)
    )


def _stored_names(node: ast.AST) -> set[str]:
    """Every name assigned anywhere under ``node`` (incl. loop targets)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            out.add(sub.id)
    return out


def _loaded_names(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _target_names(target: ast.expr) -> list[str] | None:
    """Loop-target names, or None if the target is not plain names."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Tuple) and all(
        isinstance(elt, ast.Name) for elt in target.elts
    ):
        return [elt.id for elt in target.elts]  # type: ignore[union-attr]
    return None


def _qualify_cond(cond: OSCond, alias: str) -> OSCond:
    """Give every unqualified field in a condition tree an alias."""
    def qf(f: OSField) -> OSField:
        return f if f.alias else OSField(alias, f.name)

    if isinstance(cond, OSComp):
        right = cond.right
        if isinstance(right, OSField):
            right = qf(right)
        return OSComp(qf(cond.left), cond.op, right)
    if isinstance(cond, OSLike):
        return OSLike(qf(cond.left), cond.pattern, cond.negated)
    if isinstance(cond, OSIn):
        return OSIn(qf(cond.left), list(cond.items), cond.negated)
    if isinstance(cond, OSBetween):
        return OSBetween(qf(cond.left), cond.low, cond.high, cond.negated)
    if isinstance(cond, OSBool):
        return OSBool(cond.op, _qualify_cond(cond.left, alias),
                      _qualify_cond(cond.right, alias))
    if isinstance(cond, OSNot):
        return OSNot(_qualify_cond(cond.operand, alias))
    raise RewriteError(f"unknown condition node {cond!r}")


def _qualify_select(stmt: OSSelect, alias: str) -> None:
    """Qualify a join-free statement's fields in place (items, WHERE,
    GROUP BY, ORDER BY) so a join can be attached unambiguously."""
    stmt.alias = stmt.alias or alias
    own = stmt.alias
    stmt.items = [
        OSField(own, item.name)
        if isinstance(item, OSField) and not item.alias else item
        for item in stmt.items
    ]
    if stmt.where is not None:
        stmt.where = _qualify_cond(stmt.where, own)
    stmt.group_by = [
        OSField(own, f.name) if not f.alias else f for f in stmt.group_by
    ]
    stmt.order_by = [
        (OSField(own, f.name) if not f.alias else f, desc)
        for f, desc in stmt.order_by
    ]


# -- per-function transformer ----------------------------------------------


@dataclass
class _LoopCtx:
    """One enclosing loop during the scan."""

    node: ast.For | ast.While
    parent_body: list[ast.stmt]
    targets: list[str] | None  # None: not plain names / while loop
    select_call: ast.Call | None  # the SELECT the loop iterates, if any
    select_stmt: OSSelect | None


class FunctionTransformer:
    """Discover and apply every rewrite within one report function."""

    def __init__(self, fn: ast.FunctionDef, env: dict[str, str],
                 schema: SchemaInfo) -> None:
        self.fn = fn
        self.env = env
        self.schema = schema
        self.applied: list[Applied] = []
        self.refusals: list[Refusal] = []
        self._names = {
            n.id for n in ast.walk(fn) if isinstance(n, ast.Name)
        } | {a.arg for a in fn.args.args}
        self._parents: dict[int, ast.AST] = {}
        self._consumed: set[int] = set()       # probe calls merged away
        self._merge_targets: set[int] = set()  # outer selects extended
        self._pending: list[tuple[Refusal, int]] = []
        self._buffered: set[str] = set()       # tables given a buffer

    # -- entry point --------------------------------------------------------

    def run(self) -> None:
        self._index_parents()
        self._scan_loops(self.fn.body, [])
        # Multi-row refusals for selects that ended up as the *target*
        # of a merge describe statements that no longer exist; drop.
        self.refusals.extend(
            r for r, call_id in self._pending
            if call_id not in self._merge_targets
        )
        self._pending = []
        self._push_group_aggregates()
        self._push_orders()
        self._complete_partial_keys()
        ast.fix_missing_locations(self.fn)

    # -- shared plumbing ----------------------------------------------------

    def _index_parents(self) -> None:
        self._parents = {
            id(child): parent
            for parent in ast.walk(self.fn)
            for child in ast.iter_child_nodes(parent)
        }

    def _swap_expr(self, old: ast.expr, new: ast.expr) -> None:
        parent = self._parents.get(id(old))
        if parent is None:
            raise RewriteError("lost track of a node's parent")
        for name, value in ast.iter_fields(parent):
            if value is old:
                setattr(parent, name, new)
                self._parents[id(new)] = parent
                return
            if isinstance(value, list):
                for index, item in enumerate(value):
                    if item is old:
                        value[index] = new
                        self._parents[id(new)] = parent
                        return
        raise RewriteError("node not found under its parent")

    def _sql_of(self, call: ast.Call) -> tuple[str | None, OSSelect | None]:
        if not call.args:
            return None, None
        text, dynamic = _resolve_str(call.args[0], self.env)
        if text is None or dynamic:
            return None, None
        try:
            return text, parse_open_sql(text)
        except OpenSqlError:
            return text, None

    def _set_sql(self, call: ast.Call, stmt: OSSelect) -> str:
        text = render_select(stmt)
        parse_open_sql(text)  # self-check: generated SQL must re-parse
        call.args[0] = ast.Constant(text)
        return text

    def _fresh(self, base: str) -> str:
        name = base
        serial = 2
        while name in self._names:
            name = f"{base}_{serial}"
            serial += 1
        self._names.add(name)
        return name

    def _name_count(self, name: str) -> int:
        return sum(
            1 for n in ast.walk(self.fn)
            if isinstance(n, ast.Name) and n.id == name
        )

    # ======================================================================
    # R001: join merge + hoisting over SELECT loops
    # ======================================================================

    def _scan_loops(self, body: list[ast.stmt],
                    loops: list[_LoopCtx]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.For):
                ctx = self._loop_ctx(stmt, body)
                self._visit_loop_body(stmt, ctx, loops + [ctx])
            elif isinstance(stmt, ast.While):
                ctx = _LoopCtx(stmt, body, None, None, None)
                self._scan_loops(stmt.body, loops + [ctx])
            elif isinstance(stmt, (ast.If,)):
                self._scan_loops(stmt.body, loops)
                self._scan_loops(stmt.orelse, loops)
            elif isinstance(stmt, (ast.With, ast.Try)):
                for field_name in ("body", "orelse", "finalbody"):
                    self._scan_loops(getattr(stmt, field_name, []), loops)
                for handler in getattr(stmt, "handlers", []):
                    self._scan_loops(handler.body, loops)

    def _loop_ctx(self, node: ast.For,
                  parent_body: list[ast.stmt]) -> _LoopCtx:
        call = self._iter_select_call(node.iter)
        stmt = None
        if call is not None:
            _text, stmt = self._sql_of(call)
            if stmt is None:
                call = None
        return _LoopCtx(node, parent_body, _target_names(node.target),
                        call, stmt)

    def _iter_select_call(self, iter_expr: ast.expr) -> ast.Call | None:
        """The ``open_sql.select`` call a ``for ... in X.rows`` reads."""
        if not (isinstance(iter_expr, ast.Attribute)
                and iter_expr.attr == "rows"):
            return None
        base = iter_expr.value
        if isinstance(base, ast.Call) and _is_open_sql_call(base) == "select":
            return base
        if isinstance(base, ast.Name):
            assign = self._single_select_assign(base.id)
            if assign is not None and self._name_count(base.id) == 2:
                return assign.value  # type: ignore[return-value]
        return None

    def _single_select_assign(self, name: str) -> ast.Assign | None:
        """The unique ``name = open_sql.select(...)`` assign, if any."""
        found: ast.Assign | None = None
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id == name:
                if found is not None:
                    return None
                if isinstance(node.value, ast.Call) and \
                        _is_open_sql_call(node.value) == "select":
                    found = node
                else:
                    return None
        return found

    def _visit_loop_body(self, for_node: ast.For, ctx: _LoopCtx,
                         loops: list[_LoopCtx]) -> None:
        for stmt in list(for_node.body):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call) \
                    and _is_open_sql_call(stmt.value) is not None:
                self._consider_probe(stmt, stmt.value, for_node, ctx, loops)
        # Deeper statements: conditional/memoised probes only get a
        # refusal (they are not executed once per loop row by design).
        self._scan_nested(for_node.body, loops, direct_parent=for_node)

    def _scan_nested(self, body: list[ast.stmt], loops: list[_LoopCtx],
                     direct_parent: ast.For) -> None:
        for stmt in body:
            if isinstance(stmt, ast.For):
                ctx = self._loop_ctx(stmt, body)
                self._visit_loop_body(stmt, ctx, loops + [ctx])
            elif isinstance(stmt, ast.While):
                ctx = _LoopCtx(stmt, body, None, None, None)
                self._scan_loops(stmt.body, loops + [ctx])
            elif isinstance(stmt, ast.If):
                self._refuse_conditional_probes(stmt, loops)
                for sub in (stmt.body, stmt.orelse):
                    self._scan_nested(sub, loops, direct_parent)
            elif isinstance(stmt, (ast.With, ast.Try)):
                for field_name in ("body", "orelse", "finalbody"):
                    self._scan_nested(getattr(stmt, field_name, []),
                                      loops, direct_parent)
                for handler in getattr(stmt, "handlers", []):
                    self._scan_nested(handler.body, loops, direct_parent)

    def _refuse_conditional_probes(self, if_stmt: ast.If,
                                   loops: list[_LoopCtx]) -> None:
        memo_guard = any(
            isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.NotIn, ast.NotEq)) for op in node.ops
            )
            for node in ast.walk(if_stmt.test)
        )
        for sub in if_stmt.body:
            if isinstance(sub, ast.If):
                continue  # handled by recursion in _scan_nested
            for node in ast.walk(sub):
                if isinstance(node, ast.Call) and \
                        _is_open_sql_call(node) is not None and \
                        not isinstance(node.func, ast.Name):
                    reason = (
                        "memo-amortised probe (the cursor cache already "
                        "pays most of the cost; a join would re-fetch "
                        "per row)" if memo_guard else
                        "probe is conditionally executed inside the "
                        "loop body — a join would change when it runs"
                    )
                    self.refusals.append(Refusal(
                        "R001", "join_merge", self.fn.name, node.lineno,
                        reason,
                    ))

    def _consider_probe(self, assign: ast.Assign, call: ast.Call,
                        for_node: ast.For, ctx: _LoopCtx,
                        loops: list[_LoopCtx]) -> None:
        api = _is_open_sql_call(call)
        line = call.lineno
        var = assign.targets[0].id  # type: ignore[union-attr]

        def refuse(reason: str) -> None:
            self.refusals.append(Refusal(
                "R001", "join_merge", self.fn.name, line, reason))

        if api == "select":
            if not self._try_hoist(assign, call, for_node, loops):
                self._pending.append((Refusal(
                    "R001", "join_merge", self.fn.name, line,
                    "inner SELECT returns multiple rows per outer row "
                    "(loop fusion into a join is not supported)",
                ), id(call)))
            return

        text, probe = self._sql_of(call)
        if probe is None:
            refuse("statement text is not statically resolvable"
                   if text is None else
                   f"embedded Open SQL fails to parse: {text[:60]}...")
            return
        if probe.joins or probe.has_aggregates or probe.group_by:
            refuse("probe already uses joins or aggregates")
            return
        if ctx.select_call is None or ctx.select_stmt is None:
            if not self._try_hoist(assign, call, for_node, loops):
                refuse("enclosing loop does not iterate a SELECT result")
            return
        if len(loops) > 1:
            # The iterated SELECT itself runs once per enclosing-loop
            # row; a join rebuilt on every execution costs more than
            # the handful of probes each execution would save.
            refuse("outer SELECT executes inside an enclosing loop — "
                   "the per-execution join build would outweigh the "
                   "probes saved")
            return
        if ctx.targets is None:
            refuse("loop target is not a plain tuple of names")
            return
        if len(ctx.targets) == 1 and not isinstance(for_node.target,
                                                    ast.Tuple):
            refuse("loop variable binds the whole row, not columns")
            return

        outer_call = ctx.select_call
        _outer_text, outer = self._sql_of(outer_call)
        if outer is None:
            refuse("outer SELECT text is not statically resolvable")
            return
        if outer.has_aggregates or outer.group_by:
            refuse("outer SELECT aggregates — join would change groups")
            return
        if outer.single or outer.up_to is not None:
            refuse("outer SELECT limits rows — join would change which")
            return
        if outer.order_by:
            refuse("outer SELECT has ORDER BY — the join need not "
                   "preserve it")
            return
        outer_items = outer.items
        if not all(isinstance(i, OSField) for i in outer_items):
            refuse("outer SELECT list is not plain columns")
            return
        if len(outer_items) != len(ctx.targets):
            refuse("loop unpacking does not match the outer select list")
            return

        # Decompose the probe's WHERE into join/residual conjuncts.
        host_map = self._host_name_map(call)
        if host_map is None:
            refuse("probe host variables are not simple names")
            return
        conjuncts = ([] if probe.where is None
                     else _flatten_and_cond(probe.where))
        if conjuncts is None:
            refuse("probe WHERE clause is disjunctive (OR/NOT)")
            return
        target_pos = {name: idx for idx, name in enumerate(ctx.targets)}
        on_pairs: list[tuple[str, str, str]] = []  # (col, op, outer col)
        literal_on: list[OSComp] = []
        residual: list[OSCond] = []
        eq_cols: set[str] = set()
        for conj in conjuncts:
            if isinstance(conj, OSComp) and isinstance(conj.right, OSHost):
                bound = host_map.get(conj.right.name)
                if bound is None or bound not in target_pos:
                    refuse(f"host variable :{conj.right.name} does not "
                           f"come from the loop row")
                    return
                outer_col = outer_items[target_pos[bound]]
                assert isinstance(outer_col, OSField)
                on_pairs.append((conj.left.name, conj.op, outer_col.name))
                if conj.op == "=":
                    eq_cols.add(conj.left.name)
            elif isinstance(conj, OSComp) and \
                    isinstance(conj.right, OSLiteral):
                literal_on.append(conj)
                if conj.op == "=":
                    eq_cols.add(conj.left.name)
            elif isinstance(conj, (OSLike, OSIn, OSBetween)) and \
                    _literal_only(conj):
                residual.append(conj)
            else:
                refuse("probe predicate mixes fields or non-loop hosts")
                return
        if not any(op == "=" for _c, op, _o in on_pairs):
            refuse("no equality link between probe and loop row")
            return

        unique, why = self._probe_unique(probe.table, eq_cols)
        if not unique:
            refuse(f"probe may match several {probe.table} rows ({why})")
            return
        discipline = self._none_discipline(var, for_node, assign)
        if discipline == "handled":
            refuse(f"result {var!r} is None-tested — the inner join "
                   f"would drop rows the report handles explicitly")
            return
        shadowed = self._unsafe_preamble(for_node, assign,
                                         set(target_pos))
        if shadowed is not None:
            refuse(shadowed)
            return

        self._apply_merge(assign, call, probe, for_node, ctx, outer_call,
                          outer, on_pairs, literal_on, residual, var,
                          why, line)

    def _host_name_map(self, call: ast.Call) -> dict[str, str] | None:
        """host var -> report variable name, for a dict-literal binding."""
        if len(call.args) < 2:
            return {}
        bind = call.args[1]
        if not isinstance(bind, ast.Dict):
            return None
        out: dict[str, str] = {}
        for key, value in zip(bind.keys, bind.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Name)):
                return None
            out[key.value.lower()] = value.id
        return out

    def _probe_unique(self, table: str,
                      eq_cols: set[str]) -> tuple[bool, str]:
        info = self.schema.lookup(table)
        if info is None or not info.key_fields:
            return False, "table unknown to the DDIC snapshot"
        key = list(info.key_fields)
        if set(key) <= eq_cols:
            return True, "full key bound"
        prefix: list[str] = []
        for column in key:
            if column in eq_cols:
                prefix.append(column)
            else:
                break
        if prefix:
            for other in self.schema.tables.values():
                if other.is_view or other.name == table:
                    continue
                if list(other.key_fields) == prefix and \
                        other.rows == info.rows:
                    return True, (
                        f"key prefix ({', '.join(prefix)}) is 1:1 — "
                        f"{table} has exactly one row per {other.name} key"
                    )
        return False, "bound columns do not determine a unique row"

    def _none_discipline(self, var: str, for_node: ast.For,
                         assign: ast.Assign) -> str:
        """How the report treats a None probe result.

        - ``"unused"``: never None-tested — the subscripting report
          assumes a match; the join encodes that assumption.
        - ``"filter"``: None only ever *skips* the row (an immediate
          ``if var is None: continue`` or a single trailing
          ``if var is not None [and ...]:`` guard with no else) — the
          inner join dropping matchless rows is behaviour-identical.
        - ``"handled"``: anything else; the merge must refuse.
        """
        if not self._none_tested(var):
            return "unused"
        index = for_node.body.index(assign)
        rest = for_node.body[index + 1:]
        in_rest = {id(n) for stmt in rest for n in ast.walk(stmt)}
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Name) and node.id == var and \
                    id(node) not in in_rest and \
                    node is not assign.targets[0]:
                return "handled"
        if rest and self._is_none_skip(rest[0], var):
            return "filter"
        if len(rest) == 1 and isinstance(rest[0], ast.If) and \
                not rest[0].orelse and \
                self._guards_not_none(rest[0].test, var):
            return "filter"
        return "handled"

    @staticmethod
    def _is_none_skip(stmt: ast.stmt, var: str) -> bool:
        """``if var is None: continue`` with no else."""
        return (isinstance(stmt, ast.If) and not stmt.orelse
                and len(stmt.body) == 1
                and isinstance(stmt.body[0], ast.Continue)
                and isinstance(stmt.test, ast.Compare)
                and isinstance(stmt.test.left, ast.Name)
                and stmt.test.left.id == var
                and len(stmt.test.ops) == 1
                and isinstance(stmt.test.ops[0], ast.Is)
                and isinstance(stmt.test.comparators[0], ast.Constant)
                and stmt.test.comparators[0].value is None)

    @staticmethod
    def _guards_not_none(test: ast.expr, var: str) -> bool:
        """``var is not None`` alone or as the first AND conjunct
        (short-circuit keeps later conjuncts off the None path)."""
        def is_not_none(node: ast.expr) -> bool:
            return (isinstance(node, ast.Compare)
                    and isinstance(node.left, ast.Name)
                    and node.left.id == var
                    and len(node.ops) == 1
                    and isinstance(node.ops[0], ast.IsNot)
                    and isinstance(node.comparators[0], ast.Constant)
                    and node.comparators[0].value is None)

        if is_not_none(test):
            return True
        return (isinstance(test, ast.BoolOp)
                and isinstance(test.op, ast.And)
                and bool(test.values)
                and is_not_none(test.values[0])
                and all(_is_pure(v) for v in test.values[1:]))

    def _none_tested(self, var: str) -> bool:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                names = {
                    o.id for o in operands if isinstance(o, ast.Name)
                }
                if var in names and any(
                    isinstance(o, ast.Constant) and o.value is None
                    for o in operands
                ):
                    return True
            test = getattr(node, "test", None)
            if isinstance(test, ast.Name) and test.id == var:
                return True
            if isinstance(node, ast.BoolOp) and any(
                isinstance(v, ast.Name) and v.id == var
                for v in node.values
            ):
                return True
        return False

    def _unsafe_preamble(self, for_node: ast.For, probe: ast.Assign,
                         needed: set[str]) -> str | None:
        """Check loop-body statements before the probe; None = safe."""
        for stmt in for_node.body:
            if stmt is probe:
                return None
            if isinstance(stmt, ast.Expr) and \
                    isinstance(stmt.value, ast.Call) and \
                    isinstance(stmt.value.func, ast.Attribute) and \
                    stmt.value.func.attr in _CHARGE_METHODS:
                continue
            if isinstance(stmt, ast.Assign):
                if not _is_pure(stmt.value):
                    return ("side effects in the loop body before the "
                            "probe (call in an assignment)")
                if _stored_names(stmt) & needed:
                    return ("a loop-body assignment shadows a column "
                            "the probe binds")
                continue
            if isinstance(stmt, ast.If):
                if not _is_pure(stmt.test) or stmt.orelse:
                    return ("side effects or else-branch in a guard "
                            "before the probe")
                ok = all(
                    isinstance(s, (ast.Continue, ast.Pass)) or (
                        isinstance(s, ast.Assign) and _is_pure(s.value)
                        and not (_stored_names(s) & needed)
                    )
                    for s in stmt.body
                )
                if ok:
                    continue
                return "guard before the probe does more than skip rows"
            return ("statement with side effects precedes the probe "
                    "in the loop body")
        return "probe is not in the loop body"  # pragma: no cover

    def _apply_merge(self, assign: ast.Assign, call: ast.Call,
                     probe: OSSelect, for_node: ast.For, ctx: _LoopCtx,
                     outer_call: ast.Call, outer: OSSelect,
                     on_pairs: list[tuple[str, str, str]],
                     literal_on: list[OSComp], residual: list[OSCond],
                     var: str, why: str, line: int) -> None:
        if not outer.joins:
            _qualify_select(outer, self._fresh("t0"))
        own = outer.alias
        assert own is not None
        join_alias = self._fresh(f"t{len(outer.joins) + 1}")
        on: list[OSComp] = [
            OSComp(OSField(join_alias, col), op, OSField(own, outer_col))
            for col, op, outer_col in on_pairs
        ]
        on.extend(
            OSComp(OSField(join_alias, c.left.name), c.op, c.right)
            for c in literal_on
        )
        outer.joins.append(OSJoin(probe.table, join_alias, on))
        for cond in residual:
            extra = _qualify_cond(cond, join_alias)
            outer.where = (extra if outer.where is None
                           else OSBool("AND", outer.where, extra))
        fresh_names: list[str] = []
        for item in probe.items:
            assert isinstance(item, OSField)
            outer.items.append(OSField(join_alias, item.name))
            fresh_names.append(self._fresh(f"{var}_{item.name}"))
        self._set_sql(outer_call, outer)

        # Extend the loop unpacking and replace the probe with a tuple
        # rebind so every later use of ``var[i]`` still works.
        target = for_node.target
        if isinstance(target, ast.Name):
            target = ast.Tuple(elts=[target], ctx=ast.Store())
            for_node.target = target
        assert isinstance(target, ast.Tuple)
        target.elts.extend(
            ast.Name(id=name, ctx=ast.Store()) for name in fresh_names
        )
        replacement = ast.Assign(
            targets=[ast.Name(id=var, ctx=ast.Store())],
            value=ast.Tuple(
                elts=[ast.Name(id=n, ctx=ast.Load())
                      for n in fresh_names],
                ctx=ast.Load(),
            ),
        )
        for_node.body[for_node.body.index(assign)] = replacement
        self._consumed.add(id(call))
        self._merge_targets.add(id(outer_call))
        self._index_parents()
        self.applied.append(Applied(
            "R001", "join_merge", self.fn.name, line, probe.table,
            f"SELECT SINGLE {probe.table} per {outer.table} row merged "
            f"into one INNER JOIN ({why})",
        ))

    # -- hoisting -----------------------------------------------------------

    def _try_hoist(self, assign: ast.Assign, call: ast.Call,
                   for_node: ast.For, loops: list[_LoopCtx]) -> bool:
        var = assign.targets[0].id  # type: ignore[union-attr]
        if self._assign_count(var) != 1:
            return False
        text, _stmt = self._sql_of(call)
        if text is None:
            return False  # dynamic SQL may read loop state invisibly
        # Walk outward while the statement depends on nothing the loop
        # writes, and nothing before it in the loop has side effects
        # that could feed it.
        reads = _loaded_names(assign.value)
        hoist_past: _LoopCtx | None = None
        for ctx in reversed(loops):
            written = _stored_names(ctx.node) - {var}
            if reads & written:
                break
            if not self._preamble_effect_free(ctx.node, assign):
                break
            hoist_past = ctx
        if hoist_past is None:
            return False
        body = self._body_holding(hoist_past.node, assign)
        if body is None:
            return False  # only hoist statements sitting directly in a body
        body.remove(assign)
        if not body:
            body.append(ast.Pass())
        index = hoist_past.parent_body.index(hoist_past.node)
        hoist_past.parent_body.insert(index, assign)
        self._consumed.add(id(call))
        self._index_parents()
        self.applied.append(Applied(
            "R001", "hoist", self.fn.name, call.lineno,
            _stmt.table if _stmt else "?",
            "loop-invariant SELECT hoisted before the loop",
        ))
        return True

    def _assign_count(self, name: str) -> int:
        return sum(
            1 for n in ast.walk(self.fn)
            if isinstance(n, ast.Name) and n.id == name
            and isinstance(n.ctx, ast.Store)
        )

    def _preamble_effect_free(self, loop: ast.For | ast.While,
                              upto: ast.stmt) -> bool:
        """No call other than SELECTs/charges may precede the hoisted
        statement inside the loop (reports are read-only, but a helper
        call could still feed it through module state)."""
        for stmt in loop.body:
            if stmt is upto or any(s is upto for s in ast.walk(stmt)):
                return True
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    if _is_open_sql_call(node) is not None:
                        continue
                    if isinstance(node.func, ast.Attribute) and \
                            node.func.attr in _CHARGE_METHODS:
                        continue
                    return False
        return True

    def _body_holding(self, loop: ast.For | ast.While,
                      stmt: ast.stmt) -> list[ast.stmt] | None:
        for sub in ast.walk(loop):
            for field_name in ("body", "orelse", "finalbody"):
                body = getattr(sub, field_name, None)
                if isinstance(body, list) and any(
                    s is stmt for s in body
                ):
                    return body
        return None

    # ======================================================================
    # R005: GROUP BY pushdown (+ chained R010)
    # ======================================================================

    def _push_group_aggregates(self) -> None:
        for node in list(ast.walk(self.fn)):
            if isinstance(node, ast.Call) and self._is_ga_call(node):
                self._consider_group_pushdown(node)

    def _is_ga_call(self, call: ast.Call) -> bool:
        func = call.func
        return (isinstance(func, ast.Name)
                and func.id == "group_aggregate") or (
            isinstance(func, ast.Attribute)
            and func.attr == "group_aggregate")

    def _consider_group_pushdown(self, call: ast.Call) -> None:
        line = call.lineno

        def refuse(reason: str) -> None:
            self.refusals.append(Refusal(
                "R005", "group_pushdown", self.fn.name, line, reason))

        if len(call.args) < 4:
            return
        src = call.args[1]
        if not (isinstance(src, ast.Attribute) and src.attr == "rows"):
            return  # fed by ABAP-built records, not a raw SELECT: no-op
        base = src.value
        sel_call: ast.Call | None = None
        if isinstance(base, ast.Call) and \
                _is_open_sql_call(base) == "select":
            sel_call = base
        elif isinstance(base, ast.Name):
            assign = self._single_select_assign(base.id)
            if assign is not None:
                if self._name_count(base.id) != 2:
                    refuse(f"SELECT result {base.id!r} is used elsewhere "
                           f"— cannot replace it with group rows")
                    return
                sel_call = assign.value  # type: ignore[assignment]
        if sel_call is None:
            return
        if id(sel_call) in self._consumed:
            refuse("feeding SELECT was already rewritten")
            return
        text, stmt = self._sql_of(sel_call)
        if stmt is None:
            refuse("feeding SELECT is not statically resolvable")
            return
        if stmt.has_aggregates or stmt.group_by or stmt.order_by or \
                stmt.single or stmt.up_to is not None:
            refuse("feeding SELECT already aggregates, orders or limits")
            return
        if not all(isinstance(i, OSField) for i in stmt.items):
            refuse("feeding SELECT list is not plain columns")
            return
        if self.schema.kind_in_release(stmt.table, "3.0") is not \
                TableKind.TRANSPARENT:
            refuse(f"{stmt.table} is encapsulated — the engine cannot "
                   f"group it")
            return
        key_idxs = self._key_indices(call.args[2], len(stmt.items))
        if key_idxs is None:
            refuse("group key is not a tuple of plain row columns")
            return
        aggs = self._fold_aggregates(call.args[3], len(stmt.items))
        if aggs is None:
            refuse("fold is not a simple pushable aggregate "
                   "(len/sum/min/max/avg of one column)")
            return

        items = list(stmt.items)
        key_fields = [items[i] for i in key_idxs]
        new_items: list[OSField | OSAgg] = list(key_fields)
        for func_name, idx in aggs:
            if idx is None:
                new_items.append(OSAgg("COUNT", None))
            else:
                field = items[idx]
                assert isinstance(field, OSField)
                new_items.append(OSAgg(func_name, field))
        stmt.items = list(new_items)
        stmt.group_by = [f for f in key_fields
                         if isinstance(f, OSField)]
        stmt.order_by = [(f, False) for f in stmt.group_by]
        self._set_sql(sel_call, stmt)
        self._consumed.add(id(sel_call))

        # group_aggregate(...) -> list(<rows expr>): the engine now
        # returns exactly the grouped rows, key-ordered.
        replacement = ast.Call(
            func=ast.Name(id="list", ctx=ast.Load()), args=[src],
            keywords=[],
        )
        parent = self._parents.get(id(call))
        self._swap_expr(call, replacement)
        self.applied.append(Applied(
            "R005", "group_pushdown", self.fn.name, line, stmt.table,
            f"group_aggregate fold pushed into GROUP BY "
            f"{' '.join(f.display() for f in stmt.group_by)}",
        ))
        # Chained R010: a sorted() directly around the grouping is
        # subsumed by ORDER BY over the (unique) group keys.
        if isinstance(parent, ast.Call) and \
                isinstance(parent.func, ast.Name) and \
                parent.func.id == "sorted" and not parent.keywords and \
                len(parent.args) == 1:
            self._swap_expr(parent, replacement)
            self.applied.append(Applied(
                "R010", "order_pushdown", self.fn.name, parent.lineno,
                stmt.table,
                "sorted() over grouped rows replaced by ORDER BY over "
                "the unique group key",
            ))
        self._index_parents()

    def _key_indices(self, keyfn: ast.expr,
                     width: int) -> list[int] | None:
        if not isinstance(keyfn, ast.Lambda) or \
                len(keyfn.args.args) != 1:
            return None
        row = keyfn.args.args[0].arg
        body = keyfn.body
        if not isinstance(body, ast.Tuple):
            return None
        out: list[int] = []
        for elt in body.elts:
            idx = _subscript_index(elt, row)
            if idx is None or not 0 <= idx < width or idx in out:
                return None
            out.append(idx)
        return out

    def _fold_aggregates(
        self, foldfn: ast.expr, width: int,
    ) -> list[tuple[str, int | None]] | None:
        """[(AGG func, column index | None for COUNT(*))], or None."""
        if isinstance(foldfn, ast.Lambda):
            if len(foldfn.args.args) != 2:
                return None
            key_name = foldfn.args.args[0].arg
            group_name = foldfn.args.args[1].arg
            body = foldfn.body
        elif isinstance(foldfn, ast.Name):
            local = self._local_function(foldfn.id)
            if local is None or len(local.args.args) != 2 or \
                    len(local.body) != 1 or \
                    not isinstance(local.body[0], ast.Return) or \
                    local.body[0].value is None:
                return None
            key_name = local.args.args[0].arg
            group_name = local.args.args[1].arg
            body = local.body[0].value
        else:
            return None
        if not (isinstance(body, ast.BinOp)
                and isinstance(body.op, ast.Add)
                and isinstance(body.left, ast.Name)
                and body.left.id == key_name
                and isinstance(body.right, ast.Tuple)):
            return None
        out: list[tuple[str, int | None]] = []
        for elt in body.right.elts:
            agg = _aggregate_of(elt, group_name, width)
            if agg is None:
                return None
            out.append(agg)
        return out or None

    def _local_function(self, name: str) -> ast.FunctionDef | None:
        for node in ast.walk(self.fn):
            if isinstance(node, ast.FunctionDef) and node.name == name \
                    and node is not self.fn:
                return node
        return None

    # ======================================================================
    # R010: standalone ORDER BY pushdown
    # ======================================================================

    def _push_orders(self) -> None:
        for node in list(ast.walk(self.fn)):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "sorted" and len(node.args) == 1 and \
                    not node.keywords:
                self._consider_order_pushdown(node)

    def _consider_order_pushdown(self, call: ast.Call) -> None:
        src = call.args[0]
        if not (isinstance(src, ast.Attribute) and src.attr == "rows"
                and isinstance(src.value, ast.Name)):
            return
        line = call.lineno

        def refuse(reason: str) -> None:
            self.refusals.append(Refusal(
                "R010", "order_pushdown", self.fn.name, line, reason))

        var = src.value.id
        assign = self._single_select_assign(var)
        if assign is None:
            return
        if self._name_count(var) != 2:
            refuse(f"SELECT result {var!r} is used elsewhere — pushing "
                   f"ORDER BY would reorder those uses too")
            return
        sel_call = assign.value
        assert isinstance(sel_call, ast.Call)
        if id(sel_call) in self._consumed:
            return
        _text, stmt = self._sql_of(sel_call)
        if stmt is None:
            refuse("feeding SELECT is not statically resolvable")
            return
        if stmt.order_by:
            return  # already ordered; sorted() is merely redundant
        if stmt.up_to is not None:
            refuse("UP TO n ROWS would pick different rows under "
                   "ORDER BY")
            return
        if stmt.has_aggregates or stmt.group_by or stmt.single:
            refuse("feeding SELECT shape is not a plain row stream")
            return
        if not all(isinstance(i, OSField) for i in stmt.items):
            refuse("feeding SELECT list is not plain columns")
            return
        # sorted(rows) orders by the whole tuple: ORDER BY every select
        # item in list position is exactly that comparison, pushed down.
        stmt.order_by = [(item, False) for item in stmt.items
                         if isinstance(item, OSField)]
        self._set_sql(sel_call, stmt)
        self._consumed.add(id(sel_call))
        self._swap_expr(call, ast.Call(
            func=ast.Name(id="list", ctx=ast.Load()), args=[src],
            keywords=[],
        ))
        self._index_parents()
        self.applied.append(Applied(
            "R010", "order_pushdown", self.fn.name, line, stmt.table,
            f"sorted() over {stmt.table} rows pushed down as ORDER BY "
            f"{' '.join(f.display() for f, _d in stmt.order_by)}",
        ))

    # ======================================================================
    # R007: full-key completion via installation constants
    # ======================================================================

    def _complete_partial_keys(self) -> None:
        for node in list(ast.walk(self.fn)):
            if isinstance(node, ast.Call) and \
                    _is_open_sql_call(node) == "select_single" and \
                    id(node) not in self._consumed:
                self._consider_full_key(node)

    def _consider_full_key(self, call: ast.Call) -> None:
        line = call.lineno

        def refuse(reason: str) -> None:
            self.refusals.append(Refusal(
                "R007", "full_key", self.fn.name, line, reason))

        _text, stmt = self._sql_of(call)
        if stmt is None or stmt.joins:
            return  # R008/R001 territory; nothing to complete
        info = self.schema.lookup(stmt.table)
        if info is None or info.is_view or not info.key_fields:
            return
        conjuncts = ([] if stmt.where is None
                     else _flatten_and_cond(stmt.where))
        if conjuncts is None:
            refuse("WHERE clause is disjunctive (OR/NOT)")
            return
        bound = {
            c.left.name for c in conjuncts
            if isinstance(c, OSComp) and c.op == "="
            and isinstance(c.right, (OSHost, OSLiteral))
            and not c.left.alias
        }
        missing = [k for k in info.key_fields if k not in bound]
        if not missing:
            return  # already full-key: the buffer path is open
        constants = INSTALLATION_KEY_CONSTANTS.get(stmt.table, {})
        unresolved = [k for k in missing if k not in constants]
        if unresolved:
            refuse(f"missing key column(s) {unresolved} are "
                   f"row-specific — no installation constant completes "
                   f"the key")
            return
        system = _system_name(call)
        if system is None:
            refuse("cannot locate the system handle for buffer "
                   "activation")
            return

        extra: list[OSCond] = [
            OSComp(OSField(None, col), "=", OSLiteral(constants[col]))
            for col in missing
        ]
        where = stmt.where
        for comp in extra:
            where = comp if where is None else OSBool("AND", where, comp)
        stmt.where = where
        self._set_sql(call, stmt)
        self._consumed.add(id(call))
        self._activate_buffer(system, stmt.table)
        self.applied.append(Applied(
            "R007", "full_key", self.fn.name, line, stmt.table,
            f"key completed with installation constants "
            f"{{{', '.join(f'{k}={constants[k]!r}' for k in missing)}}}; "
            f"{stmt.table} activated in the table buffer",
        ))

    def _activate_buffer(self, system: str, table: str) -> None:
        if table in self._buffered:
            return
        self._buffered.add(table)
        guard = ast.parse(
            f"if {system}.buffers.active_for('{table}') is None:\n"
            f"    {system}.buffers.configure('{table}', {BUFFER_BYTES})\n"
        ).body[0]
        body = self.fn.body
        at = 0
        if body and isinstance(body[0], ast.Expr) and \
                isinstance(body[0].value, ast.Constant) and \
                isinstance(body[0].value.value, str):
            at = 1  # keep the docstring first
        body.insert(at, guard)
        self._index_parents()


# -- shared condition/fold helpers -----------------------------------------


def _flatten_and_cond(cond: OSCond) -> list[OSCond] | None:
    """Top-level AND conjuncts; None if OR/NOT appears on the spine."""
    if isinstance(cond, OSNot):
        return None
    if isinstance(cond, OSBool):
        if cond.op != "AND":
            return None
        left = _flatten_and_cond(cond.left)
        right = _flatten_and_cond(cond.right)
        if left is None or right is None:
            return None
        return left + right
    return [cond]


def _literal_only(cond: OSCond) -> bool:
    if isinstance(cond, OSLike):
        return isinstance(cond.pattern, OSLiteral)
    if isinstance(cond, OSIn):
        return all(isinstance(i, OSLiteral) for i in cond.items)
    if isinstance(cond, OSBetween):
        return (isinstance(cond.low, OSLiteral)
                and isinstance(cond.high, OSLiteral))
    return False


def _subscript_index(node: ast.expr, row_name: str) -> int | None:
    if isinstance(node, ast.Subscript) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == row_name and \
            isinstance(node.slice, ast.Constant) and \
            isinstance(node.slice.value, int):
        return node.slice.value
    return None


def _aggregate_of(node: ast.expr, group_name: str,
                  width: int) -> tuple[str, int | None] | None:
    """Map one fold-tuple element to (AGG, column index)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "len" and len(node.args) == 1 and \
                isinstance(node.args[0], ast.Name) and \
                node.args[0].id == group_name:
            return ("COUNT", None)
        if node.func.id in ("sum", "min", "max") and len(node.args) == 1:
            idx = _gen_column(node.args[0], group_name, width)
            if idx is not None:
                return (node.func.id.upper(), idx)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        top = _aggregate_of(node.left, group_name, width)
        bottom = _aggregate_of(node.right, group_name, width)
        if top is not None and top[0] == "SUM" and \
                bottom == ("COUNT", None):
            return ("AVG", top[1])
    return None


def _gen_column(node: ast.expr, group_name: str,
                width: int) -> int | None:
    """Column index of ``<agg>(g[i] for g in group)``."""
    if not isinstance(node, ast.GeneratorExp):
        return None
    if len(node.generators) != 1:
        return None
    gen = node.generators[0]
    if gen.ifs or gen.is_async or not isinstance(gen.target, ast.Name) \
            or not (isinstance(gen.iter, ast.Name)
                    and gen.iter.id == group_name):
        return None
    idx = _subscript_index(node.elt, gen.target.id)
    if idx is None or not 0 <= idx < width:
        return None
    return idx


__all__ = [
    "Applied",
    "BUFFER_BYTES",
    "FunctionTransformer",
    "INSTALLATION_KEY_CONSTANTS",
    "Refusal",
    "RewriteError",
]
