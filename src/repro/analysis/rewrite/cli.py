"""``python -m repro rewrite`` — plan, diff, verify, report.

Default mode plans the rewrites and prints the applied/refused ledger
without executing anything.  ``--check`` runs the differential
verification harness (exit 1 on any row mismatch, regression, or
refusal without a reason); ``--diff`` prints the unified source diffs;
``--report`` writes the ``repro-rewrite-v1`` JSON document;
``--rewrite-out`` saves the rewritten module sources to a directory.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.costmodel import SchemaInfo
from repro.analysis.rewrite.planner import plan_module
from repro.analysis.rewrite.report import render_json, render_text
from repro.analysis.rewrite.verify import (
    FAMILIES,
    FamilyVerification,
    reports_dir,
    verify_families,
)

DEFAULT_FAMILIES = ["open22", "native22"]


def run_rewrite(families: list[str] | None = None,
                check: bool = False,
                diff: bool = False,
                report_path: str | Path | None = None,
                rewrite_out: str | Path | None = None,
                scale: float = 0.001,
                emit=print) -> int:
    """Run the rewriter; returns the process exit status."""
    chosen = families or DEFAULT_FAMILIES
    unknown = [f for f in chosen if f not in FAMILIES]
    if unknown:
        print(f"rewrite: unknown family(ies) {unknown} "
              f"(choose from {', '.join(sorted(FAMILIES))})",
              file=sys.stderr)
        return 2

    if check:
        results = verify_families(chosen, scale)
    else:
        schema = SchemaInfo(scale)
        base = reports_dir()
        results = []
        for name in chosen:
            spec = FAMILIES[name]
            modules = [plan_module(base / f"{spec['module']}.py", schema)]
            modules += [plan_module(base / f"{s}.py", schema)
                        for s in spec["support"]]
            results.append(FamilyVerification(name, modules))

    if diff:
        for fam in results:
            for module in fam.modules:
                text = module.diff()
                if text:
                    emit(text)

    if rewrite_out is not None:
        out_dir = Path(rewrite_out)
        out_dir.mkdir(parents=True, exist_ok=True)
        written = set()
        for fam in results:
            for module in fam.modules:
                if module.module in written or not module.changed:
                    continue
                written.add(module.module)
                (out_dir / f"{module.module}.py").write_text(
                    module.rewritten_source)
        emit(f"wrote {len(written)} rewritten module(s) to {out_dir}")

    emit(render_text(results, checked=check))

    if report_path is not None:
        Path(report_path).write_text(
            render_json(results, scale, checked=check) + "\n")
        emit(f"report written to {report_path}")

    if check:
        if "open22" in chosen and not any(
            r.applied for r in results if r.family == "open22"
        ):
            print("rewrite: --check expected rewrites in open22 but "
                  "none were applied", file=sys.stderr)
            return 1
        return 0 if all(r.ok for r in results) else 1
    return 0


def run_rewrite_command(args) -> int:
    """Adapter for the ``python -m repro`` argument namespace."""
    families = [part.strip() for part in args.family.split(",")
                if part.strip()] if args.family else None
    return run_rewrite(
        families=families,
        check=args.check,
        diff=args.diff,
        report_path=args.report,
        rewrite_out=args.rewrite_out,
        scale=args.sf,
    )
