"""TPC-D update functions UF1 (insert) and UF2 (delete).

On the isolated RDBMS these run as direct tuple inserts/deletes (the
paper's "program that directly inserts/deletes tuples into/from the
database").  The SAP variants run through the batch-input facility
instead — see :mod:`repro.reports.updatefuncs`.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.tpcd.dbgen import TpcdData


def run_uf1_rdbms(db: Database, refresh: TpcdData) -> int:
    """Insert the refresh set directly into orders/lineitem."""
    orders_table = db.catalog.table("orders")
    lineitem_table = db.catalog.table("lineitem")
    count = 0
    for row in refresh.orders:
        orders_table.insert(row)
        count += 1
    for row in refresh.lineitem:
        lineitem_table.insert(row)
        count += 1
    return count


def run_uf2_rdbms(db: Database, orderkeys: list[int]) -> int:
    """Delete the given orders and their lineitems via index lookups."""
    count = 0
    for orderkey in orderkeys:
        count += db.execute(
            "DELETE FROM lineitem WHERE l_orderkey = ?", (orderkey,)
        ).scalar()
        count += db.execute(
            "DELETE FROM orders WHERE o_orderkey = ?", (orderkey,)
        ).scalar()
    return count
