"""TPC-D benchmark kit: schema, data generator, queries, updates.

The paper runs TPC-D 1.0 at scale factor 0.2 (300 k orders, 1.2 M
lineitems).  This kit generates the same eight tables at any scale
factor with a deterministic seeded generator, provides the 17-query
power-test suite plus the two update functions, and loads either the
original schema (for the isolated-RDBMS baseline) or feeds
:mod:`repro.sapschema` (for the SAP variants).
"""

from repro.tpcd.dbgen import TpcdData, generate
from repro.tpcd.schema import ORIGINAL_TABLES, create_original_schema

__all__ = ["TpcdData", "generate", "ORIGINAL_TABLES",
           "create_original_schema"]
