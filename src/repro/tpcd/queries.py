"""The TPC-D query suite (Q1–Q17) in standard SQL.

Queries use the TPC-D default substitution parameters.  Q11's fraction
is scale-dependent (0.0001 / SF per the specification), so the suite is
produced by :func:`build_queries`.

Documented deviations from the 1995 specification text:

* No derived tables in FROM: Q8 and Q9 are written in their standard
  flattened form (identical results).
* Q13 in TPC-D 1.0 was a small, fast single-table query (the paper
  measures it at 8–25 seconds); the 1.0 text is not in wide
  circulation, so we use a selective single-table orders query with
  the same cost profile.
* Q15 uses a view exactly as the spec does; the harness creates and
  drops it around the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QuerySpec:
    """One benchmark query: SQL plus optional view setup/teardown."""

    number: int
    title: str
    sql: str
    setup_views: list[tuple[str, str]] = field(default_factory=list)
    deviation: str | None = None

    @property
    def name(self) -> str:
        return f"Q{self.number}"


def build_queries(scale_factor: float = 0.01) -> dict[int, QuerySpec]:
    """The 17 power-test queries for a database at ``scale_factor``."""
    q11_fraction = 0.0001 / scale_factor
    queries = [
        QuerySpec(1, "Pricing Summary Report", """
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""),
        QuerySpec(2, "Minimum Cost Supplier", """
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone,
       s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND p_size = 15 AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (
      SELECT MIN(ps2.ps_supplycost)
      FROM partsupp ps2, supplier s2, nation n2, region r2
      WHERE p_partkey = ps2.ps_partkey AND s2.s_suppkey = ps2.ps_suppkey
        AND s2.s_nationkey = n2.n_nationkey
        AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
"""),
        QuerySpec(3, "Shipping Priority", """
SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""),
        QuerySpec(4, "Order Priority Checking", """
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND EXISTS (SELECT * FROM lineitem
              WHERE l_orderkey = o_orderkey
                AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""),
        QuerySpec(5, "Local Supplier Volume", """
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC
"""),
        QuerySpec(6, "Forecasting Revenue Change", """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""),
        QuerySpec(7, "Volume Shipping", """
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       EXTRACT(YEAR FROM l_shipdate) AS l_year,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM supplier, lineitem, orders, customer, nation n1, nation n2
WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
  AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey
  AND c_nationkey = n2.n_nationkey
  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
       OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
  AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY n1.n_name, n2.n_name, EXTRACT(YEAR FROM l_shipdate)
ORDER BY supp_nation, cust_nation, l_year
"""),
        QuerySpec(8, "National Market Share", """
SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(CASE WHEN n2.n_name = 'BRAZIL'
                THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share
FROM part, supplier, lineitem, orders, customer, nation n1, nation n2,
     region
WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
  AND l_orderkey = o_orderkey AND o_custkey = c_custkey
  AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
  AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey
  AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND p_type = 'ECONOMY ANODIZED STEEL'
GROUP BY EXTRACT(YEAR FROM o_orderdate)
ORDER BY o_year
""", deviation="flattened derived table (identical result)"),
        QuerySpec(9, "Product Type Profit Measure", """
SELECT n_name AS nation, EXTRACT(YEAR FROM o_orderdate) AS o_year,
       SUM(l_extendedprice * (1 - l_discount)
           - ps_supplycost * l_quantity) AS sum_profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
  AND ps_partkey = l_partkey AND p_partkey = l_partkey
  AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
  AND p_name LIKE '%green%'
GROUP BY n_name, EXTRACT(YEAR FROM o_orderdate)
ORDER BY nation, o_year DESC
""", deviation="flattened derived table (identical result)"),
        QuerySpec(10, "Returned Item Reporting", """
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
         c_comment
ORDER BY revenue DESC
LIMIT 20
"""),
        QuerySpec(11, "Important Stock Identification", f"""
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) > (
    SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * {q11_fraction}
    FROM partsupp ps2, supplier s2, nation n2
    WHERE ps2.ps_suppkey = s2.s_suppkey
      AND s2.s_nationkey = n2.n_nationkey AND n2.n_name = 'GERMANY')
ORDER BY value DESC
"""),
        QuerySpec(12, "Shipping Modes and Order Priority", """
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode
"""),
        QuerySpec(13, "High-Value Order Priorities", """
SELECT o_orderpriority, COUNT(*) AS order_count,
       SUM(o_totalprice) AS total_value
FROM orders
WHERE o_orderdate >= DATE '1995-01-01'
  AND o_orderdate < DATE '1995-01-01' + INTERVAL '3' MONTH
  AND o_totalprice > 250000
GROUP BY o_orderpriority
ORDER BY o_orderpriority
""", deviation="TPC-D 1.0 Q13 approximation: selective single-table "
               "orders query matching the paper's sub-minute runtimes"),
        QuerySpec(14, "Promotion Effect", """
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
"""),
        QuerySpec(15, "Top Supplier", """
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier, revenue
WHERE s_suppkey = supplier_no
  AND total_revenue = (SELECT MAX(total_revenue) FROM revenue)
ORDER BY s_suppkey
""", setup_views=[("revenue", """
SELECT l_suppkey AS supplier_no,
       SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM lineitem
WHERE l_shipdate >= DATE '1996-01-01'
  AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
GROUP BY l_suppkey
""")]),
        QuerySpec(16, "Parts/Supplier Relationship", """
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
"""),
        QuerySpec(17, "Small-Quantity-Order Revenue", """
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey AND p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < (SELECT 0.2 * AVG(l2.l_quantity) FROM lineitem l2
                    WHERE l2.l_partkey = p_partkey)
"""),
    ]
    return {spec.number: spec for spec in queries}


def run_query(db, spec: QuerySpec, params: tuple = ()):
    """Execute one query spec on an engine Database, handling views."""
    for view_name, view_sql in spec.setup_views:
        db.create_view(view_name, view_sql)
    try:
        return db.execute(spec.sql, params)
    finally:
        for view_name, _sql in spec.setup_views:
            db.drop_view(view_name)
