"""Cross-variant answer validation.

The paper validated every implementation against a test database before
measuring (Section 3.3).  We do the same: the RDBMS, Native SQL and
Open SQL implementations of each query must agree on the result, up to
row order where the query leaves order unspecified and floating-point
rounding in aggregates.
"""

from __future__ import annotations

import datetime
import math
from typing import Iterable


def canonical_value(value: object, places: int = 2) -> object:
    """Round floats; pass everything else through."""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return round(value, places)
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, str):
        return value.rstrip()
    return value


def canonical_rows(rows: Iterable[tuple], ordered: bool = True,
                   places: int = 2) -> list[tuple]:
    """Normalize rows for comparison."""
    out = [
        tuple(canonical_value(v, places) for v in row) for row in rows
    ]
    if not ordered:
        out.sort(key=lambda r: tuple(
            (v is None, str(type(v)), v) for v in r
        ))
    return out


def _values_close(a: object, b: object, places: int) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        # Aggregation order differs between variants; allow the float
        # accumulation noise that rounding alone can flip.
        tolerance = max(1.5 * 10 ** -places, 1e-9 * max(abs(a), abs(b)))
        return abs(a - b) <= tolerance
    return a == b


def _rows_close(left: list[tuple], right: list[tuple],
                places: int) -> bool:
    if len(left) != len(right):
        return False
    for row_a, row_b in zip(left, right):
        if len(row_a) != len(row_b):
            return False
        for value_a, value_b in zip(row_a, row_b):
            if not _values_close(value_a, value_b, places):
                return False
    return True


def rows_match(a: Iterable[tuple], b: Iterable[tuple],
               ordered: bool = True, places: int = 2) -> bool:
    return _rows_close(
        canonical_rows(a, ordered, places),
        canonical_rows(b, ordered, places),
        places,
    )


def assert_rows_match(a: Iterable[tuple], b: Iterable[tuple],
                      label: str = "", ordered: bool = True,
                      places: int = 2) -> None:
    left = canonical_rows(a, ordered, places)
    right = canonical_rows(b, ordered, places)
    if not _rows_close(left, right, places):
        differing = [
            (row_a, row_b) for row_a, row_b in zip(left, right)
            if not _rows_close([row_a], [row_b], places)
        ]
        raise AssertionError(
            f"result mismatch {label}: {len(left)} vs {len(right)} rows; "
            f"differing rows {differing[:3]}"
        )
