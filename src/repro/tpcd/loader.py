"""Direct (bulk) load of the original TPC-D schema.

This is the fast path the paper's isolated RDBMS gets and SAP R/3's
batch input forgoes: page-at-a-time writes through the engine's bulk
interface, then a statistics pass.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.sim.params import SimParams
from repro.tpcd.dbgen import TpcdData
from repro.tpcd.schema import ORIGINAL_TABLES, create_original_schema


def load_original(data: TpcdData, params: SimParams | None = None,
                  analyze: bool = True, degree: int = 1,
                  storage: str = "heap") -> Database:
    """Create an engine database holding the original TPC-D tables."""
    db = Database(params=params, name="tpcd", storage=storage)
    create_original_schema(db)
    for name in ORIGINAL_TABLES:
        db.bulk_load(name, data.table(name))
    if analyze:
        db.analyze()
    if degree > 1:
        # Install the policy only after stats exist, so degree and
        # partition-key selection see real cardinalities; partition
        # the big tables as part of the (unmeasured) load phase.
        db.set_degree(degree)
        db.prepartition()
    return db
