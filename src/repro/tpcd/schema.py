"""The original eight-table TPC-D schema.

Key attributes are 4-byte integers, exactly the property the paper
contrasts with SAP's 16-byte string keys (Table 2's 8x index
inflation).  The index set mirrors the paper's "equivalent set of
indexes": primary keys plus the foreign-key/secondary indexes the
power test exercises (including the shipdate index SAP creates by
default, see Section 3.4.4).
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType

ORIGINAL_TABLES = [
    "region", "nation", "supplier", "part", "partsupp",
    "customer", "orders", "lineitem",
]

#: display names as printed in the paper's tables
PAPER_NAMES = {
    "region": "REGION", "nation": "NATION", "supplier": "SUPPLIER",
    "part": "PART", "partsupp": "PARTSUPP", "customer": "CUSTOMER",
    "orders": "ORDER", "lineitem": "LINEITEM",
}


def _c(name: str, sql_type: SqlType) -> Column:
    return Column(name, sql_type, nullable=False)


def table_schemas() -> list[TableSchema]:
    integer = SqlType.integer()
    decimal = SqlType.decimal()
    date = SqlType.date()
    return [
        TableSchema("region", [
            _c("r_regionkey", integer),
            _c("r_name", SqlType.char(25)),
            _c("r_comment", SqlType.varchar(152)),
        ], primary_key=["r_regionkey"]),
        TableSchema("nation", [
            _c("n_nationkey", integer),
            _c("n_name", SqlType.char(25)),
            _c("n_regionkey", integer),
            _c("n_comment", SqlType.varchar(152)),
        ], primary_key=["n_nationkey"]),
        TableSchema("supplier", [
            _c("s_suppkey", integer),
            _c("s_name", SqlType.char(25)),
            _c("s_address", SqlType.varchar(40)),
            _c("s_nationkey", integer),
            _c("s_phone", SqlType.char(15)),
            _c("s_acctbal", decimal),
            _c("s_comment", SqlType.varchar(101)),
        ], primary_key=["s_suppkey"]),
        TableSchema("part", [
            _c("p_partkey", integer),
            _c("p_name", SqlType.varchar(55)),
            _c("p_mfgr", SqlType.char(25)),
            _c("p_brand", SqlType.char(10)),
            _c("p_type", SqlType.varchar(25)),
            _c("p_size", integer),
            _c("p_container", SqlType.char(10)),
            _c("p_retailprice", decimal),
            _c("p_comment", SqlType.varchar(23)),
        ], primary_key=["p_partkey"]),
        TableSchema("partsupp", [
            _c("ps_partkey", integer),
            _c("ps_suppkey", integer),
            _c("ps_availqty", integer),
            _c("ps_supplycost", decimal),
            _c("ps_comment", SqlType.varchar(199)),
        ], primary_key=["ps_partkey", "ps_suppkey"]),
        TableSchema("customer", [
            _c("c_custkey", integer),
            _c("c_name", SqlType.varchar(25)),
            _c("c_address", SqlType.varchar(40)),
            _c("c_nationkey", integer),
            _c("c_phone", SqlType.char(15)),
            _c("c_acctbal", decimal),
            _c("c_mktsegment", SqlType.char(10)),
            _c("c_comment", SqlType.varchar(117)),
        ], primary_key=["c_custkey"]),
        TableSchema("orders", [
            _c("o_orderkey", integer),
            _c("o_custkey", integer),
            _c("o_orderstatus", SqlType.char(1)),
            _c("o_totalprice", decimal),
            _c("o_orderdate", date),
            _c("o_orderpriority", SqlType.char(15)),
            _c("o_clerk", SqlType.char(15)),
            _c("o_shippriority", integer),
            _c("o_comment", SqlType.varchar(79)),
        ], primary_key=["o_orderkey"]),
        TableSchema("lineitem", [
            _c("l_orderkey", integer),
            _c("l_partkey", integer),
            _c("l_suppkey", integer),
            _c("l_linenumber", integer),
            _c("l_quantity", decimal),
            _c("l_extendedprice", decimal),
            _c("l_discount", decimal),
            _c("l_tax", decimal),
            _c("l_returnflag", SqlType.char(1)),
            _c("l_linestatus", SqlType.char(1)),
            _c("l_shipdate", date),
            _c("l_commitdate", date),
            _c("l_receiptdate", date),
            _c("l_shipinstruct", SqlType.char(25)),
            _c("l_shipmode", SqlType.char(10)),
            _c("l_comment", SqlType.varchar(44)),
        ], primary_key=["l_orderkey", "l_linenumber"]),
    ]


#: secondary indexes beyond the automatic primary keys
SECONDARY_INDEXES = [
    ("idx_n_regionkey", "nation", ["n_regionkey"]),
    ("idx_s_nationkey", "supplier", ["s_nationkey"]),
    ("idx_ps_suppkey", "partsupp", ["ps_suppkey"]),
    ("idx_c_nationkey", "customer", ["c_nationkey"]),
    ("idx_o_custkey", "orders", ["o_custkey"]),
    ("idx_o_orderdate", "orders", ["o_orderdate"]),
    ("idx_l_partkey", "lineitem", ["l_partkey"]),
    ("idx_l_suppkey", "lineitem", ["l_suppkey"]),
    ("idx_l_shipdate", "lineitem", ["l_shipdate"]),
]


def create_original_schema(db: Database,
                           with_secondary_indexes: bool = True) -> None:
    """Create the eight TPC-D tables (and indexes) in ``db``."""
    for schema in table_schemas():
        db.create_table(schema)
    if with_secondary_indexes:
        for index_name, table, columns in SECONDARY_INDEXES:
            db.create_index(index_name, table, columns)
