"""DBGEN-equivalent deterministic data generator.

Reimplements the distributions of TPC's DBGEN tool that the paper's
experiments are sensitive to: table cardinalities per scale factor,
date ranges, value domains (quantity 1–50, discount 0–10 %, tax 0–8 %),
the categorical vocabularies the queries select on (market segments,
priorities, ship modes, part types/brands/containers, nation/region
names), and the part-supplier assignment.  Generation is fully
deterministic for a given (scale factor, seed).
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
CURRENT_DATE = datetime.date(1995, 6, 17)

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                  "TAKE BACK RETURN"]
CONTAINERS_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
TYPES_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPES_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPES_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki",
    "lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
    "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty",
    "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
    "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
    "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
    "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]
_WORDS = [
    "furiously", "quick", "pending", "final", "ironic", "express", "bold",
    "regular", "special", "silent", "even", "careful", "blithe", "daring",
    "accounts", "packages", "deposits", "requests", "instructions",
    "theodolites", "platelets", "foxes", "pinto", "beans", "asymptotes",
    "dependencies", "excuses", "ideas", "sentiments", "courts",
]

# Base cardinalities at SF = 1.0 (TPC-D 1.0 specification).
BASE_SUPPLIERS = 10_000
BASE_PARTS = 200_000
BASE_CUSTOMERS = 150_000
BASE_ORDERS = 1_500_000
SUPPLIERS_PER_PART = 4


@dataclass
class TpcdData:
    """All generated rows, keyed by original-schema table name."""

    scale_factor: float
    seed: int
    region: list[tuple] = field(default_factory=list)
    nation: list[tuple] = field(default_factory=list)
    supplier: list[tuple] = field(default_factory=list)
    part: list[tuple] = field(default_factory=list)
    partsupp: list[tuple] = field(default_factory=list)
    customer: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    lineitem: list[tuple] = field(default_factory=list)

    def table(self, name: str) -> list[tuple]:
        return getattr(self, name.lower())

    @property
    def max_orderkey(self) -> int:
        return max((row[0] for row in self.orders), default=0)

    def row_counts(self) -> dict[str, int]:
        return {
            name: len(self.table(name))
            for name in ("region", "nation", "supplier", "part", "partsupp",
                         "customer", "orders", "lineitem")
        }


def _comment(rng: random.Random, max_words: int = 6,
             max_chars: int = 35) -> str:
    count = rng.randint(2, max_words)
    text = " ".join(rng.choice(_WORDS) for _ in range(count))
    return text[:max_chars].rstrip()


def _phone(rng: random.Random, nationkey: int) -> str:
    return (f"{10 + nationkey}-{rng.randint(100, 999)}-"
            f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")


def _retail_price(partkey: int) -> float:
    return round(
        (90000 + ((partkey // 10) % 20001) + 100 * (partkey % 1000)) / 100, 2
    )


def _scaled(base: int, sf: float, minimum: int = 1) -> int:
    return max(minimum, round(base * sf))


def generate(scale_factor: float = 0.01, seed: int = 19970601) -> TpcdData:
    """Generate a TPC-D database at the given scale factor."""
    if scale_factor <= 0:
        raise ValueError("scale factor must be positive")
    data = TpcdData(scale_factor=scale_factor, seed=seed)
    rng = random.Random(seed)

    for i, name in enumerate(REGIONS):
        data.region.append((i, name, _comment(rng)))
    for i, (name, regionkey) in enumerate(NATIONS):
        data.nation.append((i, name, regionkey, _comment(rng)))

    n_suppliers = _scaled(BASE_SUPPLIERS, scale_factor)
    n_parts = _scaled(BASE_PARTS, scale_factor)
    n_customers = _scaled(BASE_CUSTOMERS, scale_factor)
    n_orders = _scaled(BASE_ORDERS, scale_factor)

    for suppkey in range(1, n_suppliers + 1):
        nationkey = rng.randrange(len(NATIONS))
        # ~0.5% of suppliers carry the Q16 complaint marker.
        comment = _comment(rng, max_chars=30)
        if rng.random() < 0.005:
            comment = f"{comment} Customer xx Complaints"
        data.supplier.append((
            suppkey,
            f"Supplier#{suppkey:09d}",
            _comment(rng, 4),
            nationkey,
            _phone(rng, nationkey),
            round(rng.uniform(-999.99, 9999.99), 2),
            comment,
        ))

    for partkey in range(1, n_parts + 1):
        name = " ".join(rng.sample(COLORS, 5))
        mfgr_no = rng.randint(1, 5)
        brand = f"Brand#{mfgr_no}{rng.randint(1, 5)}"
        p_type = (f"{rng.choice(TYPES_1)} {rng.choice(TYPES_2)} "
                  f"{rng.choice(TYPES_3)}")
        container = f"{rng.choice(CONTAINERS_1)} {rng.choice(CONTAINERS_2)}"
        data.part.append((
            partkey, name, f"Manufacturer#{mfgr_no}", brand, p_type,
            rng.randint(1, 50), container, _retail_price(partkey),
            _comment(rng, 3, max_chars=23),
        ))
        seen_suppliers: set[int] = set()
        for i in range(SUPPLIERS_PER_PART):
            suppkey = (
                (partkey + i * (n_suppliers // SUPPLIERS_PER_PART + 1))
                % n_suppliers
            ) + 1
            # At micro scale factors the stride wraps onto the same
            # supplier; keep (partkey, suppkey) unique.
            if suppkey in seen_suppliers:
                continue
            seen_suppliers.add(suppkey)
            data.partsupp.append((
                partkey, suppkey, rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2), _comment(rng),
            ))

    for custkey in range(1, n_customers + 1):
        nationkey = rng.randrange(len(NATIONS))
        data.customer.append((
            custkey,
            f"Customer#{custkey:09d}",
            _comment(rng, 4),
            nationkey,
            _phone(rng, nationkey),
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(SEGMENTS),
            _comment(rng),
        ))

    date_span = (END_DATE - START_DATE).days
    for orderkey in range(1, n_orders + 1):
        _generate_order(data, rng, orderkey, n_customers, n_parts,
                        n_suppliers, date_span)
    return data


def _generate_order(
    data: TpcdData,
    rng: random.Random,
    orderkey: int,
    n_customers: int,
    n_parts: int,
    n_suppliers: int,
    date_span: int,
) -> None:
    custkey = rng.randint(1, n_customers)
    orderdate = START_DATE + datetime.timedelta(days=rng.randint(0, date_span))
    line_count = rng.randint(1, 7)
    total = 0.0
    statuses: set[str] = set()
    for linenumber in range(1, line_count + 1):
        partkey = rng.randint(1, n_parts)
        supp_i = rng.randrange(SUPPLIERS_PER_PART)
        suppkey = (
            (partkey + supp_i * (n_suppliers // SUPPLIERS_PER_PART + 1))
            % n_suppliers
        ) + 1
        quantity = float(rng.randint(1, 50))
        extendedprice = round(quantity * _retail_price(partkey), 2)
        discount = rng.randint(0, 10) / 100.0
        tax = rng.randint(0, 8) / 100.0
        shipdate = orderdate + datetime.timedelta(days=rng.randint(1, 121))
        commitdate = orderdate + datetime.timedelta(days=rng.randint(30, 90))
        receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
        if receiptdate <= CURRENT_DATE:
            returnflag = rng.choice(["R", "A"])
        else:
            returnflag = "N"
        linestatus = "F" if shipdate <= CURRENT_DATE else "O"
        statuses.add(linestatus)
        total += extendedprice * (1 + tax) * (1 - discount)
        data.lineitem.append((
            orderkey, partkey, suppkey, linenumber, quantity, extendedprice,
            discount, tax, returnflag, linestatus, shipdate, commitdate,
            receiptdate, rng.choice(SHIP_INSTRUCTS), rng.choice(SHIP_MODES),
            _comment(rng, 4),
        ))
    if statuses == {"F"}:
        orderstatus = "F"
    elif statuses == {"O"}:
        orderstatus = "O"
    else:
        orderstatus = "P"
    data.orders.append((
        orderkey, custkey, orderstatus, round(total, 2), orderdate,
        rng.choice(PRIORITIES), f"Clerk#{rng.randint(1, 1000):09d}",
        0, _comment(rng),
    ))


def generate_refresh_orders(
    data: TpcdData, fraction: float = 0.001, seed: int = 424242,
    start_key: int | None = None
) -> TpcdData:
    """New orders/lineitems for UF1 (0.1 % of SF per the TPC-D spec).

    ``start_key`` places the new order keys explicitly; harnesses that
    apply several UF1 sets to one database (the throughput test's
    update stream) use it to keep the sets' keyspaces disjoint.
    """
    rng = random.Random(seed)
    refresh = TpcdData(scale_factor=data.scale_factor, seed=seed)
    n_new = max(1, round(len(data.orders) * fraction))
    n_customers = len(data.customer)
    n_parts = len(data.part)
    n_suppliers = len(data.supplier)
    date_span = (END_DATE - START_DATE).days
    if start_key is None:
        start_key = data.max_orderkey + 1
    for orderkey in range(start_key, start_key + n_new):
        _generate_order(refresh, rng, orderkey, n_customers, n_parts,
                        n_suppliers, date_span)
    return refresh


def delete_keys(data: TpcdData, fraction: float = 0.001,
                seed: int = 737373) -> list[int]:
    """Order keys for UF2 (same count as UF1 inserts)."""
    rng = random.Random(seed)
    n_delete = max(1, round(len(data.orders) * fraction))
    keys = [row[0] for row in data.orders]
    return sorted(rng.sample(keys, min(n_delete, len(keys))))
