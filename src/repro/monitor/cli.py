"""The ``python -m repro monitor`` command.

Runs a monitored dispatcher-scheduled throughput workload (the open30
suite plus update pairs on the chaos dispatcher pool) and prints the
``repro-monitor-v1`` workload report — the ST03 profile, the ST04
statement view, gauge series and the CCMS alert table.
"""

from __future__ import annotations

import json
import sys

from repro.monitor.profile import build_report, render_report


def run_monitor_command(args) -> int:
    from repro.core.powertest import build_sap_system
    from repro.core.throughput import run_throughput_test
    from repro.r3.appserver import R3Version
    from repro.reports import open30
    from repro.sim.chaos import default_chaos_config
    from repro.tpcd.dbgen import delete_keys, generate, generate_refresh_orders

    if args.monitor_streams < 1:
        print(f"monitor: --monitor-streams must be >= 1: "
              f"{args.monitor_streams}", file=sys.stderr)
        return 2
    if args.window <= 0:
        print(f"monitor: --window must be > 0: {args.window}",
              file=sys.stderr)
        return 2
    sections = []
    if args.profile is not None:
        sections.append("profile")
    if args.alerts:
        sections.append("alerts")
    if args.stat_records:
        sections.append("stat_records")
    if not sections:
        sections = ["profile", "alerts"]

    data = generate(args.sf)
    r3 = build_sap_system(data, R3Version.V30)
    r3.monitor.sample_interval_s = args.window
    r3.monitor.enable()
    suite = open30.make_queries(args.sf)
    pair_size = max(1, round(len(data.orders) * 0.001))
    update_sets = [
        (generate_refresh_orders(
            data, seed=123 + i,
            start_key=data.max_orderkey + 1 + i * pair_size),
         delete_keys(data, seed=321 + i))
        for i in range(2)
    ]
    result = run_throughput_test(
        r3, suite, streams=args.monitor_streams, update_sets=update_sets,
        dispatcher=default_chaos_config())

    report = build_report(
        r3.monitor,
        meta={
            "scale_factor": args.sf,
            "release": "3.0",
            "streams": args.monitor_streams,
            "window_s": args.window,
            "elapsed_s": round(result.elapsed_s, 6),
            "queries_per_hour": round(result.queries_per_hour, 3),
        },
        include_stat_records="stat_records" in sections)

    if args.format == "json":
        payload = json.dumps(report, indent=2)
    else:
        payload = render_report(report, sections=tuple(sections))
    print(payload)
    if args.monitor_out:
        with open(args.monitor_out, "w") as fh:
            fh.write(json.dumps(report, indent=2))
            fh.write("\n")
        print(f"workload report written to {args.monitor_out}",
              file=sys.stderr)
    return 0
