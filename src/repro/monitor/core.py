"""The workload monitor: STAT records, layer accounting, gauge series.

One :class:`WorkloadMonitor` lives on every engine (and is shared by
the R/3 system wrapped around it, exactly like the clock and metrics).
Three collection surfaces:

* **Layer accounting** — instrumented code wraps its work in
  ``with monitor.layer("dbif"):`` blocks.  Attribution is *exclusive*
  top-of-stack: at any simulated instant the elapsed ticks belong to
  the innermost open layer, so nesting (engine inside DBIF inside the
  dialog step's base ABAP layer, WAL commit inside engine) decomposes a
  step without double counting.

* **STAT records** — the dispatcher (or the power-test loop) brackets a
  dialog step with :meth:`~WorkloadMonitor.begin_step` /
  :meth:`~WorkloadMonitor.end_step`; the step's response time is
  decomposed into queue wait, roll-in/out, ABAP, DBIF, engine and
  commit seconds that sum *exactly* to the response time (float
  residue is folded into the ABAP component and reported in
  ``residual_s``).  Records live in a fixed-size ring.

* **Gauges** — windowed rates (buffer quality, cursor-cache and
  buffer-pool hit rates, breaker trip/fast-fail events) computed from
  metric deltas since the previous sample, plus instantaneous sources
  (dispatcher queue depth, breaker state) registered via
  :meth:`~WorkloadMonitor.attach_source`, sampled into per-gauge ring
  series every ``sample_interval_s`` simulated seconds.  Each sample
  window is fed to the CCMS :class:`~repro.monitor.alerts.AlertEngine`.

The monitor only ever *reads* ``clock.now`` — it never charges — so
enabling it is tick-identical to disabling it; the only trace it leaves
are ``monitor.*`` metric counters.
"""

from __future__ import annotations

import hashlib
import re
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.monitor.alerts import AlertEngine, default_alert_rules

#: the layers a STAT record decomposes a dialog step into, in report order
STEP_LAYERS = ("rollin", "rollout", "abap", "dbif", "engine", "commit")

#: gauges whose per-window value is a delta of these cumulative metrics
_EVENT_GAUGES = (
    ("breaker_open_events", "dbif.breaker.open"),
    ("fastfail_events", "dbif.breaker.fast_fails"),
    ("shed_events", "dispatcher.shed"),
    ("ddlog_invalidation_events", "cluster.ddlog_invalidations"),
)

#: gauges that are hit/(hit+miss) style rates over a sample window
_RATE_GAUGES = (
    ("pool_hit_rate", "buffer.hits", "buffer.misses"),
    ("cursor_hit_rate", "dbif.cursor_cache_hits",
     "dbif.cursor_cache_misses"),
)

_WHITESPACE = re.compile(r"\s+")


class _NoopLayer:
    """Shared do-nothing layer; the disabled-mode return of ``layer()``."""

    __slots__ = ()

    def __enter__(self) -> "_NoopLayer":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: the singleton no-op layer (identity-testable, never allocates)
NOOP_LAYER = _NoopLayer()


class _Layer:
    """Reusable push/pop token for one layer name (state lives in the
    monitor, so one token per name serves arbitrarily nested blocks)."""

    __slots__ = ("_monitor", "_name")

    def __init__(self, monitor: "WorkloadMonitor", name: str) -> None:
        self._monitor = monitor
        self._name = name

    def __enter__(self) -> "_Layer":
        self._monitor._push(self._name)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._monitor._pop(self._name)
        return False


@dataclass
class StatRecord:
    """One dialog step's statistics record (the R/3 STAT file line).

    ``queue_wait_s + rollin_s + rollout_s + abap_s + dbif_s + engine_s
    + commit_s`` — evaluated in that order — equals :attr:`response_s`
    exactly; the float residue absorbed into ``abap_s`` to make that
    hold is reported in ``residual_s``.
    """

    seq: int
    task: str                  #: ``dialog`` | ``update`` | ``batch``
    label: str
    stream: int
    wp: str
    outcome: str               #: ``completed`` | ``shed`` | ``failed`` ...
    start_s: float
    end_s: float
    queue_wait_s: float
    server: str = ""           #: application server name ("" = primary)
    rollin_s: float = 0.0
    rollout_s: float = 0.0
    abap_s: float = 0.0
    dbif_s: float = 0.0
    engine_s: float = 0.0
    commit_s: float = 0.0
    residual_s: float = 0.0

    @property
    def response_s(self) -> float:
        """Queue wait plus the roll-in-to-roll-out window."""
        return self.queue_wait_s + (self.end_s - self.start_s)

    @property
    def db_s(self) -> float:
        """The ST03 "DB time" component: everything below the DBIF."""
        return self.dbif_s + self.engine_s + self.commit_s

    def decomposed_s(self) -> float:
        """The layer sum, in the canonical (conservation-checked) order."""
        return (self.queue_wait_s + self.rollin_s + self.rollout_s
                + self.abap_s + self.dbif_s + self.engine_s
                + self.commit_s)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "task": self.task,
            "label": self.label,
            "stream": self.stream,
            "wp": self.wp,
            "server": self.server,
            "outcome": self.outcome,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "response_s": self.response_s,
            "queue_wait_s": self.queue_wait_s,
            "rollin_s": self.rollin_s,
            "rollout_s": self.rollout_s,
            "abap_s": self.abap_s,
            "dbif_s": self.dbif_s,
            "engine_s": self.engine_s,
            "commit_s": self.commit_s,
            "residual_s": self.residual_s,
        }


class _OpenStep:
    """Bookkeeping for a step between begin_step and end_step."""

    __slots__ = ("task", "label", "stream", "wp", "queue_wait_s",
                 "start_s", "base", "server")

    def __init__(self, task: str, label: str, stream: int, wp: str,
                 queue_wait_s: float, start_s: float,
                 base: dict[str, float], server: str = "") -> None:
        self.task = task
        self.label = label
        self.stream = stream
        self.wp = wp
        self.queue_wait_s = queue_wait_s
        self.start_s = start_s
        self.base = base
        self.server = server


@dataclass
class StatementStats:
    """ST04 accounting for one distinct statement text."""

    fingerprint: str
    sql: str
    calls: int = 0
    db_s: float = 0.0
    rows: int = 0

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "calls": self.calls,
            "db_s": round(self.db_s, 6),
            "rows": self.rows,
            "per_call_s": round(self.db_s / self.calls, 6)
            if self.calls else 0.0,
        }


class RingSeries:
    """Fixed-size time series of ``(t, value)`` samples."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        self._samples.append((t, value))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def last(self) -> tuple[float, float] | None:
        return self._samples[-1] if self._samples else None

    def values(self) -> list[float]:
        return [value for _t, value in self._samples]

    def summary(self) -> dict:
        values = self.values()
        out: dict[str, object] = {"samples": len(values)}
        if values:
            out.update({
                "last": round(values[-1], 6),
                "min": round(min(values), 6),
                "max": round(max(values), 6),
                "mean": round(sum(values) / len(values), 6),
            })
        return out


def statement_fingerprint(sql: str) -> str:
    """Stable fingerprint of a statement's normalized text.

    Whitespace-normalized, case-folded — the same identity the cursor
    cache uses (parameter markers already replace all literals on the
    Open SQL path, so two executions of one report line share a
    fingerprint no matter the host-variable values).
    """
    normalized = _WHITESPACE.sub(" ", sql.strip()).lower()
    return hashlib.sha1(normalized.encode()).hexdigest()[:12]


class WorkloadMonitor:
    """Always-on workload statistics for one simulated system."""

    def __init__(self, clock, metrics, stat_capacity: int = 1024,
                 series_capacity: int = 512,
                 statement_capacity: int = 512,
                 sample_interval_s: float = 1.0,
                 rules=None) -> None:
        self._clock = clock
        self._metrics = metrics
        self.enabled = False
        self.stat_capacity = stat_capacity
        self.series_capacity = series_capacity
        self.statement_capacity = statement_capacity
        self.sample_interval_s = sample_interval_s
        self.stat_records: deque[StatRecord] = deque(maxlen=stat_capacity)
        self.statements: dict[str, StatementStats] = {}
        self.series: dict[str, RingSeries] = {}
        self.alerts = AlertEngine(
            list(rules) if rules is not None else default_alert_rules())
        self._tokens: dict[str, _Layer] = {}
        self._stack: list[str] = []
        self._last_mark = 0.0
        self._totals: dict[str, float] = {}
        self._step: _OpenStep | None = None
        self._seq = 0
        self._window_snap = None
        self._last_sample_t: float | None = None
        self._sources: dict[str, Callable[[], float | None]] = {}

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> "WorkloadMonitor":
        if not self.enabled:
            self.enabled = True
            self._last_mark = self._clock.now
            self._window_snap = self._metrics.snapshot()
            self._last_sample_t = self._clock.now
        return self

    def disable(self) -> "WorkloadMonitor":
        """Stop collecting.  Open layer state is discarded; a step that
        is still open is abandoned (its record is never written)."""
        self.enabled = False
        self._stack.clear()
        self._step = None
        return self

    def attach_source(self, name: str,
                      fn: Callable[[], float | None]) -> None:
        """Register an instantaneous gauge (e.g. dispatcher queue depth).

        ``fn()`` is called at each sample; returning ``None`` skips the
        gauge for that window.  Re-registering a name replaces the
        source (a rebuilt dispatcher takes over its gauge).
        """
        self._sources[name] = fn

    # -- layer accounting ------------------------------------------------

    def layer(self, name: str):
        """Context manager attributing enclosed ticks to ``name``."""
        if not self.enabled:
            return NOOP_LAYER
        token = self._tokens.get(name)
        if token is None:
            token = self._tokens[name] = _Layer(self, name)
        return token

    def _settle(self) -> None:
        now = self._clock.now
        if self._stack:
            elapsed = now - self._last_mark
            if elapsed:
                top = self._stack[-1]
                self._totals[top] = self._totals.get(top, 0.0) + elapsed
        self._last_mark = now

    def _push(self, name: str) -> None:
        self._settle()
        self._stack.append(name)

    def _pop(self, name: str) -> None:
        self._settle()
        if self._stack and self._stack[-1] == name:
            self._stack.pop()
        elif name in self._stack:
            # Unbalanced exit (an exception unwound past an inner
            # layer): drop everything above, keep accounting sane.
            while self._stack.pop() != name:
                pass

    # -- STAT records ----------------------------------------------------

    def begin_step(self, task: str, label: str, stream: int = 0,
                   wp: str = "", queue_wait_s: float = 0.0,
                   server: str = ""):
        """Open a dialog step; returns an opaque handle (or ``None``
        when disabled, or when a step is already open — nested steps
        are suppressed so the outer record owns the whole window)."""
        if not self.enabled or self._step is not None:
            return None
        self._push("abap")
        step = _OpenStep(task, label, stream, wp, queue_wait_s,
                         self._clock.now, dict(self._totals),
                         server=server)
        self._step = step
        return step

    def end_step(self, step, outcome: str = "completed"):
        """Close a step, append its :class:`StatRecord` to the ring."""
        if step is None or step is not self._step:
            return None
        self._pop("abap")
        self._step = None
        now = self._clock.now
        base = step.base
        deltas = {
            name: self._totals.get(name, 0.0) - base.get(name, 0.0)
            for name in STEP_LAYERS
        }
        self._seq += 1
        record = StatRecord(
            seq=self._seq, task=step.task, label=step.label,
            stream=step.stream, wp=step.wp, outcome=outcome,
            start_s=step.start_s, end_s=now,
            queue_wait_s=step.queue_wait_s, server=step.server,
            rollin_s=deltas["rollin"], rollout_s=deltas["rollout"],
            abap_s=deltas["abap"], dbif_s=deltas["dbif"],
            engine_s=deltas["engine"], commit_s=deltas["commit"],
        )
        # Exact conservation: fold the float residue of regrouping the
        # per-layer sums into the ABAP component, iterating the fixup
        # until the canonical-order sum reproduces response_s bit-exactly.
        residual = record.response_s - record.decomposed_s()
        record.residual_s = residual
        for _ in range(4):
            if not residual:
                break
            record.abap_s += residual
            residual = record.response_s - record.decomposed_s()
        self.stat_records.append(record)
        self._metrics.count("monitor.stat_records")
        self.maybe_sample()
        return record

    # -- ST04 statement accounting ---------------------------------------

    def record_statement(self, sql: str, db_s: float, rows: int) -> None:
        """Charge one DBIF call's DB time to its statement text."""
        stats = self.statements.get(sql)
        if stats is None:
            if len(self.statements) >= self.statement_capacity:
                self._metrics.count("monitor.statements_dropped")
                return
            stats = self.statements[sql] = StatementStats(
                fingerprint=statement_fingerprint(sql), sql=sql)
        stats.calls += 1
        stats.db_s += db_s
        stats.rows += rows

    def top_statements(self, n: int = 10) -> list[StatementStats]:
        """The ST04 view: statements ranked by accumulated DB time."""
        return sorted(self.statements.values(),
                      key=lambda s: (-s.db_s, s.fingerprint))[:n]

    # -- gauge sampling --------------------------------------------------

    def maybe_sample(self) -> None:
        """Take a sample if the interval elapsed since the last one."""
        if not self.enabled:
            return
        if self._clock.now - self._last_sample_t >= self.sample_interval_s:
            self.sample()

    def sample(self) -> list:
        """Close the current window: compute gauges, append to series,
        feed the alert engine.  Returns the alert transitions caused."""
        if not self.enabled:
            return []
        now = self._clock.now
        delta = self._window_snap.delta()
        gauges: dict[str, float] = {}
        for gauge, metric in _EVENT_GAUGES:
            gauges[gauge] = float(delta.get(metric, 0.0))
        for gauge, hit_metric, miss_metric in _RATE_GAUGES:
            hits = delta.get(hit_metric, 0.0)
            misses = delta.get(miss_metric, 0.0)
            if hits + misses > 0:
                gauges[gauge] = hits / (hits + misses)
        lookups = delta.get("buffer_mgr.lookups", 0.0)
        if lookups > 0:
            gauges["buffer_quality"] = \
                delta.get("buffer_mgr.hits", 0.0) / lookups
        gauges["wal_backlog"] = (self._metrics.get("wal.appends")
                                 - self._metrics.get("wal.records_flushed"))
        for name, fn in self._sources.items():
            value = fn()
            if value is not None:
                gauges[name] = float(value)
        for name, value in gauges.items():
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = RingSeries(
                    name, self.series_capacity)
            series.append(now, value)
        self._window_snap = self._metrics.snapshot()
        self._last_sample_t = now
        self._metrics.count("monitor.samples")
        transitions = self.alerts.observe(now, gauges)
        for event in transitions:
            self._metrics.count("monitor.alerts_fired"
                                if event.kind == "fired"
                                else "monitor.alerts_cleared")
        return transitions

    def finish(self) -> None:
        """Force a final sample so the tail window is never lost."""
        if self.enabled:
            self.sample()
