"""Always-on workload statistics: STAT records, profiles, CCMS alerts.

The R/3 installations the paper measured were never "un-instrumented":
every dialog step writes a statistics record, the ST03 workload monitor
aggregates them into task-type profiles, ST04 watches the database, and
CCMS raises alerts when thresholds are breached.  This package is that
stack for the simulator — a :class:`WorkloadMonitor` that work
processes, the DBIF, the engine and the WAL report into, with gauge
time series, windowed ST03/ST04 aggregation and a threshold+hysteresis
alert engine on top.

Two invariants, shared with the tracer (DESIGN.md §14):

* the monitor never charges the simulated clock — enabling it changes
  a run's ticks by exactly zero;
* disabled mode is allocation-free on the hot paths — ``layer()``
  returns a shared no-op singleton and ``begin_step`` returns ``None``.
"""

from repro.monitor.alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    default_alert_rules,
)
from repro.monitor.core import (
    NOOP_LAYER,
    STEP_LAYERS,
    RingSeries,
    StatementStats,
    StatRecord,
    WorkloadMonitor,
)
from repro.monitor.profile import build_report, render_report

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "NOOP_LAYER",
    "RingSeries",
    "STEP_LAYERS",
    "StatRecord",
    "StatementStats",
    "WorkloadMonitor",
    "build_report",
    "default_alert_rules",
    "render_report",
]
