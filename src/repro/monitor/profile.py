"""ST03/ST04-style aggregation of monitor state into a workload report.

:func:`build_report` folds a :class:`~repro.monitor.core.WorkloadMonitor`
into the ``repro-monitor-v1`` JSON document:

* ``profile`` — the ST03 workload profile: per task type (dialog /
  update / batch) the step count, mean response time, p50/p95/p99
  digests, and the mean layer decomposition (queue wait, roll-in/out,
  ABAP, DBIF, engine, commit).
* ``db`` — the ST04 view: top statements by accumulated DB time, with
  call counts, rows shipped and per-call time.
* ``gauges`` — last/min/max/mean summaries of each sampled ring series.
* ``alerts`` — the CCMS engine's rule table and transition log.
* ``stat_records`` — the raw STAT ring (optional; large).

:func:`render_report` prints the same document as monospace tables.
"""

from __future__ import annotations

from repro.core.results import render_table
from repro.monitor.core import STEP_LAYERS, WorkloadMonitor

FORMAT = "repro-monitor-v1"

#: report order for task types (anything unexpected sorts after these)
_TASK_ORDER = {"dialog": 0, "update": 1, "batch": 2}


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile over a sorted copy of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without math
    return ordered[int(rank) - 1]


def _task_profile(task: str, records) -> dict:
    responses = [r.response_s for r in records]
    steps = len(records)
    layers = {"queue_wait_s": sum(r.queue_wait_s for r in records) / steps}
    for layer in STEP_LAYERS:
        layers[f"{layer}_s"] = \
            sum(getattr(r, f"{layer}_s") for r in records) / steps
    outcomes: dict[str, int] = {}
    for r in records:
        outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
    return {
        "task": task,
        "steps": steps,
        "response_s": {
            "mean": sum(responses) / steps,
            "p50": percentile(responses, 50),
            "p95": percentile(responses, 95),
            "p99": percentile(responses, 99),
            "max": max(responses),
        },
        "mean_layers_s": layers,
        "db_share": (sum(r.db_s for r in records)
                     / max(sum(responses), 1e-12)),
        "outcomes": outcomes,
    }


def build_report(monitor: WorkloadMonitor, meta: dict | None = None,
                 top_statements: int = 10,
                 include_stat_records: bool = False) -> dict:
    """The ``repro-monitor-v1`` workload report document."""
    by_task: dict[str, list] = {}
    by_server: dict[str, list] = {}
    for record in monitor.stat_records:
        by_task.setdefault(record.task, []).append(record)
        by_server.setdefault(record.server, []).append(record)
    tasks = sorted(by_task,
                   key=lambda t: (_TASK_ORDER.get(t, len(_TASK_ORDER)), t))
    report = {
        "format": FORMAT,
        "meta": dict(meta or {}),
        "profile": [_task_profile(task, by_task[task]) for task in tasks],
        "db": {
            "statements": len(monitor.statements),
            "top": [stats.to_dict()
                    for stats in monitor.top_statements(top_statements)],
        },
        "gauges": {name: series.summary()
                   for name, series in sorted(monitor.series.items())},
        "alerts": monitor.alerts.to_dict(),
        "counters": {
            "stat_records": len(monitor.stat_records),
            "stat_records_total": monitor._metrics.get(
                "monitor.stat_records"),
            "samples": monitor._metrics.get("monitor.samples"),
            "statements_dropped": monitor._metrics.get(
                "monitor.statements_dropped"),
        },
    }
    # Per-server ST03 section: only meaningful (and only emitted) when
    # steps from more than one application server share the STAT ring —
    # single-server reports are byte-identical to before.
    if len(by_server) > 1:
        report["profile_by_server"] = [
            {**_task_profile("all", by_server[server]),
             "server": server or "(unattributed)"}
            for server in sorted(by_server)
        ]
    if include_stat_records:
        report["stat_records"] = [r.to_dict()
                                  for r in monitor.stat_records]
    return report


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def _render_profile(report: dict) -> str:
    rows = []
    for prof in report["profile"]:
        resp = prof["response_s"]
        layers = prof["mean_layers_s"]
        rows.append([
            prof["task"], prof["steps"],
            _ms(resp["mean"]), _ms(resp["p50"]), _ms(resp["p95"]),
            _ms(resp["p99"]),
            _ms(layers["queue_wait_s"]),
            _ms(layers["rollin_s"] + layers["rollout_s"]),
            _ms(layers["abap_s"]),
            _ms(layers["dbif_s"]),
            _ms(layers["engine_s"]),
            _ms(layers["commit_s"]),
            f"{prof['db_share'] * 100:.1f}%",
        ])
    if not rows:
        rows.append(["(no steps recorded)"] + ["-"] * 12)
    return render_table(
        ["Task", "Steps", "Mean ms", "p50", "p95", "p99", "Queue",
         "Roll", "ABAP", "DBIF", "Engine", "Commit", "DB%"],
        rows, title="ST03 workload profile (per-step means, ms)")


def _render_server_profile(report: dict) -> str:
    rows = []
    for prof in report["profile_by_server"]:
        resp = prof["response_s"]
        layers = prof["mean_layers_s"]
        rows.append([
            prof["server"], prof["steps"],
            _ms(resp["mean"]), _ms(resp["p95"]),
            _ms(layers["queue_wait_s"]),
            _ms(layers["dbif_s"] + layers["engine_s"]
                + layers["commit_s"]),
            f"{prof['db_share'] * 100:.1f}%",
        ])
    return render_table(
        ["Server", "Steps", "Mean ms", "p95", "Queue", "DB ms", "DB%"],
        rows, title="ST03 per-application-server profile")


def _render_db(report: dict) -> str:
    rows = []
    for stmt in report["db"]["top"]:
        sql = stmt["sql"]
        if len(sql) > 48:
            sql = sql[:45] + "..."
        rows.append([stmt["fingerprint"], stmt["calls"],
                     _ms(stmt["db_s"]), _ms(stmt["per_call_s"]),
                     stmt["rows"], sql])
    if not rows:
        rows.append(["(no statements recorded)"] + ["-"] * 5)
    return render_table(
        ["Fingerprint", "Calls", "DB ms", "ms/call", "Rows", "Statement"],
        rows,
        title=f"ST04 top statements by DB time "
              f"({report['db']['statements']} distinct)")


def _render_gauges(report: dict) -> str:
    rows = []
    for name, summary in report["gauges"].items():
        if summary["samples"]:
            rows.append([name, summary["samples"],
                         f"{summary['last']:g}", f"{summary['min']:g}",
                         f"{summary['max']:g}", f"{summary['mean']:g}"])
        else:
            rows.append([name, 0, "-", "-", "-", "-"])
    if not rows:
        rows.append(["(no gauges sampled)", "-", "-", "-", "-", "-"])
    return render_table(
        ["Gauge", "Samples", "Last", "Min", "Max", "Mean"],
        rows, title="Gauge series")


def _render_alerts(report: dict) -> str:
    alerts = report["alerts"]
    rows = [[rule["name"], rule["condition"], rule["severity"],
             rule["fired"], "yes" if rule["active"] else "no"]
            for rule in alerts["rules"]]
    lines = [render_table(
        ["Rule", "Condition", "Severity", "Fired", "Active"],
        rows, title=f"CCMS alerts ({alerts['fired_total']} fired)")]
    if alerts["events"]:
        event_rows = [[f"{event['t']:.3f}", event["kind"], event["rule"],
                       f"{event['value']:g}", event["condition"]]
                      for event in alerts["events"]]
        lines.append(render_table(
            ["t", "Event", "Rule", "Value", "Condition"], event_rows,
            title="Alert log"))
    return "\n\n".join(lines)


def _render_stat_records(report: dict) -> str:
    rows = []
    for r in report.get("stat_records", []):
        rows.append([r["seq"], r["task"], r["label"], r["wp"],
                     r["outcome"], _ms(r["response_s"]),
                     _ms(r["queue_wait_s"]), _ms(r["abap_s"]),
                     _ms(r["dbif_s"]), _ms(r["engine_s"]),
                     _ms(r["commit_s"])])
    if not rows:
        rows.append(["(empty STAT ring)"] + ["-"] * 10)
    return render_table(
        ["Seq", "Task", "Step", "WP", "Outcome", "Resp ms", "Queue",
         "ABAP", "DBIF", "Engine", "Commit"],
        rows, title="STAT records")


def render_report(report: dict, sections: tuple[str, ...] | None = None
                  ) -> str:
    """Monospace rendering; ``sections`` picks from ``profile``,
    ``alerts``, ``stat_records`` (``None`` renders everything)."""
    want = set(sections) if sections else {"profile", "alerts"}
    if "stat_records" in report and sections is None:
        want.add("stat_records")
    parts = []
    meta = report.get("meta") or {}
    if meta:
        parts.append("  ".join(f"{key}={value}"
                               for key, value in sorted(meta.items())))
    if "profile" in want:
        parts.append(_render_profile(report))
        if "profile_by_server" in report:
            parts.append(_render_server_profile(report))
        parts.append(_render_db(report))
        parts.append(_render_gauges(report))
    if "alerts" in want:
        parts.append(_render_alerts(report))
    if "stat_records" in want:
        parts.append(_render_stat_records(report))
    return "\n\n".join(parts)
