"""CCMS-style alert rules: thresholds with hysteresis over gauge windows.

An :class:`AlertRule` watches one gauge.  The engine is fed one gauge
dict per monitor sample window; a rule *fires* after ``fire_after``
consecutive breaching windows and *clears* after ``clear_after``
consecutive non-breaching ones — the hysteresis that keeps a gauge
oscillating around its threshold from ringing the bell on every sample.
Windows in which the gauge was not observed (e.g. no buffered lookups
happened, so no buffer-quality sample exists) leave the rule's streaks
untouched.

Everything runs on simulated time and plain comparisons, so a chaos
sweep's alert log is bit-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over a monitor gauge."""

    name: str
    gauge: str
    op: str
    threshold: float
    #: consecutive breaching windows before the alert fires
    fire_after: int = 1
    #: consecutive calm windows before an active alert clears
    clear_after: int = 1
    severity: str = "yellow"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown alert op {self.op!r} "
                             f"(choose from {sorted(_OPS)})")
        if self.fire_after < 1 or self.clear_after < 1:
            raise ValueError(
                f"{self.name}: fire_after/clear_after must be >= 1")

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        return f"{self.gauge} {self.op} {self.threshold:g}"


@dataclass
class AlertEvent:
    """One transition: a rule firing or clearing at simulated time ``t``."""

    kind: str                  #: ``fired`` | ``cleared``
    rule: str
    severity: str
    t: float
    value: float
    condition: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rule": self.rule,
            "severity": self.severity,
            "t": round(self.t, 6),
            "value": round(self.value, 6),
            "condition": self.condition,
        }


class _RuleState:
    __slots__ = ("breach_streak", "calm_streak", "active", "fired")

    def __init__(self) -> None:
        self.breach_streak = 0
        self.calm_streak = 0
        self.active = False
        self.fired = 0


@dataclass
class AlertEngine:
    """Streaming evaluator for a fixed rule set."""

    rules: list[AlertRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names: {names}")
        self._state = {rule.name: _RuleState() for rule in self.rules}
        self.events: list[AlertEvent] = []

    def add_rules(self, rules: list[AlertRule]) -> None:
        """Register additional rules after construction (e.g. the
        cluster rule set, added only when a cluster is built).  Names
        must not collide with already-registered rules."""
        for rule in rules:
            if rule.name in self._state:
                raise ValueError(f"duplicate alert rule name: {rule.name}")
            self.rules.append(rule)
            self._state[rule.name] = _RuleState()

    # -- feeding ---------------------------------------------------------

    def observe(self, t: float, gauges: dict[str, float]) -> list[AlertEvent]:
        """Evaluate one sample window; returns the transitions it caused."""
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            value = gauges.get(rule.gauge)
            if value is None:
                continue
            state = self._state[rule.name]
            if rule.breached(value):
                state.breach_streak += 1
                state.calm_streak = 0
                if not state.active \
                        and state.breach_streak >= rule.fire_after:
                    state.active = True
                    state.fired += 1
                    transitions.append(AlertEvent(
                        "fired", rule.name, rule.severity, t, value,
                        rule.describe()))
            else:
                state.calm_streak += 1
                state.breach_streak = 0
                if state.active and state.calm_streak >= rule.clear_after:
                    state.active = False
                    transitions.append(AlertEvent(
                        "cleared", rule.name, rule.severity, t, value,
                        rule.describe()))
        self.events.extend(transitions)
        return transitions

    # -- reading ---------------------------------------------------------

    @property
    def fired_total(self) -> int:
        return sum(state.fired for state in self._state.values())

    def fired_by_rule(self) -> dict[str, int]:
        return {name: state.fired
                for name, state in self._state.items() if state.fired}

    def active(self) -> list[str]:
        return [name for name, state in self._state.items()
                if state.active]

    def to_dict(self) -> dict:
        return {
            "rules": [
                {"name": rule.name, "condition": rule.describe(),
                 "severity": rule.severity,
                 "fire_after": rule.fire_after,
                 "clear_after": rule.clear_after,
                 "fired": self._state[rule.name].fired,
                 "active": self._state[rule.name].active}
                for rule in self.rules
            ],
            "fired_total": self.fired_total,
            "active": self.active(),
            "events": [event.to_dict() for event in self.events],
        }


def default_alert_rules() -> list[AlertRule]:
    """The stock CCMS rule set.

    Deliberately conservative: each default rule watches a gauge that is
    *structurally* zero on a fault-free system (the breaker cannot open
    and cannot fast-fail without injected faults; the WAL backlog only
    grows when flushes fall behind appends), so the chaos invariant
    "the ``none`` profile stays silent" holds by construction at every
    stream count, while the heavy profile's breaker trip is guaranteed
    to ring ``breaker_tripped``.  Noisier gauges (queue depth, buffer
    quality) are for custom rules tuned to an installation's pool size.
    """
    return [
        AlertRule("breaker_tripped", "breaker_open_events", ">=", 1,
                  fire_after=1, clear_after=1, severity="red"),
        AlertRule("fastfail_storm", "fastfail_events", ">=", 5,
                  fire_after=1, clear_after=1, severity="yellow"),
        AlertRule("wal_backlog_high", "wal_backlog", ">=", 512,
                  fire_after=2, clear_after=2, severity="yellow"),
        # The compaction_backlog gauge is only attached on LSM
        # databases, so heap-only runs are structurally silent: the
        # engine skips rules whose gauge is absent from the sample.
        AlertRule("compaction_backlog_high", "compaction_backlog",
                  ">=", 4, fire_after=2, clear_after=2,
                  severity="yellow"),
    ]


def cluster_alert_rules() -> list[AlertRule]:
    """CCMS rules added when a multi-app-server cluster is built.

    Same structural-silence discipline as the defaults: a healthy
    cluster has zero servers down, and DDLOG invalidation traffic only
    reaches storm levels when writes churn the shared log far faster
    than the workload's steady state (the threshold is per sample
    window, with two consecutive breaching windows required).
    """
    return [
        AlertRule("appserver_down", "servers_down", ">=", 1,
                  fire_after=1, clear_after=1, severity="red"),
        AlertRule("ddlog_invalidation_storm",
                  "ddlog_invalidation_events", ">=", 50,
                  fire_after=2, clear_after=2, severity="yellow"),
    ]
