"""Command-line entry point: ``python -m repro <experiment>``.

Runs any of the paper's experiments from the shell:

    python -m repro power --release 3.0 --sf 0.002
    python -m repro dbsize
    python -m repro loading --sf 0.0005
    python -m repro plan-trap
    python -m repro aggregation
    python -m repro caching
    python -m repro warehouse
    python -m repro eis

the tracer over the power test:

    python -m repro trace power --release 2.2 --sf 0.002 --format=text
    python -m repro trace power --format=chrome --trace-out trace.json

the static analyzer over the report sources:

    python -m repro lint --format=json

the rule-driven report rewriter (plans 2.2->3.0 pushdown rewrites from
the analyzer's findings; --check proves each one by running original
and rewritten reports against the same seeded database):

    python -m repro rewrite
    python -m repro rewrite --diff
    python -m repro rewrite --check --family open22 --sf 0.001 \
        --report rewrite-report.json

the benchmark-result differ (``--gate`` turns it into a CI regression
gate: exit 1 when any extra_info field moved more than the threshold):

    python -m repro bench-diff BENCH_old.json BENCH_new.json
    python -m repro bench-diff BENCH_base.json BENCH_new.json \
        --gate 10 --gate-allow wall_s,overhead_pct

the always-on workload monitor (runs a monitored throughput workload
and prints the ST03/ST04-style report with CCMS alerts):

    python -m repro monitor --profile --sf 0.001
    python -m repro monitor --alerts --stat-records --format=json \
        --monitor-out workload-report.json

the chaos harness (dispatcher-scheduled throughput under fault
storms; exits 1 if any robustness invariant is violated):

    python -m repro chaos --streams 4 --profile light --sf 0.001
    python -m repro chaos --streams 2,4,8 --profile all --chaos-out chaos.json

the app-server failover scenario (multi-server scale-out with a
mid-run crash; exits 1 if any scale-out invariant is violated):

    python -m repro chaos --kill-appserver --servers 1,2,4 --sf 0.001
    python -m repro chaos --kill-appserver --routing round_robin \
        --sync-period 2.0 --chaos-out scaleout.json

the crash-point fuzzer (kill the engine at sampled WAL/checkpoint
boundaries, recover, resume, compare digests; exits 1 on divergence):

    python -m repro chaos --crash-fuzz --fuzz-workloads load --sf 0.0002
    python -m repro chaos --crash-fuzz --fuzz-sample 12 --chaos-out fuzz.json

and a single crash/recover demonstration printing the ARIES pass
statistics:

    python -m repro recover --sf 0.0002 --crash-at 120 --torn
"""

from __future__ import annotations

import argparse
import sys

from repro.core import experiments as ex
from repro.core.powertest import build_sap_system, run_power_test
from repro.core.results import duration_cell, kb_cell, render_table
from repro.r3.appserver import R3Version
from repro.sim.clock import format_duration
from repro.tpcd.dbgen import generate


#: sentinel for a bare ``--profile`` (the monitor's section flag);
#: chaos treats it as "all"
PROFILE_FLAG = "__flag__"


def _version(args) -> R3Version:
    return R3Version.V22 if args.release == "2.2" else R3Version.V30


def _build_30(args):
    return build_sap_system(generate(args.sf), R3Version.V30)


def cmd_power(args) -> None:
    result = run_power_test(args.sf, _version(args),
                            include_updates=not args.no_updates,
                            degree=args.degree, storage=args.storage)
    print(result.render())


def cmd_dbsize(args) -> None:
    result = ex.table2_dbsize(scale_factor=args.sf)
    rows = [
        [entity, kb_cell(e["orig_data"]), kb_cell(e["orig_index"]),
         kb_cell(e["sap_data"]), kb_cell(e["sap_index"])]
        for entity, e in result.entities.items()
    ]
    print(render_table(
        ["", "Orig Data KB", "Orig Idx KB", "SAP Data KB", "SAP Idx KB"],
        rows, title=f"Table 2 at SF={args.sf}",
    ))
    print(f"inflation: data {result.data_inflation:.1f}x, "
          f"index {result.index_inflation:.1f}x")


def cmd_loading(args) -> None:
    timings = ex.table3_loading(scale_factor=args.sf,
                                storage=args.storage)
    for entity in ("SUPPLIER", "PART", "PARTSUPP", "CUSTOMER",
                   "ORDER+LINEITEM"):
        print(f"{entity:16} {duration_cell(timings.effective(entity))}")


def cmd_plan_trap(args) -> None:
    result = ex.table6_plan_choice(_build_30(args))
    for (interface, label), seconds in sorted(result.times.items()):
        print(f"{interface:>6} / {label:<4} "
              f"{duration_cell(seconds):>10} "
              f"({result.rows[(interface, label)]} rows)")


def cmd_aggregation(args) -> None:
    result = ex.table7_aggregation(_build_30(args))
    print(f"native {duration_cell(result.native_s)}  "
          f"open {duration_cell(result.open_s)}  "
          f"match={result.rows_match}")


def cmd_caching(args) -> None:
    result = ex.table8_caching(_build_30(args))
    for label, (hit_ratio, cost) in result.configs.items():
        print(f"{label:<6} hit {hit_ratio:>4.0%}  "
              f"cost {duration_cell(cost)}")


def cmd_warehouse(args) -> None:
    results = ex.table9_warehouse(_build_30(args))
    total = 0.0
    for name, entry in results.items():
        total += entry.elapsed_s
        print(f"{name:10} {entry.rows:7} rows  "
              f"{duration_cell(entry.elapsed_s)}")
    print(f"{'total':10} {'':>12} {duration_cell(total)}")


def cmd_eis(args) -> None:
    from repro.warehouse.eis import EisWarehouse, breakeven_queries
    from repro.reports import open30

    r3 = _build_30(args)
    warehouse = EisWarehouse.build_from_sap(r3)
    eis_total = warehouse.run_power_test(args.sf)
    suite = open30.make_queries(args.sf)
    span = r3.measure()
    for number in range(1, 18):
        suite[number](r3)
    open_total = span.stop()
    rounds = breakeven_queries(warehouse.build.total_s, open_total,
                               eis_total)
    print(f"construction {format_duration(warehouse.build.total_s)}, "
          f"power test on EIS {format_duration(eis_total)}, "
          f"via Open SQL {format_duration(open_total)}")
    print(f"break-even after ~{rounds:.1f} power-test rounds")


def cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint_command

    if args.format == "chrome":
        print("lint: --format=chrome is only valid for 'trace'",
              file=sys.stderr)
        return 2
    return run_lint_command(args)


def cmd_rewrite(args) -> int:
    from repro.analysis.rewrite.cli import run_rewrite_command

    if args.format == "chrome":
        print("rewrite: --format=chrome is only valid for 'trace'",
              file=sys.stderr)
        return 2
    return run_rewrite_command(args)


def cmd_trace(args) -> int:
    from repro.trace.cli import run_trace_command

    return run_trace_command(args)


def cmd_chaos(args) -> int:
    import json

    from repro.sim.chaos import CHAOS_PROFILES, run_chaos

    if args.format == "chrome":
        print("chaos: --format=chrome is only valid for 'trace'",
              file=sys.stderr)
        return 2
    if args.crash_fuzz:
        from repro.sim.crashfuzz import FUZZ_WORKLOADS, run_crash_fuzz

        workloads = tuple(
            part.strip() for part in args.fuzz_workloads.split(",")
            if part.strip())
        bad = [w for w in workloads if w not in FUZZ_WORKLOADS]
        if bad:
            print(f"chaos: unknown --fuzz-workloads entries {bad} "
                  f"(choose from {', '.join(FUZZ_WORKLOADS)})",
                  file=sys.stderr)
            return 2
        report = run_crash_fuzz(
            scale_factor=args.sf, workloads=workloads,
            commit_interval=args.commit_interval,
            sample=args.fuzz_sample or None,
            storage=args.storage)
        payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
        if args.chaos_out:
            with open(args.chaos_out, "w") as handle:
                handle.write(payload + "\n")
        if args.format == "json":
            print(payload)
        else:
            print(report.render())
            if args.chaos_out:
                print(f"report written to {args.chaos_out}")
        return 0 if report.ok else 1
    if args.kill_appserver:
        from repro.sim.chaos import run_kill_appserver

        try:
            server_counts = tuple(
                int(part) for part in args.servers.split(",")
                if part.strip())
        except ValueError:
            print(f"chaos: bad --servers value {args.servers!r} "
                  f"(expected e.g. '2' or '1,2,4')", file=sys.stderr)
            return 2
        if not server_counts or any(n < 1 for n in server_counts):
            print(f"chaos: --servers must list positive integers: "
                  f"{args.servers!r}", file=sys.stderr)
            return 2
        if args.routing not in ("sticky", "round_robin"):
            print(f"chaos: unknown --routing {args.routing!r} (choose "
                  f"from sticky, round_robin)", file=sys.stderr)
            return 2
        # --streams defaults to the sweep list "2,4,8"; the scale-out
        # scenario wants one stream count, so only a single integer is
        # taken over, anything else falls back to the default 6.
        streams = 6
        if "," not in args.streams:
            try:
                streams = int(args.streams)
            except ValueError:
                pass
        report = run_kill_appserver(
            scale_factor=args.sf, server_counts=server_counts,
            streams=streams, routing=args.routing,
            sync_period_s=args.sync_period)
        payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
        if args.chaos_out:
            with open(args.chaos_out, "w") as handle:
                handle.write(payload + "\n")
        if args.format == "json":
            print(payload)
        else:
            print(report.render())
            if args.chaos_out:
                print(f"report written to {args.chaos_out}")
        return 0 if report.ok else 1
    try:
        stream_counts = tuple(
            int(part) for part in args.streams.split(",") if part.strip())
    except ValueError:
        print(f"chaos: bad --streams value {args.streams!r} "
              f"(expected e.g. '4' or '2,4,8')", file=sys.stderr)
        return 2
    if not stream_counts or any(s < 1 for s in stream_counts):
        print(f"chaos: --streams must list positive integers: "
              f"{args.streams!r}", file=sys.stderr)
        return 2
    # --profile doubles as the monitor command's section flag, so
    # argparse cannot enforce choices; validate here.
    profile = args.profile
    if profile is None or profile == PROFILE_FLAG:
        profile = "all"
    if profile != "all" and profile not in CHAOS_PROFILES:
        print(f"chaos: unknown --profile {profile!r} (choose from "
              f"none, light, heavy, all)", file=sys.stderr)
        return 2
    profiles = (tuple(sorted(CHAOS_PROFILES, key=("none", "light",
                                                  "heavy").index))
                if profile == "all" else (profile,))
    report = run_chaos(scale_factor=args.sf, stream_counts=stream_counts,
                       profiles=profiles)
    payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
    if args.chaos_out:
        with open(args.chaos_out, "w") as handle:
            handle.write(payload + "\n")
    if args.format == "json":
        print(payload)
    else:
        print(report.render())
        if args.chaos_out:
            print(f"report written to {args.chaos_out}")
    return 0 if report.ok else 1


def cmd_recover(args) -> int:
    import json

    from repro.sim.crashfuzz import _WORKLOADS, _census, _run_trial
    from repro.sim.params import SimParams
    from repro.tpcd.dbgen import generate

    workload = _WORKLOADS[args.fuzz_workloads.split(",")[0].strip()
                          if args.fuzz_workloads else "load"]
    data = generate(args.sf)
    boundaries, kinds, reference = _census(
        workload, data, args.commit_interval, SimParams)
    k = args.crash_at if args.crash_at is not None \
        else max(1, boundaries // 2)
    if k > boundaries:
        print(f"recover: --crash-at {k} exceeds the workload's "
              f"{boundaries} durability boundaries", file=sys.stderr)
        return 2
    mode = "torn" if args.torn else "clean"
    trial = _run_trial(workload, data, args.commit_interval, k, mode,
                       reference, SimParams)
    payload = json.dumps(trial.to_json(), indent=2, sort_keys=True)
    if args.format == "json":
        print(payload)
    else:
        print(f"workload {workload.name!r}: {boundaries} durability "
              f"boundaries ({', '.join(sorted(kinds))})")
        print(f"crashed at boundary {k} ({trial.kind}), "
              f"mode {trial.mode}")
        print(f"recovery: losers={trial.loser_txns} "
              f"redo={trial.redo_applied} undo={trial.undo_applied} "
              f"torn_tail_dropped={trial.torn_tail_dropped}")
        print(f"resumed: {trial.resumed}; recovered digest "
              f"{'matches' if trial.digest_ok else 'DIVERGES FROM'} "
              f"the uncrashed reference")
        if trial.error:
            print(f"error: {trial.error}")
    return 0 if trial.ok else 1


def cmd_bench_diff(args) -> int:
    from repro.core.benchdiff import run_bench_diff

    if args.format == "chrome":
        print("bench-diff: --format=chrome is only valid for 'trace'",
              file=sys.stderr)
        return 2
    return run_bench_diff(args)


def cmd_monitor(args) -> int:
    from repro.monitor.cli import run_monitor_command

    if args.format == "chrome":
        print("monitor: --format=chrome is only valid for 'trace'",
              file=sys.stderr)
        return 2
    return run_monitor_command(args)


COMMANDS = {
    "power": cmd_power,
    "trace": cmd_trace,
    "lint": cmd_lint,
    "rewrite": cmd_rewrite,
    "bench-diff": cmd_bench_diff,
    "chaos": cmd_chaos,
    "monitor": cmd_monitor,
    "recover": cmd_recover,
    "dbsize": cmd_dbsize,
    "loading": cmd_loading,
    "plan-trap": cmd_plan_trap,
    "aggregation": cmd_aggregation,
    "caching": cmd_caching,
    "warehouse": cmd_warehouse,
    "eis": cmd_eis,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the SIGMOD'97 TPC-D / SAP R/3 experiments",
    )
    parser.add_argument("experiment", choices=sorted(COMMANDS))
    parser.add_argument("--sf", type=float, default=0.002,
                        help="TPC-D scale factor (default 0.002)")
    parser.add_argument("--release", choices=["2.2", "3.0"],
                        default="3.0", help="R/3 release (power test)")
    parser.add_argument("--no-updates", action="store_true",
                        help="skip UF1/UF2 in the power test")
    parser.add_argument("--storage", choices=["heap", "lsm"],
                        default="heap",
                        help="storage backend for power/loading/chaos "
                             "runs (default: heap)")
    parser.add_argument("--degree", type=int, default=1,
                        help="intra-query parallel degree for the power "
                             "test (default 1 = serial)")
    trace = parser.add_argument_group("trace")
    trace.add_argument("--top", type=int, default=10,
                       help="operators in the hot-operator table "
                            "(default 10)")
    trace.add_argument("--trace-out", default=None,
                       help="write the json/chrome trace to this file "
                            "instead of stdout")
    lint = parser.add_argument_group("lint")
    lint.add_argument("paths", nargs="*",
                      help="experiment to trace (default: power), "
                           "files/directories to lint, or the two "
                           "bench-diff inputs")
    lint.add_argument("--format", choices=["text", "json", "chrome"],
                      default="text",
                      help="output format (chrome: trace only)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: lint-baseline.json "
                           "at the repo root)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="report all findings as new")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept the current findings as the baseline")
    lint.add_argument("--lint-scale", type=float, default=1.0,
                      help="scale factor for lint cost estimates "
                           "(default 1.0 — the paper's installation)")
    rewrite = parser.add_argument_group("rewrite")
    rewrite.add_argument("--check", action="store_true",
                         help="rewrite: run the differential "
                              "verification harness (exit 1 on any "
                              "row mismatch or regression)")
    rewrite.add_argument("--diff", action="store_true",
                         help="rewrite: print unified diffs of the "
                              "rewritten modules")
    rewrite.add_argument("--report", default=None,
                         help="rewrite: write the repro-rewrite-v1 "
                              "JSON report to this file")
    rewrite.add_argument("--rewrite-out", default=None,
                         help="rewrite: write rewritten module sources "
                              "to this directory")
    rewrite.add_argument("--family", default=None,
                         help="rewrite: comma-separated report "
                              "families (default open22,native22)")
    chaos = parser.add_argument_group("chaos")
    chaos.add_argument("--streams", default="2,4,8",
                       help="comma-separated stream counts to sweep "
                            "(default 2,4,8)")
    chaos.add_argument("--profile", nargs="?", const=PROFILE_FLAG,
                       default=None,
                       help="chaos: fault profile(s) to sweep (none, "
                            "light, heavy, all; default all) / "
                            "monitor: include the ST03 workload "
                            "profile section")
    chaos.add_argument("--chaos-out", default=None,
                       help="also write the JSON chaos report to this "
                            "file")
    chaos.add_argument("--kill-appserver", action="store_true",
                       help="chaos: run the multi-app-server failover "
                            "sweep instead of the fault-profile sweep")
    chaos.add_argument("--servers", default="1,2,4",
                       help="kill-appserver: comma-separated server "
                            "counts to sweep (default 1,2,4)")
    chaos.add_argument("--routing", default="sticky",
                       help="kill-appserver: login balancer policy "
                            "(sticky or round_robin; default sticky)")
    chaos.add_argument("--sync-period", type=float, default=5.0,
                       help="kill-appserver: DDLOG buffer-coherence "
                            "sync period in simulated seconds "
                            "(default 5.0)")
    monitor = parser.add_argument_group("monitor")
    monitor.add_argument("--alerts", action="store_true",
                         help="monitor: include the CCMS alert section")
    monitor.add_argument("--stat-records", action="store_true",
                         help="monitor: include the raw STAT-record "
                              "ring")
    monitor.add_argument("--monitor-streams", type=int, default=6,
                         help="monitor: dialog streams for the "
                              "monitored workload (default 6)")
    monitor.add_argument("--window", type=float, default=1.0,
                         help="monitor: gauge sample window in "
                              "simulated seconds (default 1.0)")
    monitor.add_argument("--monitor-out", default=None,
                         help="monitor: also write the JSON workload "
                              "report to this file")
    bench = parser.add_argument_group("bench-diff")
    bench.add_argument("--gate", type=float, default=None,
                       help="bench-diff: fail (exit 1) when any "
                            "extra_info field moved more than this "
                            "many percent")
    bench.add_argument("--gate-allow", default=None,
                       help="bench-diff: comma-separated extra_info "
                            "fields exempt from --gate")
    fuzz = parser.add_argument_group("crash-fuzz / recover")
    fuzz.add_argument("--crash-fuzz", action="store_true",
                      help="chaos: run the crash-point fuzz sweep "
                           "instead of the throughput sweep")
    fuzz.add_argument("--fuzz-workloads", default="load",
                      help="comma-separated crash-fuzz workloads "
                           "(load, uf, power; default load)")
    fuzz.add_argument("--fuzz-sample", type=int, default=24,
                      help="sampled crash points per workload "
                           "(default 24; 0 = every boundary)")
    fuzz.add_argument("--commit-interval", type=int, default=8,
                      help="batch-input commit interval for the fuzzed "
                           "load (default 8)")
    fuzz.add_argument("--crash-at", type=int, default=None,
                      help="recover: durability boundary to crash at "
                           "(default: the middle one)")
    fuzz.add_argument("--torn", action="store_true",
                      help="recover: leave the in-flight frame torn on "
                           "the log tail")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.experiment](args) or 0


if __name__ == "__main__":
    sys.exit(main())
