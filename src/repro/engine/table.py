"""Physical table: heap file + indexes + maintenance."""

from __future__ import annotations

from typing import Iterator

from repro.engine.buffer import BufferPool
from repro.engine.errors import ConstraintError, ExecutionError
from repro.engine.index import BTreeIndex, HashIndex
from repro.engine.lsm import LsmTree
from repro.engine.schema import TableSchema
from repro.engine.storage import HeapFile
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams

Index = BTreeIndex | HashIndex


class Table:
    """One physical table with its indexes.

    All reads and writes charge the shared clock through the buffer
    pool; the table additionally counts tuples touched so experiment
    reports can show operation-level breakdowns.
    """

    def __init__(
        self,
        schema: TableSchema,
        buffer_pool: BufferPool,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        params: SimParams,
        storage: str = "heap",
        disk: DiskModel | None = None,
    ) -> None:
        self.schema = schema
        self.name = schema.name.lower()
        self._buffer = buffer_pool
        self._clock = clock
        self._metrics = metrics
        self._params = params
        self.storage = storage
        if storage == "lsm":
            if disk is None:
                raise ValueError("lsm storage needs the disk model")
            self.heap: HeapFile | LsmTree = LsmTree(
                schema, params, clock, metrics, disk, buffer_pool
            )
        elif storage == "heap":
            self.heap = HeapFile(schema, params.page_size_bytes)
        else:
            raise ValueError(f"unknown storage backend {storage!r}")
        self.indexes: dict[str, Index] = {}
        self._pk_index: Index | None = None
        #: the database's WriteAheadLog, or None when durability is off
        #: (the zero-touch default); set by Database at create time
        self.wal = None

    # -- index management -------------------------------------------------

    def attach_index(self, index: Index, is_primary: bool = False) -> None:
        self.indexes[index.name.lower()] = index
        if is_primary:
            self._pk_index = index
        for rowid, row in self.heap.scan():
            index.insert(row, rowid)

    def detach_index(self, name: str) -> None:
        index = self.indexes.pop(name.lower())
        if index is self._pk_index:
            self._pk_index = None
        self._buffer.invalidate_file(f"idx:{index.name}")

    @property
    def primary_index(self) -> Index | None:
        return self._pk_index

    def index_on(self, column_name: str) -> Index | None:
        """An index whose *first* key column is ``column_name``."""
        column_name = column_name.lower()
        for index in self.indexes.values():
            if index.column_names[0] == column_name:
                return index
        return None

    # -- DML ---------------------------------------------------------------

    def insert(self, row: tuple, bulk: bool = False) -> int:
        """Validate, check PK, store, maintain indexes.

        ``bulk`` marks bulk-load inserts: page writes amortise across a
        page (the loader charges one write per filled page instead of
        one per row), which is exactly the advantage SAP's batch input
        forgoes in the paper's Table 3.
        """
        row = self.schema.validate_row(row)
        self._check_primary_key(row)
        rowid = self.heap.append(row)
        self._metrics.count(f"table.{self.name}.inserts")
        if not self.heap.self_charging:
            if bulk:
                if rowid % self.heap.rows_per_page == 0:
                    self._buffer.write(self.name, self.heap.page_of(rowid),
                                       fresh=True)
            else:
                self._buffer.write(self.name, self.heap.page_of(rowid))
        for index in self.indexes.values():
            index.insert(row, rowid, bulk=bulk)
        if self.wal is not None:
            self.wal.log_insert(self.name, rowid, row,
                                self.heap.page_of(rowid))
        return rowid

    def delete(self, rowid: int) -> None:
        row = self.heap.fetch(rowid)
        for index in self.indexes.values():
            index.delete(row, rowid)
        self.heap.delete(rowid)
        self._metrics.count(f"table.{self.name}.deletes")
        if not self.heap.self_charging:
            self._buffer.write(self.name, self.heap.page_of(rowid))
        if self.wal is not None:
            self.wal.log_delete(self.name, rowid, row,
                                self.heap.page_of(rowid))

    def update(self, rowid: int, new_row: tuple) -> None:
        new_row = self.schema.validate_row(new_row)
        old_row = self.heap.fetch(rowid)
        for index in self.indexes.values():
            index.delete(old_row, rowid)
        self.heap.update(rowid, new_row)
        for index in self.indexes.values():
            index.insert(new_row, rowid)
        self._metrics.count(f"table.{self.name}.updates")
        if not self.heap.self_charging:
            self._buffer.write(self.name, self.heap.page_of(rowid))
        if self.wal is not None:
            self.wal.log_update(self.name, rowid, old_row, new_row,
                                self.heap.page_of(rowid))

    def apply_insert(self, rowid: int, row: tuple) -> None:
        """Replay an insert at its original rowid (redo / undo-of-delete).

        Skips validation and the primary-key probe — the logged row
        already passed both on the original run — but charges the same
        physical costs (page write, index maintenance) a replayed
        insert pays during recovery.
        """
        self.heap.restore_slot(rowid, row)
        self._metrics.count(f"table.{self.name}.inserts")
        if not self.heap.self_charging:
            self._buffer.write(self.name, self.heap.page_of(rowid))
        for index in self.indexes.values():
            index.insert(row, rowid)

    def _check_primary_key(self, row: tuple) -> None:
        if not self.schema.primary_key or self._pk_index is None:
            return
        key = tuple(
            row[self.schema.column_index(c)] for c in self.schema.primary_key
        )
        if any(v is None for v in key):
            raise ConstraintError(
                f"NULL in primary key of {self.name}: {key}"
            )
        if self._pk_index.search_eq(key):
            raise ConstraintError(
                f"duplicate primary key in {self.name}: {key}"
            )

    # -- access ---------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Full sequential scan charging one buffer access per page.

        Self-charging backends (the LSM) price the scan themselves —
        one buffered sequential block read per segment block plus
        memtable CPU — via ``scan_charged``.
        """
        if self.heap.self_charging:
            for rowid, row in self.heap.scan_charged():
                self._metrics.count(f"table.{self.name}.tuples_scanned")
                yield rowid, row
            return
        last_page = -1
        for rowid, row in self.heap.scan():
            page = self.heap.page_of(rowid)
            if page != last_page:
                last_page = page
                self._buffer.access(self.name, page, sequential=True)
            self._metrics.count(f"table.{self.name}.tuples_scanned")
            yield rowid, row

    def fetch_row(self, rowid: int, sequential: bool = False) -> tuple:
        """Random row fetch (what unclustered index scans pay for)."""
        if self.heap.self_charging:
            self._metrics.count(f"table.{self.name}.tuples_fetched")
            row = self.heap.read_point(rowid)
            if row is None:
                raise ExecutionError(f"fetch of dead rowid {rowid}")
            return row
        self._buffer.access(
            self.name, self.heap.page_of(rowid), sequential=sequential
        )
        self._metrics.count(f"table.{self.name}.tuples_fetched")
        return self.heap.fetch(rowid)

    # -- accounting ---------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.heap.row_count

    @property
    def data_bytes(self) -> int:
        return self.heap.data_bytes

    @property
    def index_bytes(self) -> int:
        return sum(index.size_bytes for index in self.indexes.values())
