"""Recursive-descent SQL parser.

Produces :mod:`repro.engine.sql.ast` statements containing
:mod:`repro.engine.expr` expression trees.  Subqueries become
:class:`~repro.engine.expr.SubqueryExpr` nodes holding the nested
:class:`~repro.engine.sql.ast.SelectStmt` for the planner to compile.
"""

from __future__ import annotations

import datetime

from repro.engine.errors import SqlSyntaxError
from repro.engine.expr import (
    AggCall,
    BetweenExpr,
    BinOp,
    CaseExpr,
    ColumnRef,
    DateArithExpr,
    Expr,
    ExtractExpr,
    FuncCall,
    InListExpr,
    IntervalLiteral,
    IsNullExpr,
    LikeExpr,
    Literal,
    NegExpr,
    NotExpr,
    ParamRef,
    SubqueryExpr,
)
from repro.engine.sql.ast import (
    Assignment,
    DeleteStmt,
    FromItem,
    InsertStmt,
    JoinRef,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    TableRef,
    UpdateStmt,
)
from repro.engine.sql.lexer import Token, TokenKind, tokenize

_AGG_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def parse_sql(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(text).parse_statement()


def parse_select(text: str) -> SelectStmt:
    """Parse text that must be a SELECT (view bodies, subreports)."""
    stmt = parse_sql(text)
    if not isinstance(stmt, SelectStmt):
        raise SqlSyntaxError("expected a SELECT statement")
    return stmt


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        self._param_count = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        return self._current.is_keyword(*words)

    def _accept_keyword(self, *words: str) -> bool:
        if self._check_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, got {self._current.value!r} "
                f"at {self._current.position}"
            )

    def _accept_punct(self, ch: str) -> bool:
        token = self._current
        if token.kind is TokenKind.PUNCT and token.value == ch:
            self._advance()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        if not self._accept_punct(ch):
            raise SqlSyntaxError(
                f"expected {ch!r}, got {self._current.value!r} "
                f"at {self._current.position}"
            )

    def _accept_operator(self, *ops: str) -> str | None:
        token = self._current
        if token.kind is TokenKind.OPERATOR and token.value in ops:
            self._advance()
            return token.value
        return None

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind is not TokenKind.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, got {token.value!r} at {token.position}"
            )
        self._advance()
        return token.value

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._check_keyword("SELECT"):
            stmt: Statement = self._parse_select()
        elif self._check_keyword("INSERT"):
            stmt = self._parse_insert()
        elif self._check_keyword("DELETE"):
            stmt = self._parse_delete()
        elif self._check_keyword("UPDATE"):
            stmt = self._parse_update()
        else:
            raise SqlSyntaxError(
                f"unsupported statement start {self._current.value!r}"
            )
        if self._current.kind is not TokenKind.EOF:
            raise SqlSyntaxError(
                f"trailing input at {self._current.position}: "
                f"{self._current.value!r}"
            )
        return stmt

    def _parse_select(self) -> SelectStmt:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = self._parse_select_items()
        self._expect_keyword("FROM")
        from_items = self._parse_from_items()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        group_by: list[Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())
        having = self._parse_expr() if self._accept_keyword("HAVING") else None
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit: int | None = None
        if self._accept_keyword("LIMIT"):
            token = self._current
            if token.kind is not TokenKind.NUMBER:
                raise SqlSyntaxError(f"expected number after LIMIT, got "
                                     f"{token.value!r}")
            self._advance()
            limit = int(token.value)
        return SelectStmt(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, descending)

    def _parse_select_items(self) -> list[SelectItem | Star]:
        items: list[SelectItem | Star] = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem | Star:
        token = self._current
        if token.kind is TokenKind.OPERATOR and token.value == "*":
            self._advance()
            return Star()
        if (token.kind is TokenKind.IDENT
                and self._peek_is_punct(1, ".")
                and self._peek_is_star(2)):
            qualifier = self._expect_ident()
            self._expect_punct(".")
            self._advance()  # the *
            return Star(qualifier)
        expr = self._parse_expr()
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.kind is TokenKind.IDENT:
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _peek_is_punct(self, offset: int, ch: str) -> bool:
        token = self._tokens[self._pos + offset]
        return token.kind is TokenKind.PUNCT and token.value == ch

    def _peek_is_star(self, offset: int) -> bool:
        token = self._tokens[self._pos + offset]
        return token.kind is TokenKind.OPERATOR and token.value == "*"

    def _parse_from_items(self) -> list[FromItem]:
        items = [self._parse_join_tree()]
        while self._accept_punct(","):
            items.append(self._parse_join_tree())
        return items

    def _parse_join_tree(self) -> FromItem:
        left: FromItem = self._parse_table_ref()
        while True:
            outer = False
            if self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                outer = True
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif self._accept_keyword("JOIN"):
                pass
            else:
                return left
            right = self._parse_table_ref()
            self._expect_keyword("ON")
            condition = self._parse_expr()
            left = JoinRef(left, right, condition, outer=outer)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.kind is TokenKind.IDENT:
            alias = self._expect_ident()
        return TableRef(name, alias)

    def _parse_insert(self) -> InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: list[str] | None = None
        if self._accept_punct("("):
            columns = [self._expect_ident()]
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: list[list[Expr]] = [self._parse_value_row()]
        while self._accept_punct(","):
            rows.append(self._parse_value_row())
        return InsertStmt(table, columns, rows)

    def _parse_value_row(self) -> list[Expr]:
        self._expect_punct("(")
        values = [self._parse_expr()]
        while self._accept_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return values

    def _parse_delete(self) -> DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return DeleteStmt(table, where)

    def _parse_update(self) -> UpdateStmt:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._accept_keyword("WHERE") else None
        return UpdateStmt(table, assignments, where)

    def _parse_assignment(self) -> Assignment:
        column = self._expect_ident()
        if self._accept_operator("=") is None:
            raise SqlSyntaxError(f"expected = at {self._current.position}")
        return Assignment(column, self._parse_expr())

    # -- expressions -----------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = BinOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = BinOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("NOT"):
            return NotExpr(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        op = self._accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            right = self._parse_additive()
            return BinOp(op, left, right)
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNullExpr(left, negated=negated)
        negated = self._accept_keyword("NOT")
        if self._accept_keyword("IN"):
            return self._parse_in_tail(left, negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return BetweenExpr(left, low, high, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return LikeExpr(left, pattern, negated=negated)
        if negated:
            raise SqlSyntaxError(
                f"dangling NOT at {self._current.position}"
            )
        return left

    def _parse_in_tail(self, operand: Expr, negated: bool) -> Expr:
        self._expect_punct("(")
        if self._check_keyword("SELECT"):
            subquery = self._parse_select()
            self._expect_punct(")")
            return SubqueryExpr(subquery, "in", operand=operand,
                                negated=negated)
        items = [self._parse_expr()]
        while self._accept_punct(","):
            items.append(self._parse_expr())
        self._expect_punct(")")
        return InListExpr(operand, items, negated=negated)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            if op == "||":
                right = self._parse_multiplicative()
                left = FuncCall("CONCAT", [left, right])
                continue
            right = self._parse_multiplicative()
            if isinstance(right, IntervalLiteral):
                left = DateArithExpr(left, right, 1 if op == "+" else -1)
            else:
                left = BinOp(op, left, right)

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/")
            if op is None:
                return left
            left = BinOp(op, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        if self._accept_operator("-"):
            return NegExpr(self._parse_unary())
        self._accept_operator("+")
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.PARAM:
            self._advance()
            param = ParamRef(self._param_count)
            self._param_count += 1
            return param
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("DATE"):
            self._advance()
            value = self._current
            if value.kind is not TokenKind.STRING:
                raise SqlSyntaxError("expected string after DATE")
            self._advance()
            return Literal(datetime.date.fromisoformat(value.value))
        if token.is_keyword("INTERVAL"):
            self._advance()
            amount_token = self._current
            if amount_token.kind not in (TokenKind.STRING, TokenKind.NUMBER):
                raise SqlSyntaxError("expected amount after INTERVAL")
            self._advance()
            unit_token = self._current
            if not unit_token.is_keyword("DAY", "MONTH", "YEAR"):
                raise SqlSyntaxError("expected DAY/MONTH/YEAR after INTERVAL")
            self._advance()
            return IntervalLiteral(int(amount_token.value), unit_token.value)
        if token.is_keyword("EXTRACT"):
            self._advance()
            self._expect_punct("(")
            field_token = self._current
            if not field_token.is_keyword("YEAR", "MONTH", "DAY"):
                raise SqlSyntaxError("expected YEAR/MONTH/DAY in EXTRACT")
            self._advance()
            self._expect_keyword("FROM")
            operand = self._parse_expr()
            self._expect_punct(")")
            return ExtractExpr(field_token.value, operand)
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return SubqueryExpr(subquery, "exists")
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword(*_AGG_KEYWORDS):
            return self._parse_aggregate()
        if token.kind is TokenKind.PUNCT and token.value == "(":
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_punct(")")
                return SubqueryExpr(subquery, "scalar")
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        if token.kind is TokenKind.IDENT:
            name = self._expect_ident()
            if self._accept_punct("."):
                column = self._expect_ident()
                return ColumnRef(name, column)
            if self._accept_punct("("):
                args: list[Expr] = []
                if not self._accept_punct(")"):
                    args.append(self._parse_expr())
                    while self._accept_punct(","):
                        args.append(self._parse_expr())
                    self._expect_punct(")")
                return FuncCall(name, args)
            return ColumnRef(None, name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r} at {token.position}"
        )

    def _parse_case(self) -> Expr:
        self._expect_keyword("CASE")
        branches: list[tuple[Expr, Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expr()
            self._expect_keyword("THEN")
            branches.append((condition, self._parse_expr()))
        default: Expr | None = None
        if self._accept_keyword("ELSE"):
            default = self._parse_expr()
        self._expect_keyword("END")
        if not branches:
            raise SqlSyntaxError("CASE without WHEN branches")
        return CaseExpr(branches, default)

    def _parse_aggregate(self) -> Expr:
        func_token = self._advance()
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT")
        arg: Expr | None
        token = self._current
        if token.kind is TokenKind.OPERATOR and token.value == "*":
            self._advance()
            arg = None
        else:
            arg = self._parse_expr()
        self._expect_punct(")")
        return AggCall(func_token.value, arg, distinct=distinct)
