"""SQL front end: lexer, AST, parser for a practical SQL-92 subset."""

from repro.engine.sql.parser import parse_sql

__all__ = ["parse_sql"]
