"""Parsed-statement AST.

These nodes are deliberately dumb containers; the planner
(:mod:`repro.engine.plan`) does all semantic work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expr import Expr


@dataclass
class TableRef:
    """A base table or view reference in FROM."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class JoinRef:
    """Explicit ``left JOIN right ON condition`` (SQL-92 style)."""

    left: "FromItem"
    right: "FromItem"
    condition: Expr
    outer: bool = False  # True for LEFT OUTER JOIN


FromItem = TableRef | JoinRef


@dataclass
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass
class Star:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class SelectStmt:
    items: list[SelectItem | Star]
    from_items: list[FromItem]
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False


@dataclass
class InsertStmt:
    table: str
    columns: list[str] | None
    rows: list[list[Expr]]


@dataclass
class DeleteStmt:
    table: str
    where: Expr | None = None


@dataclass
class Assignment:
    column: str
    value: Expr


@dataclass
class UpdateStmt:
    table: str
    assignments: list[Assignment]
    where: Expr | None = None


Statement = SelectStmt | InsertStmt | DeleteStmt | UpdateStmt
