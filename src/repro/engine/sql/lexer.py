"""SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.engine.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "AS", "AND", "OR", "NOT", "IN",
    "BETWEEN", "LIKE", "IS", "NULL", "EXISTS", "CASE", "WHEN", "THEN",
    "ELSE", "END", "JOIN", "INNER", "LEFT", "OUTER", "ON", "INSERT",
    "INTO", "VALUES", "DELETE", "UPDATE", "SET", "DATE", "INTERVAL",
    "EXTRACT", "YEAR", "MONTH", "DAY", "COUNT", "SUM", "AVG", "MIN",
    "MAX", "TRUE", "FALSE",
}


class TokenKind(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    PARAM = "PARAM"
    EOF = "EOF"


@dataclass
class Token:
    kind: TokenKind
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in words


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "||")
_PUNCT = "(),."


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = pos + 1
            chunks: list[str] = []
            while True:
                if end >= length:
                    raise SqlSyntaxError(f"unterminated string at {pos}")
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append(text[pos + 1:end + 1])
                        pos = end + 1
                        end = pos + 1
                        continue
                    break
                end += 1
            chunks.append(text[pos + 1:end])
            value = "".join(chunks).replace("''", "'")
            tokens.append(Token(TokenKind.STRING, value, pos))
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and text[pos + 1].isdigit()):
            end = pos
            saw_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not saw_dot)):
                if text[end] == ".":
                    # Don't eat a trailing period that isn't a decimal.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    saw_dot = True
                end += 1
            tokens.append(Token(TokenKind.NUMBER, text[pos:end], pos))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, pos))
            else:
                tokens.append(Token(TokenKind.IDENT, word, pos))
            pos = end
            continue
        if ch == "?":
            tokens.append(Token(TokenKind.PARAM, "?", pos))
            pos += 1
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token(TokenKind.OPERATOR, op, pos))
                pos += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, pos))
            pos += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at {pos}")
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens
