"""Write-ahead logging: LSN-stamped redo/undo records + fuzzy checkpoints.

The durable half of the engine.  A :class:`WriteAheadLog` sits between
the tables and a :class:`DurableStore` (the simulator's stand-in for
the log disk): every insert/update/delete/DDL appends an LSN-stamped
record to an in-memory buffer; COMMIT forces the buffer to the store as
CRC-framed bytes (group commit — one fsync per transaction batch, not
per record), charging page writes plus a log force through the shared
:class:`~repro.sim.disk.DiskModel`.

Checkpoints follow the classic fuzzy protocol: a ``ckpt_begin`` record
snapshots the active-transaction table, dirty pages are written behind
ongoing activity, and a ``ckpt_end`` record seals the checkpoint; the
slot-level image is installed in the store only after the end record is
durable, so a crash anywhere inside the protocol falls back to the
previous image.  Log segments wholly below
``min(image LSN, oldest active transaction's first LSN)`` are truncated
after every checkpoint, which is what bounds recovery time by the
checkpoint interval.

Crash semantics are explicit: an injected
:class:`~repro.engine.errors.SimulatedCrash` at any durability boundary
freezes the store (nothing later can touch it — the process is dead)
and may leave a *torn* truncated frame on the log tail, exactly the
state a real power failure leaves behind.  Recovery lives in
:mod:`repro.engine.recovery`.
"""

from __future__ import annotations

import ast
import datetime
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.errors import (
    ExecutionError,
    SimulatedCrash,
    TornWriteError,
    WalCorruptionError,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType, TypeKind
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams

# -- record kinds ------------------------------------------------------------

K_INSERT = "insert"
K_UPDATE = "update"
K_DELETE = "delete"
K_DDL = "ddl"
K_COMMIT = "commit"
K_CKPT_BEGIN = "ckpt_begin"
K_CKPT_END = "ckpt_end"

#: kinds that represent transaction work (and therefore need undo)
WORK_KINDS = (K_INSERT, K_UPDATE, K_DELETE, K_DDL)


@dataclass
class WalRecord:
    """One log record.  ``lsn`` is stamped at append time."""

    kind: str
    txn: int
    lsn: int = 0
    table: str = ""
    rowid: int = -1
    row: tuple | None = None
    old: tuple | None = None
    payload: Any = None


# -- value / frame serialization ---------------------------------------------
#
# Records are serialized via ``repr`` of plain literals and parsed back
# with ``ast.literal_eval`` — deterministic, dependency-free, and exact
# for every type the engine stores (int, float, str, None, bytes).
# ``datetime.date`` is not a literal, so dates travel as a
# ``("__date__", iso)`` marker tuple.

_DATE_MARK = "__date__"
_LEN = struct.Struct("<I")
#: frame overhead: 4-byte length prefix + 4-byte CRC32 trailer
FRAME_OVERHEAD = 8


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return (_DATE_MARK, value.isoformat())
    if isinstance(value, tuple):
        return tuple(_encode_value(v) for v in value)
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _DATE_MARK \
                and isinstance(value[1], str):
            return datetime.date.fromisoformat(value[1])
        return tuple(_decode_value(v) for v in value)
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _decode_value(v) for k, v in value.items()}
    return value


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the on-disk frame: length + bytes + CRC32."""
    return _LEN.pack(len(payload)) + payload + _LEN.pack(zlib.crc32(payload))


def unframe_payload(frame: bytes) -> bytes:
    """Unwrap one frame, raising :class:`TornWriteError` on any damage.

    Every failure mode of a single frame — short length prefix, fewer
    bytes than declared, CRC mismatch, trailing garbage — looks the
    same from one frame's perspective: the write did not complete as
    acknowledged.  Whether that is a recoverable torn *tail* or fatal
    mid-log corruption is the log reader's call (it knows the frame's
    position), so this function always raises the transient flavour.
    """
    if len(frame) < _LEN.size:
        raise TornWriteError("frame shorter than its length prefix")
    (length,) = _LEN.unpack_from(frame, 0)
    if len(frame) != _LEN.size + length + _LEN.size:
        raise TornWriteError(
            f"frame declares {length} payload bytes, "
            f"carries {len(frame) - FRAME_OVERHEAD}"
        )
    payload = frame[_LEN.size:_LEN.size + length]
    (crc,) = _LEN.unpack_from(frame, _LEN.size + length)
    if crc != zlib.crc32(payload):
        raise TornWriteError("frame CRC mismatch")
    return payload


def encode_record(record: WalRecord) -> bytes:
    """Serialize one record into its framed on-disk bytes."""
    literal = (
        record.kind, record.txn, record.lsn, record.table, record.rowid,
        _encode_value(record.row), _encode_value(record.old),
        _encode_value(record.payload),
    )
    return frame_payload(repr(literal).encode("utf-8"))


def decode_record(frame: bytes) -> WalRecord:
    """Parse one framed record; raises :class:`TornWriteError` on damage."""
    payload = unframe_payload(frame)
    try:
        literal = ast.literal_eval(payload.decode("utf-8"))
        kind, txn, lsn, table, rowid, row, old, extra = literal
    except (ValueError, SyntaxError, UnicodeDecodeError) as exc:
        # CRC passed but the payload does not parse: the frame itself
        # was manufactured wrong, not damaged in flight.
        raise WalCorruptionError(f"undecodable WAL payload: {exc}") from exc
    return WalRecord(
        kind=kind, txn=txn, lsn=lsn, table=table, rowid=rowid,
        row=_decode_value(row), old=_decode_value(old),
        payload=_decode_value(extra),
    )


# -- catalog serialization helpers -------------------------------------------

def schema_to_payload(schema: TableSchema) -> dict[str, Any]:
    """A literal-only description of a table schema (for DDL records
    and checkpoint images)."""
    return {
        "name": schema.name,
        "columns": [
            (c.name, c.sql_type.kind.value, c.sql_type.length,
             c.sql_type.scale, c.nullable)
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key),
    }


def schema_from_payload(payload: dict[str, Any]) -> TableSchema:
    columns = [
        Column(name, SqlType(TypeKind(kind), length=length, scale=scale),
               nullable=nullable)
        for name, kind, length, scale, nullable in payload["columns"]
    ]
    return TableSchema(payload["name"], columns,
                       list(payload["primary_key"]))


# -- the durable store -------------------------------------------------------

@dataclass
class CheckpointImage:
    """The slot-level database image sealed by one fuzzy checkpoint.

    ``lsn`` is the checkpoint's *begin* LSN: every record at or below
    it is reflected in the image, redo starts just above it.  ``att``
    snapshots the active-transaction table (txn -> first LSN) so
    recovery knows which in-image effects may need undo.  ``journal``
    carries the application's last committed journal payload (batch
    input's restart journal) across log truncation.
    """

    lsn: int
    catalog: dict[str, Any]
    tables: dict[str, list[tuple | None]]
    att: dict[int, int]
    journal: bytes | None = None


@dataclass
class WalSegment:
    """One log segment: an ordered run of framed records."""

    index: int
    frames: list[tuple[int, bytes]] = field(default_factory=list)

    @property
    def max_lsn(self) -> int:
        return self.frames[-1][0] if self.frames else 0


class DurableStore:
    """What survives a crash: flushed log frames + the last checkpoint.

    The store models the log disk(s): bytes that reached it before a
    crash stay readable, everything else is gone.  ``freeze()`` is
    called when the owning engine dies — a dead process cannot write,
    so every later mutation attempt becomes a silent no-op, which keeps
    post-crash cleanup code (app-level rollback handlers unwinding
    through the same ``except`` ladders) from polluting durable state.
    """

    #: storage backend the owning database was created with; recorded
    #: by Database so Database.open reopens with the same backend
    storage = "heap"

    def __init__(self, params: SimParams | None = None) -> None:
        self.params = params or SimParams()
        self.segments: list[WalSegment] = [WalSegment(0)]
        self.image: CheckpointImage | None = None
        self.frozen = False
        self._next_segment = 1

    # -- writes (all gated on the freeze flag) --------------------------

    def append_frame(self, lsn: int, frame: bytes) -> None:
        if self.frozen:
            return
        self.segments[-1].frames.append((lsn, frame))

    def rotate(self) -> None:
        if self.frozen:
            return
        self.segments.append(WalSegment(self._next_segment))
        self._next_segment += 1

    def install_image(self, image: CheckpointImage) -> None:
        if self.frozen:
            return
        self.image = image

    def truncate_below(self, lsn: int) -> int:
        """Drop whole segments whose every frame is below ``lsn``.

        The active (last) segment always survives.  Returns the number
        of segments reclaimed.
        """
        if self.frozen:
            return 0
        dropped = 0
        while len(self.segments) > 1 and self.segments[0].frames \
                and self.segments[0].max_lsn < lsn:
            self.segments.pop(0)
            dropped += 1
        return dropped

    def freeze(self) -> None:
        """The owning engine died; no further writes can reach disk."""
        self.frozen = True

    def thaw(self) -> None:
        """A new engine instance reopened the store (recovery path)."""
        self.frozen = False

    # -- reads ----------------------------------------------------------

    def frames(self) -> list[tuple[int, bytes]]:
        return [frame for seg in self.segments for frame in seg.frames]

    def records(self) -> tuple[list[WalRecord], int]:
        """Decode the whole log; returns ``(records, torn_dropped)``.

        A damaged frame at the very tail is the expected crash
        signature: it is dropped and counted.  A damaged frame anywhere
        earlier means acknowledged history is unreadable and raises
        :class:`WalCorruptionError`.
        """
        frames = self.frames()
        out: list[WalRecord] = []
        for position, (lsn, frame) in enumerate(frames):
            try:
                record = decode_record(frame)
            except TornWriteError as exc:
                if position == len(frames) - 1:
                    return out, 1
                raise WalCorruptionError(
                    f"corrupt WAL frame at LSN {lsn}, "
                    f"{len(frames) - 1 - position} frames before the tail"
                ) from exc
            if record.lsn != lsn:
                raise WalCorruptionError(
                    f"frame indexed at LSN {lsn} decodes to LSN {record.lsn}"
                )
            out.append(record)
        return out, 0

    @property
    def frame_count(self) -> int:
        return sum(len(seg.frames) for seg in self.segments)

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    @property
    def log_bytes(self) -> int:
        return sum(
            len(frame) for seg in self.segments for _, frame in seg.frames
        )

    # -- damage helpers (tests / corruption injection) ------------------

    def tear_tail_frame(self, keep_bytes: int = 3) -> None:
        """Truncate the last frame, as an interrupted write would."""
        lsn, frame = self._tail()
        self.segments[-1].frames[-1] = (lsn, frame[:keep_bytes])

    def corrupt_tail_frame(self) -> None:
        """Flip one payload byte of the last frame (CRC now fails)."""
        lsn, frame = self._tail()
        at = len(frame) // 2
        damaged = frame[:at] + bytes([frame[at] ^ 0xFF]) + frame[at + 1:]
        self.segments[-1].frames[-1] = (lsn, damaged)

    def corrupt_mid_frame(self) -> None:
        """Flip a byte in the *middle* of the log (permanent damage)."""
        frames = self.frames()
        if len(frames) < 2:
            raise ExecutionError("need at least two frames to corrupt mid-log")
        target = frames[len(frames) // 2 - 1][0]
        for seg in self.segments:
            for i, (lsn, frame) in enumerate(seg.frames):
                if lsn == target:
                    at = len(frame) // 2
                    seg.frames[i] = (
                        lsn,
                        frame[:at] + bytes([frame[at] ^ 0xFF])
                        + frame[at + 1:],
                    )
                    return

    def _tail(self) -> tuple[int, bytes]:
        for seg in reversed(self.segments):
            if seg.frames:
                return seg.frames[-1]
        raise ExecutionError("cannot damage an empty log")


# -- the write-ahead log -----------------------------------------------------

SnapshotProvider = Callable[
    [], tuple[dict[str, Any], dict[str, list[tuple | None]]]
]


class WriteAheadLog:
    """Buffered, group-committed logging over a :class:`DurableStore`."""

    def __init__(
        self,
        store: DurableStore,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        disk: DiskModel,
        params: SimParams,
    ) -> None:
        self.store = store
        self._clock = clock
        self._metrics = metrics
        self._disk = disk
        self._params = params
        #: optional FaultInjector; drives crash/torn-write injection
        self.faults = None
        #: optional WorkloadMonitor; flushes run under its commit layer
        self.monitor = None
        #: set once a SimulatedCrash killed this engine instance
        self.dead = False
        #: set while recovery replays history (suppresses re-logging)
        self.recovering = False
        #: set by the direct-path loader: mutations are NOT logged (the
        #: sealing checkpoint afterwards is the one durable boundary)
        self.bypass = False
        #: builds (catalog payload, table slots) for checkpoint images;
        #: wired up by the owning Database
        self.snapshot_provider: SnapshotProvider | None = None
        self.next_lsn = 1
        self.next_txn = 1
        self._buffer: list[WalRecord] = []
        self._current_txn: int | None = None
        #: active-transaction table: txn -> LSN of its first record
        self._txn_first_lsn: dict[int, int] = {}
        #: dirty-page table: table name -> pages dirtied since last ckpt
        self._dirty_pages: dict[str, set[int]] = {}
        self._last_journal: bytes | None = None
        self._records_since_ckpt = 0
        self._segment_records = 0

    # -- transaction demarcation ----------------------------------------

    @property
    def in_txn(self) -> bool:
        return self._current_txn is not None

    def begin(self) -> int:
        """Open an explicit transaction; returns its id."""
        if self.dead or self.recovering or self.bypass:
            return 0
        if self._current_txn is not None:
            raise ExecutionError(
                "transaction already open (transactions do not nest)"
            )
        txn = self.next_txn
        self.next_txn += 1
        self._current_txn = txn
        self._metrics.count("wal.txn_begins")
        return txn

    def commit(self, journal: bytes | None = None) -> None:
        """Log COMMIT and force the group to disk (one fsync).

        ``journal`` rides inside the COMMIT record: an opaque
        application payload (batch input's restart journal) made
        durable *atomically* with the transaction it describes — a torn
        COMMIT frame loses both together, never one without the other.
        """
        if self.dead or self.recovering or self.bypass:
            return
        if self._current_txn is None:
            raise ExecutionError("commit without an open transaction")
        txn = self._current_txn
        self._append(WalRecord(kind=K_COMMIT, txn=txn, payload=journal))
        self._current_txn = None
        self._txn_first_lsn.pop(txn, None)
        if journal is not None:
            self._last_journal = journal
        self.flush()
        self._metrics.count("wal.commits")
        self._maybe_auto_checkpoint()

    # -- logging hooks (called by Table / Database) ---------------------

    def log_insert(self, table: str, rowid: int, row: tuple,
                   page: int) -> None:
        self._log_work(
            WalRecord(kind=K_INSERT, txn=0, table=table, rowid=rowid,
                      row=row),
            page,
        )

    def log_update(self, table: str, rowid: int, old: tuple, new: tuple,
                   page: int) -> None:
        self._log_work(
            WalRecord(kind=K_UPDATE, txn=0, table=table, rowid=rowid,
                      row=new, old=old),
            page,
        )

    def log_delete(self, table: str, rowid: int, old: tuple,
                   page: int) -> None:
        self._log_work(
            WalRecord(kind=K_DELETE, txn=0, table=table, rowid=rowid,
                      old=old),
            page,
        )

    def log_ddl(self, op: tuple) -> None:
        """Log one DDL operation; ``op`` is ``(verb, payload...)``."""
        if op and op[0] in ("drop_table",):
            self._dirty_pages.pop(str(op[1]).lower(), None)
        self._log_work(WalRecord(kind=K_DDL, txn=0, payload=op), page=None)

    def _log_work(self, record: WalRecord, page: int | None) -> None:
        """Append one work record, autocommitting when no transaction
        is open (tuple-at-a-time durability: an own COMMIT + log force
        per record, the expensive path batch input's group commit
        exists to avoid)."""
        if self.dead or self.recovering or self.bypass:
            return
        implicit = self._current_txn is None
        if implicit:
            record.txn = self.next_txn
            self.next_txn += 1
            self._metrics.count("wal.autocommits")
        else:
            assert self._current_txn is not None
            record.txn = self._current_txn
        self._append(record)
        if page is not None and record.table:
            self._dirty_pages.setdefault(record.table, set()).add(page)
        if implicit:
            txn = record.txn
            self._append(WalRecord(kind=K_COMMIT, txn=txn))
            self._txn_first_lsn.pop(txn, None)
            self.flush()
            self._maybe_auto_checkpoint()

    def _append(self, record: WalRecord) -> None:
        record.lsn = self.next_lsn
        self.next_lsn += 1
        if record.kind in WORK_KINDS \
                and record.txn not in self._txn_first_lsn:
            self._txn_first_lsn[record.txn] = record.lsn
        self._buffer.append(record)
        self._clock.charge(self._params.wal_append_cpu_s)
        self._metrics.count("wal.appends")
        if record.kind not in (K_CKPT_BEGIN, K_CKPT_END):
            self._records_since_ckpt += 1
        self._boundary("wal.append")
        if len(self._buffer) >= self._params.wal_buffer_records:
            self.flush()

    # -- flushing --------------------------------------------------------

    def flush(self) -> None:
        """Force buffered records to the durable store + one fsync.

        A :class:`SimulatedCrash` at any per-frame boundary loses this
        and all later buffered records; with ``torn_write_prob`` armed
        the frame in flight may additionally land truncated on the log
        tail — the state recovery's torn-tail handling exists for.
        """
        if self.dead or not self._buffer:
            return
        if self.monitor is None:
            self._flush_buffer()
        else:
            with self.monitor.layer("commit"):
                self._flush_buffer()

    def _flush_buffer(self) -> None:
        buffered = self._buffer
        self._buffer = []
        total_bytes = 0
        for record in buffered:
            frame = encode_record(record)
            if self.faults is not None:
                try:
                    self.faults.on_durability_op("wal.flush")
                except SimulatedCrash:
                    torn = self.faults.torn_write_bytes(frame)
                    if torn is not None:
                        self.store.append_frame(record.lsn, torn)
                        self._metrics.count("wal.torn_frames_written")
                    self.die()
                    raise
            self.store.append_frame(record.lsn, frame)
            total_bytes += len(frame)
            self._segment_records += 1
            if self._segment_records >= self._params.wal_segment_records:
                self.store.rotate()
                self._segment_records = 0
                self._metrics.count("wal.segments_rotated")
        pages = max(1, -(-total_bytes // self._params.page_size_bytes))
        for _ in range(pages):
            self._disk.write_page()
        self._disk.fsync()
        self._metrics.count("wal.flushes")
        self._metrics.count("wal.records_flushed", len(buffered))
        self._metrics.count("wal.pages_written", pages)
        self._metrics.count("wal.bytes_flushed", total_bytes)
        self._boundary("wal.fsync")

    # -- fuzzy checkpoints ----------------------------------------------

    def checkpoint(self) -> None:
        """Write one fuzzy checkpoint and truncate reclaimable segments.

        Protocol: flush; log ``ckpt_begin`` carrying the ATT; write the
        dirty pages; log ``ckpt_end``; only once the end record is
        durable, install the slot image in the store.  Active
        transactions are *not* quiesced — their uncommitted effects are
        inside the image and the ATT tells recovery what to undo.
        """
        if self.dead or self.recovering or self.bypass:
            return
        if self.snapshot_provider is None:
            raise ExecutionError("checkpoint without a snapshot provider")
        self.flush()
        att = dict(self._txn_first_lsn)
        begin = WalRecord(kind=K_CKPT_BEGIN, txn=0, payload=dict(att))
        self._append(begin)
        self._boundary("checkpoint.begin")
        self.flush()
        catalog_payload, table_slots = self.snapshot_provider()
        dirty_page_count = sum(
            len(pages) for pages in self._dirty_pages.values()
        )
        for _ in range(dirty_page_count):
            self._disk.write_page()
            self._boundary("checkpoint.page")
        image = CheckpointImage(
            lsn=begin.lsn, catalog=catalog_payload, tables=table_slots,
            att=att, journal=self._last_journal,
        )
        self._boundary("checkpoint.end")
        self._append(WalRecord(kind=K_CKPT_END, txn=0, payload=begin.lsn))
        self.flush()
        # The end record is durable; sealing the image is atomic with it.
        self.store.install_image(image)
        keep_from = min([begin.lsn, *att.values()])
        dropped = self.store.truncate_below(keep_from)
        if dropped:
            self._metrics.count("wal.segments_truncated", dropped)
        self._dirty_pages.clear()
        self._records_since_ckpt = 0
        self._metrics.count("wal.checkpoints")
        self._metrics.count("wal.checkpoint_pages", dirty_page_count)

    def _maybe_auto_checkpoint(self) -> None:
        every = self._params.wal_checkpoint_every_records
        if every is not None and self._records_since_ckpt >= every:
            self.checkpoint()

    # -- crash ----------------------------------------------------------

    def die(self) -> None:
        """This engine instance is dead; freeze durable state."""
        self.dead = True
        self.store.freeze()

    def _boundary(self, kind: str) -> None:
        if self.faults is None:
            return
        try:
            self.faults.on_durability_op(kind)
        except SimulatedCrash:
            self.die()
            raise
