"""Catalog: tables, views, indexes."""

from __future__ import annotations

from repro.engine.buffer import BufferPool
from repro.engine.errors import CatalogError
from repro.engine.index import BTreeIndex, HashIndex
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.sim.clock import SimulatedClock
from repro.sim.disk import DiskModel
from repro.sim.metrics import MetricsCollector
from repro.sim.params import SimParams


class Catalog:
    """Name -> object registry; all names case-insensitive."""

    def __init__(
        self,
        buffer_pool: BufferPool,
        clock: SimulatedClock,
        metrics: MetricsCollector,
        params: SimParams,
        storage: str = "heap",
        disk: DiskModel | None = None,
    ) -> None:
        self._buffer = buffer_pool
        self._clock = clock
        self._metrics = metrics
        self._params = params
        #: backend every new table is created with ("heap" | "lsm")
        self.storage = storage
        self._disk = disk
        self._tables: dict[str, Table] = {}
        # Views map a name to a parsed SELECT AST (repro.engine.sql.ast).
        self._views: dict[str, object] = {}

    # -- tables ----------------------------------------------------------

    def create_table(self, schema: TableSchema,
                     attach_pk: bool = True) -> Table:
        """Create a table (and, by default, its primary-key index).

        Recovery passes ``attach_pk=False`` so it can load the heap's
        checkpointed slots first and build the index over them in one
        pass via :meth:`attach_primary`.
        """
        name = schema.name.lower()
        if name in self._tables or name in self._views:
            raise CatalogError(f"{schema.name} already exists")
        table = Table(schema, self._buffer, self._clock, self._metrics,
                      self._params, storage=self.storage, disk=self._disk)
        self._tables[name] = table
        if schema.primary_key and attach_pk:
            self.attach_primary(table)
        return table

    def attach_primary(self, table: Table) -> BTreeIndex:
        """Build and attach the primary-key B-tree over the current heap."""
        pk = BTreeIndex(
            name=f"pk_{table.name}",
            schema=table.schema,
            column_names=list(table.schema.primary_key),
            unique=True,
            buffer_pool=self._buffer,
            clock=self._clock,
            metrics=self._metrics,
            traverse_cpu_s=self._params.index_traverse_s,
            page_size_bytes=self._params.page_size_bytes,
        )
        table.attach_index(pk, is_primary=True)
        return pk

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for index_name in list(table.indexes):
            table.detach_index(index_name)
        del self._tables[name.lower()]
        self._buffer.invalidate_file(name.lower())

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- indexes -----------------------------------------------------------

    def create_index(
        self,
        index_name: str,
        table_name: str,
        column_names: list[str],
        unique: bool = False,
        kind: str = "btree",
    ) -> BTreeIndex | HashIndex:
        table = self.table(table_name)
        lowered = index_name.lower()
        for existing in self._tables.values():
            if lowered in existing.indexes:
                raise CatalogError(f"index {index_name} already exists")
        cls = BTreeIndex if kind == "btree" else HashIndex
        index = cls(
            name=lowered,
            schema=table.schema,
            column_names=column_names,
            unique=unique,
            buffer_pool=self._buffer,
            clock=self._clock,
            metrics=self._metrics,
            traverse_cpu_s=self._params.index_traverse_s,
            page_size_bytes=self._params.page_size_bytes,
        )
        table.attach_index(index)
        return index

    def has_index(self, index_name: str) -> bool:
        lowered = index_name.lower()
        return any(lowered in table.indexes
                   for table in self._tables.values())

    def drop_index(self, index_name: str) -> None:
        lowered = index_name.lower()
        for table in self._tables.values():
            if lowered in table.indexes:
                table.detach_index(lowered)
                return
        raise CatalogError(f"no index {index_name}")

    # -- views -------------------------------------------------------------

    def create_view(self, name: str, select_ast: object) -> None:
        lowered = name.lower()
        if lowered in self._tables or lowered in self._views:
            raise CatalogError(f"{name} already exists")
        self._views[lowered] = select_ast

    def drop_view(self, name: str) -> None:
        try:
            del self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no view {name}") from None

    def view(self, name: str) -> object:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no view {name}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    @property
    def view_names(self) -> list[str]:
        return sorted(self._views)
