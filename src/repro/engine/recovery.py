"""ARIES-lite crash recovery: analysis → redo (repeat history) → undo.

Invoked by :meth:`repro.engine.database.Database.open` on a
:class:`~repro.engine.wal.DurableStore` that survived a crash.  The
three passes follow the textbook shape:

* **Analysis** decodes the whole log (dropping a torn tail frame, the
  expected crash signature), loads the last sealed checkpoint image,
  and classifies transactions: a txn with a durable COMMIT record — or
  one wholly absorbed into the image — is a winner; every other txn
  that left work records (or sat in the checkpoint's active-transaction
  table) is a loser.
* **Redo** restores the checkpoint image, then *repeats history*: every
  work record with an LSN above the image's is replayed physically,
  winners and losers alike, at the original rowids.  Replay is
  idempotent — recovering an already-recovered store replays nothing
  new and lands on the same state.
* **Undo** rolls the losers back in reverse-LSN order (insert →
  tombstone, update → old image, delete → restore, DDL create → drop).

Recovery ends by writing a fresh checkpoint, so a second crash during
or right after recovery re-runs from a sealed state ("recover twice ≡
recover once") and the log never grows across repeated recoveries.

Costs are charged to the recovering database's own simulated clock:
sequential log reads, image page reads, and the physical replay work —
which is what makes "recovery time vs. checkpoint interval" a
measurable experiment (EXPERIMENTS.md §robustness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine.wal import (
    K_COMMIT,
    K_DDL,
    K_DELETE,
    K_INSERT,
    K_UPDATE,
    WORK_KINDS,
    WalRecord,
)

if TYPE_CHECKING:
    from repro.engine.database import Database


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    image_lsn: int = 0
    max_lsn: int = 0
    records_scanned: int = 0
    segments_scanned: int = 0
    torn_tail_dropped: int = 0
    committed_txns: int = 0
    loser_txns: int = 0
    redo_applied: int = 0
    undo_applied: int = 0
    ddl_replayed: int = 0
    log_pages_read: int = 0
    recovery_s: float = 0.0
    #: last committed application-journal payload (batch input resume)
    app_journal: bytes | None = None
    #: every committed journal payload in commit order; resume logic
    #: walks it backwards past undecodable (torn) entries
    app_journal_history: list[bytes] = field(default_factory=list)

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready summary (journal payloads reduced to counts)."""
        return {
            "image_lsn": self.image_lsn,
            "max_lsn": self.max_lsn,
            "records_scanned": self.records_scanned,
            "segments_scanned": self.segments_scanned,
            "torn_tail_dropped": self.torn_tail_dropped,
            "committed_txns": self.committed_txns,
            "loser_txns": self.loser_txns,
            "redo_applied": self.redo_applied,
            "undo_applied": self.undo_applied,
            "ddl_replayed": self.ddl_replayed,
            "log_pages_read": self.log_pages_read,
            "recovery_s": self.recovery_s,
            "app_journal_entries": len(self.app_journal_history),
        }


class RecoveryManager:
    """Runs one analysis/redo/undo pass over a freshly opened database."""

    def __init__(self, db: "Database") -> None:
        if db.wal is None:
            raise ValueError("recovery requires durability='wal'")
        self.db = db
        self.wal = db.wal
        self.store = db.wal.store

    def run(self) -> RecoveryReport:
        db = self.db
        wal = self.wal
        report = RecoveryReport()
        wal.recovering = True
        span = db.clock.span()
        try:
            with db.tracer.span("recovery.open"):
                with db.tracer.span("recovery.analysis"):
                    records, losers = self._analysis(report)
                image = self.store.image
                if image is not None:
                    with db.tracer.span("recovery.restore"):
                        db._restore_from_image(image)
                with db.tracer.span("recovery.redo"):
                    self._redo(records, report)
                with db.tracer.span("recovery.undo"):
                    self._undo(records, losers, report)
        finally:
            wal.recovering = False
        self._reset_wal_heads(records, report)
        db.metrics.count("recovery.runs")
        db.metrics.count("recovery.redo_applied", report.redo_applied)
        db.metrics.count("recovery.undo_applied", report.undo_applied)
        db.metrics.count("recovery.loser_txns", report.loser_txns)
        if report.torn_tail_dropped:
            db.metrics.count("recovery.torn_tail_dropped",
                             report.torn_tail_dropped)
        # Seal the recovered state: a second recovery starts from this
        # checkpoint and replays nothing (recover twice ≡ recover once).
        db.checkpoint()
        report.recovery_s = span.stop()
        db.metrics.count("recovery.time_s", report.recovery_s)
        return report

    # -- analysis --------------------------------------------------------

    def _analysis(
        self, report: RecoveryReport
    ) -> tuple[list[WalRecord], set[int]]:
        store = self.store
        db = self.db
        # Scanning the log is sequential I/O over every durable frame.
        log_pages = db.params.pages_for_bytes(store.log_bytes)
        for _ in range(log_pages):
            db.disk.read_page(sequential=True)
        report.log_pages_read = log_pages
        report.segments_scanned = store.segment_count
        records, torn = store.records()
        report.torn_tail_dropped = torn
        report.records_scanned = len(records)
        image = store.image
        report.image_lsn = image.lsn if image is not None else 0
        committed: set[int] = set()
        seen_work: set[int] = set(image.att) if image is not None else set()
        journal_history: list[bytes] = []
        if image is not None and image.journal is not None:
            journal_history.append(image.journal)
        for record in records:
            # Segment-granularity truncation can retain records already
            # absorbed into the image (or undone before the sealing
            # checkpoint of a previous recovery); those transactions are
            # fully resolved and must not be reclassified here.
            if image is not None and record.lsn <= image.lsn:
                continue
            if record.kind == K_COMMIT:
                committed.add(record.txn)
                if record.payload is not None:
                    journal_history.append(record.payload)
            elif record.kind in WORK_KINDS:
                seen_work.add(record.txn)
        losers = seen_work - committed
        report.committed_txns = len(committed)
        report.loser_txns = len(losers)
        report.app_journal_history = journal_history
        report.app_journal = journal_history[-1] if journal_history else None
        return records, losers

    # -- redo (repeat history) -------------------------------------------

    def _redo(self, records: list[WalRecord],
              report: RecoveryReport) -> None:
        db = self.db
        for record in records:
            if record.lsn <= report.image_lsn:
                continue
            if record.kind == K_INSERT:
                assert record.row is not None
                db.catalog.table(record.table).apply_insert(
                    record.rowid, record.row)
            elif record.kind == K_UPDATE:
                assert record.row is not None
                db.catalog.table(record.table).update(
                    record.rowid, record.row)
            elif record.kind == K_DELETE:
                db.catalog.table(record.table).delete(record.rowid)
            elif record.kind == K_DDL:
                db._apply_ddl(record.payload)
                report.ddl_replayed += 1
            else:
                continue
            report.redo_applied += 1

    # -- undo (roll back losers) ------------------------------------------

    def _undo(self, records: list[WalRecord], losers: set[int],
              report: RecoveryReport) -> None:
        if not losers:
            return
        db = self.db
        for record in reversed(records):
            if record.txn not in losers or record.kind not in WORK_KINDS:
                continue
            if record.kind == K_INSERT:
                db.catalog.table(record.table).delete(record.rowid)
            elif record.kind == K_UPDATE:
                assert record.old is not None
                db.catalog.table(record.table).update(
                    record.rowid, record.old)
            elif record.kind == K_DELETE:
                assert record.old is not None
                db.catalog.table(record.table).apply_insert(
                    record.rowid, record.old)
            else:
                db._undo_ddl(record.payload)
            report.undo_applied += 1

    # -- epilogue ---------------------------------------------------------

    def _reset_wal_heads(self, records: list[WalRecord],
                         report: RecoveryReport) -> None:
        """Continue LSN/txn numbering past everything the log has seen."""
        wal = self.wal
        image = self.store.image
        max_lsn = max(
            [report.image_lsn] + [record.lsn for record in records]
        )
        max_txn = max(
            [0]
            + [record.txn for record in records]
            + (list(image.att) if image is not None else []),
        )
        report.max_lsn = max_lsn
        wal.next_lsn = max_lsn + 1
        wal.next_txn = max_txn + 1
        wal._txn_first_lsn.clear()
        wal._last_journal = report.app_journal
