"""Heap files: page-structured row storage with size accounting.

Rows live in Python lists (this is a simulator, not a persistence
layer), but pages are tracked exactly: each heap knows how many rows
fit a page given its schema's row width, so full scans charge the right
number of sequential page reads and the storage accountant can produce
the paper's Table 2 byte counts.

:class:`StorageBackend` is the abstract slice of this contract that
the rest of the engine (tables, executors, the WAL, recovery) relies
on.  The heap is the first implementation; the planned LSM backend
plugs in behind the same interface.
"""

from __future__ import annotations

import abc
from typing import Iterator

from repro.engine.errors import ExecutionError
from repro.engine.schema import TableSchema


class StorageBackend(abc.ABC):
    """Physical row storage for one table.

    The contract every backend must honour:

    * rowids are stable for the lifetime of a row — once handed out a
      rowid never moves to a different row (deletes tombstone);
    * ``version`` increases on every mutation (partition overlays and
      caches key their snapshots on it);
    * the slot-restoration API (:meth:`restore_slot`, :meth:`put_slot`,
      :meth:`snapshot_slots`, :meth:`load_slots`) lets checkpointing
      capture — and recovery rebuild — the *exact* physical state,
      tombstones included, so redo replay is idempotent.
    """

    #: True when the backend charges its own I/O/CPU costs inside its
    #: mutation and charged-read methods.  The heap leaves charging to
    #: :class:`~repro.engine.table.Table` (buffer-pool page writes);
    #: the LSM charges internally (memtable CPU, flush/compaction page
    #: writes, bloom/sparse-index probes), so the table layer must not
    #: double-charge buffered page I/O on top.
    self_charging: bool = False

    # -- mutation -------------------------------------------------------

    @abc.abstractmethod
    def append(self, row: tuple) -> int:
        """Store ``row`` and return its rowid."""

    @abc.abstractmethod
    def delete(self, rowid: int) -> None:
        """Tombstone a live row."""

    @abc.abstractmethod
    def update(self, rowid: int, row: tuple) -> None:
        """Replace a live row in place."""

    # -- access ---------------------------------------------------------

    @abc.abstractmethod
    def fetch(self, rowid: int) -> tuple:
        """The live row at ``rowid`` (raises on tombstones)."""

    @abc.abstractmethod
    def get(self, rowid: int) -> tuple | None:
        """The row at ``rowid``, or ``None`` for a tombstone."""

    @abc.abstractmethod
    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for every live row, storage order."""

    # -- checkpoint / recovery ------------------------------------------

    @abc.abstractmethod
    def snapshot_slots(self) -> list[tuple | None]:
        """A copy of the full slot array (tombstones included)."""

    @abc.abstractmethod
    def load_slots(self, slots: list[tuple | None]) -> None:
        """Replace all slots wholesale (checkpoint-image restore)."""

    @abc.abstractmethod
    def restore_slot(self, rowid: int, row: tuple) -> None:
        """Place ``row`` at exactly ``rowid`` (redo replay)."""

    @abc.abstractmethod
    def put_slot(self, rowid: int, row: tuple | None) -> None:
        """Overwrite slot ``rowid`` (undo: tombstone or old image)."""

    # -- accounting -----------------------------------------------------

    @property
    @abc.abstractmethod
    def row_count(self) -> int: ...

    @property
    @abc.abstractmethod
    def page_count(self) -> int: ...

    @property
    @abc.abstractmethod
    def data_bytes(self) -> int: ...

    @abc.abstractmethod
    def page_of(self, rowid: int) -> int:
        """Page number holding ``rowid``."""


class HeapFile(StorageBackend):
    """Slotted-row heap for one table.

    Row ids are stable list positions; deletes leave tombstones
    (``None``) that scans skip, mirroring how a real heap keeps page
    layout until reorganisation.
    """

    def __init__(self, schema: TableSchema, page_size_bytes: int) -> None:
        self.schema = schema
        self._page_size = page_size_bytes
        self._rows: list[tuple | None] = []
        self._live = 0
        self.rows_per_page = max(1, page_size_bytes // schema.row_byte_width)
        #: bumped on every mutation; partition overlays key their caches
        #: on it to detect a stale rowid snapshot
        self.version = 0

    # -- mutation -------------------------------------------------------

    def append(self, row: tuple) -> int:
        """Store ``row`` and return its rowid."""
        self._rows.append(row)
        self._live += 1
        self.version += 1
        return len(self._rows) - 1

    def delete(self, rowid: int) -> None:
        if not self._slot_live(rowid):
            raise ExecutionError(f"delete of dead rowid {rowid}")
        self._rows[rowid] = None
        self._live -= 1
        self.version += 1

    def update(self, rowid: int, row: tuple) -> None:
        if not self._slot_live(rowid):
            raise ExecutionError(f"update of dead rowid {rowid}")
        self._rows[rowid] = row
        self.version += 1

    # -- access ---------------------------------------------------------

    def fetch(self, rowid: int) -> tuple:
        if not self._slot_live(rowid):
            raise ExecutionError(f"fetch of dead rowid {rowid}")
        row = self._rows[rowid]
        assert row is not None
        return row

    def get(self, rowid: int) -> tuple | None:
        """The row at ``rowid``, or ``None`` for a tombstone.

        Partition scans visit rowids from a snapshot taken at partition
        build time; a row deleted since then is simply skipped, the way
        a scan skips a tombstoned slot.
        """
        if 0 <= rowid < len(self._rows):
            return self._rows[rowid]
        return None

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for every live row, heap order."""
        for rowid, row in enumerate(self._rows):
            if row is not None:
                yield rowid, row

    def _slot_live(self, rowid: int) -> bool:
        return 0 <= rowid < len(self._rows) and self._rows[rowid] is not None

    # -- checkpoint / recovery ------------------------------------------

    def snapshot_slots(self) -> list[tuple | None]:
        return list(self._rows)

    def load_slots(self, slots: list[tuple | None]) -> None:
        self._rows = list(slots)
        self._live = sum(1 for row in self._rows if row is not None)
        self.version += 1

    def restore_slot(self, rowid: int, row: tuple) -> None:
        """Redo an insert at its original position.

        Replay must land rows at the rowids the original run assigned,
        or every later record's rowid references would dangle.  Gaps
        (possible when an undone loser left tombstones that a fresher
        checkpoint never captured) are padded with tombstones.
        """
        if rowid < len(self._rows):
            if self._rows[rowid] is not None:
                raise ExecutionError(
                    f"redo insert into occupied slot {rowid}"
                )
            self._rows[rowid] = row
        else:
            self._rows.extend([None] * (rowid - len(self._rows)))
            self._rows.append(row)
        self._live += 1
        self.version += 1

    def put_slot(self, rowid: int, row: tuple | None) -> None:
        if not 0 <= rowid < len(self._rows):
            raise ExecutionError(f"put_slot of unknown rowid {rowid}")
        was_live = self._rows[rowid] is not None
        self._rows[rowid] = row
        self._live += (row is not None) - was_live
        self.version += 1

    # -- accounting -------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._live

    @property
    def page_count(self) -> int:
        """Pages the heap occupies (tombstones still take space)."""
        slots = len(self._rows)
        if slots == 0:
            return 0
        return -(-slots // self.rows_per_page)

    @property
    def data_bytes(self) -> int:
        return len(self._rows) * self.schema.row_byte_width

    def page_of(self, rowid: int) -> int:
        return rowid // self.rows_per_page
