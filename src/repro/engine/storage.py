"""Heap files: page-structured row storage with size accounting.

Rows live in Python lists (this is a simulator, not a persistence
layer), but pages are tracked exactly: each heap knows how many rows
fit a page given its schema's row width, so full scans charge the right
number of sequential page reads and the storage accountant can produce
the paper's Table 2 byte counts.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.errors import ExecutionError
from repro.engine.schema import TableSchema


class HeapFile:
    """Slotted-row heap for one table.

    Row ids are stable list positions; deletes leave tombstones
    (``None``) that scans skip, mirroring how a real heap keeps page
    layout until reorganisation.
    """

    def __init__(self, schema: TableSchema, page_size_bytes: int) -> None:
        self.schema = schema
        self._page_size = page_size_bytes
        self._rows: list[tuple | None] = []
        self._live = 0
        self.rows_per_page = max(1, page_size_bytes // schema.row_byte_width)
        #: bumped on every mutation; partition overlays key their caches
        #: on it to detect a stale rowid snapshot
        self.version = 0

    # -- mutation -------------------------------------------------------

    def append(self, row: tuple) -> int:
        """Store ``row`` and return its rowid."""
        self._rows.append(row)
        self._live += 1
        self.version += 1
        return len(self._rows) - 1

    def delete(self, rowid: int) -> None:
        if not self._slot_live(rowid):
            raise ExecutionError(f"delete of dead rowid {rowid}")
        self._rows[rowid] = None
        self._live -= 1
        self.version += 1

    def update(self, rowid: int, row: tuple) -> None:
        if not self._slot_live(rowid):
            raise ExecutionError(f"update of dead rowid {rowid}")
        self._rows[rowid] = row
        self.version += 1

    # -- access ---------------------------------------------------------

    def fetch(self, rowid: int) -> tuple:
        if not self._slot_live(rowid):
            raise ExecutionError(f"fetch of dead rowid {rowid}")
        row = self._rows[rowid]
        assert row is not None
        return row

    def get(self, rowid: int) -> tuple | None:
        """The row at ``rowid``, or ``None`` for a tombstone.

        Partition scans visit rowids from a snapshot taken at partition
        build time; a row deleted since then is simply skipped, the way
        a scan skips a tombstoned slot.
        """
        if 0 <= rowid < len(self._rows):
            return self._rows[rowid]
        return None

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for every live row, heap order."""
        for rowid, row in enumerate(self._rows):
            if row is not None:
                yield rowid, row

    def _slot_live(self, rowid: int) -> bool:
        return 0 <= rowid < len(self._rows) and self._rows[rowid] is not None

    # -- accounting -------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._live

    @property
    def page_count(self) -> int:
        """Pages the heap occupies (tombstones still take space)."""
        slots = len(self._rows)
        if slots == 0:
            return 0
        return -(-slots // self.rows_per_page)

    @property
    def data_bytes(self) -> int:
        return len(self._rows) * self.schema.row_byte_width

    def page_of(self, rowid: int) -> int:
        return rowid // self.rows_per_page
