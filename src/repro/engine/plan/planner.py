"""The query planner / cost-based optimizer.

Planning pipeline:

1. resolve FROM items (base tables, views, explicit JOIN trees),
2. classify WHERE conjuncts (single-table filters, equi-join edges,
   multi-table residuals, correlated/subquery predicates),
3. choose access paths per base table (:mod:`repro.engine.plan.access`),
4. order joins greedily by estimated cardinality and pick join methods
   by cost (index nested loop vs hash),
5. aggregate / project / sort / distinct / limit.

Two deliberate, documented 1990s-realism behaviours matter for the
paper reproduction:

* explicit SQL-92 ``JOIN ... ON`` trees are executed in the written
  order (no reordering) — the path Open SQL's generated joins take;
* ``IN``/``EXISTS`` subqueries are re-executed per outer row (no
  decorrelation or caching), which is the "RDBMS handled nested
  queries poorly" effect behind Q2/Q11/Q16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.catalog import Catalog
from repro.engine.errors import PlanError
from repro.engine.exec.aggregate import GroupAggregate
from repro.engine.exec.base import ExecContext, Operator
from repro.engine.exec.joins import HashJoin, IndexNestedLoopJoin, NestedLoopJoin
from repro.engine.exec.misc import Alias, Distinct, Filter, Limit, Project
from repro.engine.exec.sort import Sort
from repro.engine.expr import (
    AggCall,
    BinOp,
    ColumnRef,
    CorrelationCell,
    Expr,
    InputRef,
    OutputSchema,
    SubqueryExpr,
    conjoin,
    split_conjuncts,
)
from repro.engine.plan.access import choose_access_path
from repro.engine.plan.binder import bind_expr, referenced_bindings
from repro.engine.plan.fingerprint import fingerprint
from repro.engine.plan.rewrite import (
    AggRegistry,
    contains_aggregate,
    rewrite_for_aggregation,
)
from repro.engine.sql.ast import (
    JoinRef,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
)
from repro.engine.stats import TableStats


@dataclass
class PlannedQuery:
    operator: Operator
    column_names: list[str]
    correlated: bool = False


@dataclass
class _Unit:
    """One FROM unit: a base table, a view, or an ANSI join tree."""

    bindings: list[str]
    leaf_schemas: dict[str, OutputSchema]
    operator: Operator | None = None
    # Base-table-only fields (for access path / INL decisions):
    table: object = None
    alias: str | None = None
    filters: list[Expr] = field(default_factory=list)
    estimated_rows: float = 1.0
    # ANSI join trees are materialized lazily so single-table WHERE
    # conjuncts can be pushed into their leaf scans first.
    jointree: JoinRef | None = None
    # binding -> base Table for every base-table leaf (all unit kinds)
    leaf_tables: dict[str, object] = field(default_factory=dict)


class _PlanContext:
    """Per-plan_select state: outer correlation + tracking flag."""

    def __init__(self, outer_schema: OutputSchema | None,
                 cell: CorrelationCell | None) -> None:
        self.outer_schema = outer_schema
        self.cell = cell
        self.correlated = False
        # pre-planned operators for view leaves inside ANSI join trees
        self.join_leaf_plans: dict[str, Operator] = {}


class Planner:
    def __init__(
        self,
        catalog: Catalog,
        stats_store: dict[str, TableStats],
        ctx: ExecContext,
    ) -> None:
        self.catalog = catalog
        self.stats = stats_store
        self.ctx = ctx
        #: a ParallelPolicy when the database runs at degree > 1; the
        #: finished *top-level* plan is handed to it for fragment
        #: rewriting (views/subqueries recurse through plan_select and
        #: must stay serial — fragments never nest inside lanes)
        self.parallel = None
        self._depth = 0

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan_select(
        self,
        stmt: SelectStmt,
        outer_schema: OutputSchema | None = None,
        cell: CorrelationCell | None = None,
    ) -> PlannedQuery:
        self._depth += 1
        try:
            planned = self._plan_select_serial(stmt, outer_schema, cell)
        finally:
            self._depth -= 1
        if (self._depth == 0 and self.parallel is not None
                and not planned.correlated):
            planned.operator = self.parallel.parallelize(planned.operator)
        return planned

    def _plan_select_serial(
        self,
        stmt: SelectStmt,
        outer_schema: OutputSchema | None = None,
        cell: CorrelationCell | None = None,
    ) -> PlannedQuery:
        pctx = _PlanContext(outer_schema, cell)
        units, binding_schemas = self._resolve_from(stmt, pctx)

        single, edges, residuals, deferred = self._classify_where(
            stmt.where, units, binding_schemas, pctx
        )

        for unit in units:
            self._materialize_unit(unit, single, pctx)

        top = self._order_joins(units, edges, residuals, pctx)

        if deferred:
            predicate = conjoin(deferred)
            self._bind(predicate, top.schema, pctx)
            top = Filter(self.ctx, top, predicate)

        return self._finish(stmt, top, pctx)

    # ------------------------------------------------------------------
    # FROM resolution
    # ------------------------------------------------------------------

    def _resolve_from(
        self, stmt: SelectStmt, pctx: _PlanContext
    ) -> tuple[list[_Unit], dict[str, OutputSchema]]:
        if not stmt.from_items:
            raise PlanError("SELECT without FROM is not supported")
        units: list[_Unit] = []
        binding_schemas: dict[str, OutputSchema] = {}
        for item in stmt.from_items:
            unit = self._resolve_from_item(item, pctx)
            for binding in unit.bindings:
                if binding in binding_schemas:
                    raise PlanError(f"duplicate FROM binding {binding}")
                binding_schemas[binding] = unit.leaf_schemas[binding]
            units.append(unit)
        return units, binding_schemas

    def _resolve_from_item(self, item, pctx: _PlanContext) -> _Unit:
        if isinstance(item, TableRef):
            return self._resolve_table_ref(item, pctx)
        if isinstance(item, JoinRef):
            leaf_schemas: dict[str, OutputSchema] = {}
            leaf_tables: dict[str, object] = {}
            self._collect_join_leaves(item, leaf_schemas, leaf_tables, pctx)
            estimate = max(
                (t.row_count for t in leaf_tables.values() if t is not None),
                default=1,
            )
            return _Unit(
                bindings=list(leaf_schemas),
                leaf_schemas=leaf_schemas,
                jointree=item,
                leaf_tables=leaf_tables,
                estimated_rows=max(float(estimate), 1.0),
            )
        raise PlanError(f"unsupported FROM item {item!r}")

    def _collect_join_leaves(
        self,
        item,
        leaf_schemas: dict[str, OutputSchema],
        leaf_tables: dict[str, object],
        pctx: _PlanContext,
    ) -> None:
        if isinstance(item, JoinRef):
            self._collect_join_leaves(item.left, leaf_schemas, leaf_tables,
                                      pctx)
            self._collect_join_leaves(item.right, leaf_schemas, leaf_tables,
                                      pctx)
            return
        if not isinstance(item, TableRef):
            raise PlanError(f"unsupported join operand {item!r}")
        binding = item.binding_name
        if binding in leaf_schemas:
            raise PlanError(f"duplicate FROM binding {binding}")
        if self.catalog.has_view(item.name):
            # Views inside join trees are planned eagerly (no pushdown).
            unit = self._resolve_table_ref(item, pctx)
            leaf_schemas[binding] = unit.leaf_schemas[binding]
            leaf_tables[binding] = None
            pctx.join_leaf_plans[binding] = unit.operator
            return
        table = self.catalog.table(item.name)
        leaf_schemas[binding] = OutputSchema(
            [(binding, c.name) for c in table.schema.columns]
        )
        leaf_tables[binding] = table

    def _resolve_table_ref(self, ref: TableRef, pctx: _PlanContext) -> _Unit:
        binding = ref.binding_name
        if self.catalog.has_view(ref.name):
            # Deep-copy: planning mutates expression nodes (binding), and
            # the stored view AST must stay pristine for the next use.
            import copy

            view_ast = copy.deepcopy(self.catalog.view(ref.name))
            sub = self.plan_select(view_ast, pctx.outer_schema, pctx.cell)
            if sub.correlated:
                pctx.correlated = True
            aliased = Alias(self.ctx, sub.operator, binding, sub.column_names)
            return _Unit(
                bindings=[binding],
                leaf_schemas={binding: aliased.schema},
                operator=aliased,
                estimated_rows=max(aliased.estimated_rows, 1.0),
            )
        table = self.catalog.table(ref.name)
        schema = OutputSchema(
            [(binding, c.name) for c in table.schema.columns]
        )
        return _Unit(
            bindings=[binding],
            leaf_schemas={binding: schema},
            table=table,
            alias=ref.alias or None,
            estimated_rows=max(table.row_count, 1.0),
        )

    def _plan_join_tree(
        self,
        join: JoinRef,
        single: dict[str, list[Expr]],
        pctx: _PlanContext,
    ) -> tuple[Operator, dict[str, OutputSchema]]:
        """Plan an explicit JOIN ... ON tree in the written order.

        Single-table WHERE conjuncts from ``single`` are pushed into
        the leaf scans; only the join *order* stays as written (the
        engine does not reorder ANSI joins — see module docstring).
        """
        left_op, left_schemas = self._plan_join_side(join.left, single, pctx)
        right_op, right_schemas = self._plan_join_side(join.right, single,
                                                       pctx)
        schemas = {**left_schemas, **right_schemas}
        combined = left_op.schema.concat(right_op.schema)

        conjuncts = split_conjuncts(join.condition)
        equi_pairs: list[tuple[int, int]] = []
        residual: list[Expr] = []
        left_width = len(left_op.schema)
        for conjunct in conjuncts:
            pair = self._equi_positions(conjunct, combined, left_width)
            if pair is not None and not join.outer:
                equi_pairs.append(pair)
            else:
                residual.append(conjunct)

        residual_expr = conjoin(residual)
        if residual_expr is not None:
            self._bind(residual_expr, combined, pctx)

        if equi_pairs and not join.outer:
            operator: Operator = HashJoin(
                self.ctx, left_op, right_op,
                [l for l, _ in equi_pairs],
                [r - left_width for _, r in equi_pairs],
                residual=residual_expr,
            )
        else:
            operator = NestedLoopJoin(
                self.ctx, left_op, right_op, residual_expr, outer=join.outer
            )
        operator.estimated_rows = max(
            left_op.estimated_rows, right_op.estimated_rows, 1.0
        )
        return operator, schemas

    def _plan_join_side(
        self,
        item,
        single: dict[str, list[Expr]],
        pctx: _PlanContext,
    ) -> tuple[Operator, dict[str, OutputSchema]]:
        if isinstance(item, JoinRef):
            return self._plan_join_tree(item, single, pctx)
        if not isinstance(item, TableRef):
            raise PlanError(f"unsupported join operand {item!r}")
        binding = item.binding_name
        if binding in pctx.join_leaf_plans:
            operator = pctx.join_leaf_plans[binding]
            return operator, {binding: operator.schema}
        table = self.catalog.table(item.name)
        stats = self.stats.get(table.name, TableStats())
        choice = choose_access_path(
            self.ctx, table,
            binding if binding != table.name else None,
            single.get(binding, []), stats,
        )
        choice.operator.estimated_rows = max(choice.estimated_rows, 0.01)
        return choice.operator, {binding: choice.operator.schema}

    def _equi_positions(
        self, conjunct: Expr, combined: OutputSchema, left_width: int
    ) -> tuple[int, int] | None:
        if not (isinstance(conjunct, BinOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        left_pos = combined.try_resolve(left.qualifier, left.name)
        right_pos = combined.try_resolve(right.qualifier, right.name)
        if left_pos is None or right_pos is None:
            return None
        if left_pos < left_width <= right_pos:
            return (left_pos, right_pos)
        if right_pos < left_width <= left_pos:
            return (right_pos, left_pos)
        return None

    # ------------------------------------------------------------------
    # WHERE classification
    # ------------------------------------------------------------------

    def _classify_where(
        self,
        where: Expr | None,
        units: list[_Unit],
        binding_schemas: dict[str, OutputSchema],
        pctx: _PlanContext,
    ) -> tuple[
        dict[str, list[Expr]],
        list[tuple[str, ColumnRef, str, ColumnRef]],
        list[tuple[frozenset[str], Expr]],
        list[Expr],
    ]:
        single: dict[str, list[Expr]] = {}
        edges: list[tuple[str, ColumnRef, str, ColumnRef]] = []
        residuals: list[tuple[frozenset[str], Expr]] = []
        deferred: list[Expr] = []
        unit_of = {
            binding: unit for unit in units for binding in unit.bindings
        }
        for conjunct in split_conjuncts(where):
            refs = referenced_bindings(conjunct, binding_schemas)
            if "?" in refs:
                # A correlated predicate like `inner.col = outer.col`
                # can still drive an index: pin the outer references to
                # the correlation cell and treat the conjunct as a
                # single-table (runtime-parameter) filter — the classic
                # correlated-predicate pushdown every tuple-at-a-time
                # subquery executor performs.
                pinned = self._try_pin_correlated(
                    conjunct, binding_schemas, unit_of, pctx
                )
                if pinned is not None:
                    single.setdefault(pinned, []).append(conjunct)
                else:
                    deferred.append(conjunct)
                continue
            touched_units = {id(unit_of[b]) for b in refs} if refs else set()
            if len(touched_units) <= 1:
                if not refs:
                    deferred.append(conjunct)
                    continue
                binding = next(iter(refs))
                unit = unit_of[binding]
                if len(refs) > 1:
                    # Touches several leaves of one join-tree unit.
                    residuals.append((frozenset(refs), conjunct))
                    continue
                if unit.table is not None:
                    single.setdefault(binding, []).append(conjunct)
                elif unit.leaf_tables.get(binding) is not None:
                    # Base-table leaf of an ANSI join tree: push the
                    # filter into that leaf's scan.
                    single.setdefault(binding, []).append(conjunct)
                else:
                    # Filter over a view/derived unit: classify as
                    # residual so it is applied once the unit enters
                    # the join tree.
                    residuals.append((frozenset(unit.bindings), conjunct))
                continue
            edge = self._as_join_edge(conjunct, binding_schemas, unit_of)
            if edge is not None:
                edges.append(edge)
            else:
                residuals.append((frozenset(refs), conjunct))
        return single, edges, residuals, deferred

    def _try_pin_correlated(
        self,
        conjunct: Expr,
        binding_schemas: dict[str, OutputSchema],
        unit_of: dict[str, _Unit],
        pctx: _PlanContext,
    ) -> str | None:
        """Pin outer references in a correlated conjunct, if possible.

        Succeeds when the conjunct touches exactly one inner base-table
        binding, contains no subqueries, and every other column
        reference resolves in the outer query's schema.  Returns the
        inner binding the conjunct now filters.
        """
        if pctx.outer_schema is None or pctx.cell is None:
            return None
        inner_binding: str | None = None
        outer_refs: list[ColumnRef] = []
        for node in conjunct.walk():
            if isinstance(node, SubqueryExpr):
                return None
            if not isinstance(node, ColumnRef):
                continue
            binding = self._binding_of(node, binding_schemas)
            if binding is not None:
                if inner_binding is not None and binding != inner_binding:
                    return None
                inner_binding = binding
            else:
                resolved = pctx.outer_schema.try_resolve(
                    node.qualifier, node.name
                )
                if resolved is None:
                    return None
                outer_refs.append(node)
        if inner_binding is None or not outer_refs:
            return None
        if unit_of[inner_binding].table is None:
            return None
        empty = OutputSchema([])
        for node in outer_refs:
            node.bind_or_outer(empty, pctx.outer_schema, pctx.cell)
        pctx.correlated = True
        return inner_binding

    def _as_join_edge(
        self,
        conjunct: Expr,
        binding_schemas: dict[str, OutputSchema],
        unit_of: dict[str, _Unit],
    ) -> tuple[str, ColumnRef, str, ColumnRef] | None:
        if not (isinstance(conjunct, BinOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        left_binding = self._binding_of(left, binding_schemas)
        right_binding = self._binding_of(right, binding_schemas)
        if left_binding is None or right_binding is None:
            return None
        if unit_of[left_binding] is unit_of[right_binding]:
            return None
        return (left_binding, left, right_binding, right)

    def _binding_of(
        self, ref: ColumnRef, binding_schemas: dict[str, OutputSchema]
    ) -> str | None:
        found = None
        for binding, schema in binding_schemas.items():
            if ref.qualifier is not None and ref.qualifier.lower() != binding:
                continue
            if schema.try_resolve(None, ref.name) is not None:
                if found is not None:
                    return None
                found = binding
        return found

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------

    def _materialize_unit(
        self,
        unit: _Unit,
        single: dict[str, list[Expr]],
        pctx: _PlanContext,
    ) -> None:
        if unit.operator is not None:
            return
        if unit.jointree is not None:
            operator, _schemas = self._plan_join_tree(unit.jointree, single,
                                                      pctx)
            unit.operator = operator
            unit.estimated_rows = max(operator.estimated_rows, 1.0)
            return
        binding = unit.bindings[0]
        conjuncts = single.get(binding, [])
        unit.filters = conjuncts
        stats = self.stats.get(unit.table.name, TableStats())
        choice = choose_access_path(
            self.ctx, unit.table, binding if binding != unit.table.name
            else None, conjuncts, stats
        )
        unit.operator = choice.operator
        unit.estimated_rows = max(choice.estimated_rows, 0.01)

    # ------------------------------------------------------------------
    # join ordering
    # ------------------------------------------------------------------

    def _order_joins(
        self,
        units: list[_Unit],
        edges: list[tuple[str, ColumnRef, str, ColumnRef]],
        residuals: list[tuple[frozenset[str], Expr]],
        pctx: _PlanContext,
    ) -> Operator:
        remaining = list(units)
        remaining.sort(key=lambda u: u.estimated_rows)
        current = remaining.pop(0)
        assert current.operator is not None
        top: Operator = current.operator
        joined_bindings: set[str] = set(current.bindings)
        top_estimate = current.estimated_rows
        pending_residuals = list(residuals)

        def applicable_edges(unit: _Unit) -> list[tuple[ColumnRef, ColumnRef]]:
            """Edges connecting the joined set to ``unit``.

            Returns (outer_ref, inner_ref) pairs.
            """
            out = []
            for left_b, left_ref, right_b, right_ref in edges:
                if left_b in joined_bindings and right_b in unit.bindings:
                    out.append((left_ref, right_ref))
                elif right_b in joined_bindings and left_b in unit.bindings:
                    out.append((right_ref, left_ref))
            return out

        while remaining:
            # Prefer connected units; among them the smallest estimate.
            candidates = [
                unit for unit in remaining if applicable_edges(unit)
            ]
            pool = candidates or remaining
            unit = min(pool, key=lambda u: u.estimated_rows)
            remaining.remove(unit)
            pairs = applicable_edges(unit)
            top, top_estimate = self._join_unit(
                top, top_estimate, unit, pairs, pctx
            )
            joined_bindings.update(unit.bindings)
            # Apply residual predicates that are now fully covered.
            ready = [
                (refs, expr) for refs, expr in pending_residuals
                if refs <= joined_bindings
            ]
            if ready:
                pending_residuals = [
                    entry for entry in pending_residuals if entry not in ready
                ]
                predicate = conjoin([expr for _refs, expr in ready])
                self._bind(predicate, top.schema, pctx)
                top = Filter(self.ctx, top, predicate)
                top.estimated_rows = top_estimate * 0.5
        if pending_residuals:
            predicate = conjoin([e for _r, e in pending_residuals])
            self._bind(predicate, top.schema, pctx)
            top = Filter(self.ctx, top, predicate)
        return top

    def _join_unit(
        self,
        top: Operator,
        top_estimate: float,
        unit: _Unit,
        pairs: list[tuple[ColumnRef, ColumnRef]],
        pctx: _PlanContext,
    ) -> tuple[Operator, float]:
        params = self.ctx.params
        assert unit.operator is not None
        inner_rows = max(unit.estimated_rows, 1.0)
        result_estimate = max(top_estimate, inner_rows)

        if not pairs:
            join: Operator = NestedLoopJoin(
                self.ctx, top, unit.operator, condition=None
            )
            join.estimated_rows = top_estimate * inner_rows
            return join, join.estimated_rows

        # Option A: index nested loop into a base table, composing the
        # probe key from equality filters (const) and join pairs (outer)
        # along an index's key-column prefix.
        inl_cost = float("inf")
        inl_setup = None
        if unit.table is not None:
            stats = self.stats.get(unit.table.name, TableStats())
            eq_by_col = self._eq_filter_map(unit.filters)
            pair_by_col: dict[str, tuple[ColumnRef, ColumnRef]] = {}
            for outer_ref, inner_ref in pairs:
                pair_by_col.setdefault(inner_ref.name.lower(),
                                       (outer_ref, inner_ref))
            for index in unit.table.indexes.values():
                if not hasattr(index, "search_prefix"):
                    continue
                key_plan: list[tuple[str, object]] = []
                used_cols: list[str] = []
                used_conjuncts: list[Expr] = []
                join_cols: list[str] = []
                for column in index.column_names:
                    if column in eq_by_col:
                        conjunct, value_expr = eq_by_col[column]
                        key_plan.append(("const", value_expr))
                        used_conjuncts.append(conjunct)
                        used_cols.append(column)
                    elif column in pair_by_col:
                        key_plan.append(("pair", pair_by_col[column]))
                        join_cols.append(column)
                        used_cols.append(column)
                    else:
                        break
                if not join_cols:
                    continue
                ndv = 1.0
                for column in join_cols:
                    col_stats = stats.columns.get(column)
                    if col_stats is not None and col_stats.n_distinct:
                        ndv = max(ndv, float(col_stats.n_distinct))
                matches = max(unit.table.row_count / ndv, 1.0)
                per_probe = (
                    params.index_traverse_s
                    + matches * (params.random_read_s * 0.3
                                 + params.tuple_cpu_s)
                )
                cost = top_estimate * per_probe
                if cost < inl_cost:
                    inl_cost = cost
                    inl_setup = (index, key_plan, used_conjuncts, join_cols)

        # Option B: hash join (reads the inner input once).
        inner_pages = 1.0
        if unit.table is not None:
            inner_pages = max(unit.table.heap.page_count, 1)
        hash_cost = (
            inner_pages * params.seq_read_s
            + inner_rows * params.tuple_cpu_s * 2
            + top_estimate * params.tuple_cpu_s
        )

        if inl_setup is not None and inl_cost < hash_cost:
            index, key_plan, used_conjuncts, join_cols = inl_setup
            used_pairs: list[tuple[ColumnRef, ColumnRef]] = []
            key_sources: list[tuple[str, object]] = []
            for kind, payload in key_plan:
                if kind == "const":
                    key_sources.append(("const", payload))
                    continue
                outer_ref, inner_ref = payload
                outer_ref_bound = ColumnRef(outer_ref.qualifier,
                                            outer_ref.name)
                outer_ref_bound.bind(top.schema)
                key_sources.append(("outer", outer_ref_bound._position))
                used_pairs.append(payload)
            used_ids = {id(c) for c in used_conjuncts}
            inner_filter = conjoin(
                [c for c in unit.filters if id(c) not in used_ids]
            )
            inner_binding = unit.bindings[0]
            inner_schema = unit.leaf_schemas[inner_binding]
            if inner_filter is not None:
                self._bind(inner_filter, inner_schema, pctx)
            residual_pairs = [
                pair for pair in pairs if pair not in used_pairs
            ]
            residual = self._pairs_to_predicate(residual_pairs)
            join = IndexNestedLoopJoin(
                self.ctx,
                top,
                unit.table,
                inner_binding if inner_binding != unit.table.name else None,
                index.name,
                key_sources,
                residual=residual,
                inner_filter=inner_filter,
            )
            if residual is not None:
                self._bind(residual, join.schema, pctx)
            join.estimated_rows = result_estimate
            return join, result_estimate

        left_positions = []
        right_positions = []
        for outer_ref, inner_ref in pairs:
            left_positions.append(
                top.schema.resolve(outer_ref.qualifier, outer_ref.name)
            )
            right_positions.append(
                unit.operator.schema.resolve(inner_ref.qualifier,
                                             inner_ref.name)
            )
        join = HashJoin(
            self.ctx, top, unit.operator, left_positions, right_positions,
            build_left=top_estimate < inner_rows,
        )
        join.estimated_rows = result_estimate
        return join, result_estimate

    def _eq_filter_map(
        self, conjuncts: list[Expr]
    ) -> dict[str, tuple[Expr, Expr]]:
        """column -> (conjunct, value expr) for equality filters."""
        from repro.engine.plan.access import eq_sarg_value

        out: dict[str, tuple[Expr, Expr]] = {}
        for conjunct in conjuncts:
            entry = eq_sarg_value(conjunct)
            if entry is not None and entry[0] not in out:
                out[entry[0]] = (conjunct, entry[1])
        return out

    def _pairs_to_predicate(
        self, pairs: list[tuple[ColumnRef, ColumnRef]]
    ) -> Expr | None:
        conjuncts: list[Expr] = []
        for outer_ref, inner_ref in pairs:
            conjuncts.append(
                BinOp(
                    "=",
                    ColumnRef(outer_ref.qualifier, outer_ref.name),
                    ColumnRef(inner_ref.qualifier, inner_ref.name),
                )
            )
        return conjoin(conjuncts)

    # ------------------------------------------------------------------
    # binding + subqueries
    # ------------------------------------------------------------------

    def _bind(self, expr: Expr, schema: OutputSchema,
              pctx: _PlanContext) -> None:
        correlated = bind_expr(
            expr,
            schema,
            compile_subquery=lambda node, s: self._compile_subquery(
                node, s, pctx
            ),
            outer_schema=pctx.outer_schema,
            cell=pctx.cell,
        )
        if correlated:
            pctx.correlated = True

    def _compile_subquery(
        self, node: SubqueryExpr, schema: OutputSchema, pctx: _PlanContext
    ) -> None:
        cell = CorrelationCell()
        sub = self.plan_select(node.query, outer_schema=schema, cell=cell)
        correlated = sub.correlated
        operator = sub.operator
        metrics = self.ctx.metrics

        if node.mode == "scalar" and not correlated:
            cache: dict[tuple, object] = {}

            def run_cached(outer_row: tuple, params: Sequence[object]):
                key = tuple(params)
                if key not in cache:
                    metrics.count("plan.subquery_executions")
                    rows_iter = operator.rows(params)
                    first = next(rows_iter, None)
                    cache[key] = first[0] if first is not None else None
                return cache[key]

            node.executor = run_cached
            return

        if node.mode == "scalar":
            def run_scalar(outer_row: tuple, params: Sequence[object]):
                cell.row = outer_row
                metrics.count("plan.subquery_executions")
                first = next(operator.rows(params), None)
                return first[0] if first is not None else None

            node.executor = run_scalar
            return

        if node.mode == "exists":
            def run_exists(outer_row: tuple, params: Sequence[object]):
                cell.row = outer_row
                metrics.count("plan.subquery_executions")
                return next(operator.rows(params), None) is not None

            node.executor = run_exists
            return

        # IN subqueries: naive per-outer-row re-execution, the engine's
        # documented 1990s weakness (see module docstring).
        def run_in(outer_row: tuple, params: Sequence[object]):
            cell.row = outer_row
            metrics.count("plan.subquery_executions")
            return [row[0] for row in operator.rows(params)]

        node.executor = run_in

    # ------------------------------------------------------------------
    # projection / aggregation / ordering
    # ------------------------------------------------------------------

    def _finish(self, stmt: SelectStmt, top: Operator,
                pctx: _PlanContext) -> PlannedQuery:
        items = self._expand_stars(stmt, top.schema)

        grouped = bool(stmt.group_by) or any(
            contains_aggregate(item.expr) for item in items
        ) or (stmt.having is not None and contains_aggregate(stmt.having))

        if grouped:
            top, item_exprs, order_exprs, having_expr = self._plan_aggregate(
                stmt, items, top, pctx
            )
            if having_expr is not None:
                top = Filter(self.ctx, top, having_expr)
        else:
            if stmt.having is not None:
                raise PlanError("HAVING without aggregation")
            for item in items:
                self._bind(item.expr, top.schema, pctx)
            item_exprs = [item.expr for item in items]
            order_exprs = []
            for order in stmt.order_by:
                order_exprs.append(
                    self._resolve_order_expr(order, items, top.schema, pctx)
                )

        names = self._output_names(items)

        # Build extended projection: visible items + hidden sort keys.
        item_fps = [fingerprint(e) for e in item_exprs]
        sort_spec: list[tuple[int, bool]] = []
        hidden: list[Expr] = []
        for order, expr in zip(stmt.order_by, order_exprs):
            fp = fingerprint(expr)
            if fp in item_fps:
                sort_spec.append((item_fps.index(fp), order.descending))
            else:
                sort_spec.append((len(item_exprs) + len(hidden),
                                  order.descending))
                hidden.append(expr)

        all_exprs = item_exprs + hidden
        all_names = names + [f"_s{i}" for i in range(len(hidden))]
        top = Project(self.ctx, top, all_exprs, all_names)

        if sort_spec:
            top = Sort(self.ctx, top, sort_spec)
        if hidden:
            strip = [InputRef(i) for i in range(len(names))]
            top = Project(self.ctx, top, strip, names)
        if stmt.distinct:
            top = Distinct(self.ctx, top)
        if stmt.limit is not None:
            top = Limit(self.ctx, top, stmt.limit)
        return PlannedQuery(top, names, correlated=pctx.correlated)

    def _plan_aggregate(
        self,
        stmt: SelectStmt,
        items: list[SelectItem],
        top: Operator,
        pctx: _PlanContext,
    ) -> tuple[Operator, list[Expr], list[Expr], Expr | None]:
        group_exprs = list(stmt.group_by)
        for expr in group_exprs:
            self._bind(expr, top.schema, pctx)
        group_positions = {
            fingerprint(expr): i for i, expr in enumerate(group_exprs)
        }
        registry = AggRegistry(len(group_exprs))

        item_exprs: list[Expr] = []
        for item in items:
            self._bind(item.expr, top.schema, pctx)
            item_exprs.append(
                rewrite_for_aggregation(
                    item.expr, group_positions, registry, "SELECT"
                )
            )
        having_expr: Expr | None = None
        if stmt.having is not None:
            self._bind(stmt.having, top.schema, pctx)
            having_expr = rewrite_for_aggregation(
                stmt.having, group_positions, registry, "HAVING"
            )
        order_exprs: list[Expr] = []
        for order in stmt.order_by:
            expr = self._maybe_alias_expr(order, items, item_exprs)
            if expr is not None:
                order_exprs.append(expr)
                continue
            self._bind(order.expr, top.schema, pctx)
            order_exprs.append(
                rewrite_for_aggregation(
                    order.expr, group_positions, registry, "ORDER BY"
                )
            )
        aggregate = GroupAggregate(
            self.ctx, top, group_exprs, registry.calls
        )
        return aggregate, item_exprs, order_exprs, having_expr

    def _maybe_alias_expr(
        self,
        order: OrderItem,
        items: list[SelectItem],
        item_exprs: list[Expr],
    ) -> Expr | None:
        """ORDER BY <alias> resolves to the matching select item."""
        if not isinstance(order.expr, ColumnRef) or order.expr.qualifier:
            return None
        name = order.expr.name.lower()
        for item, expr in zip(items, item_exprs):
            if item.alias is not None and item.alias.lower() == name:
                return expr
        return None

    def _resolve_order_expr(
        self,
        order: OrderItem,
        items: list[SelectItem],
        schema: OutputSchema,
        pctx: _PlanContext,
    ) -> Expr:
        alias_expr = self._maybe_alias_expr(
            order, items, [item.expr for item in items]
        )
        if alias_expr is not None:
            return alias_expr
        self._bind(order.expr, schema, pctx)
        return order.expr

    def _expand_stars(
        self, stmt: SelectStmt, schema: OutputSchema
    ) -> list[SelectItem]:
        items: list[SelectItem] = []
        for item in stmt.items:
            if isinstance(item, Star):
                qualifier = item.qualifier.lower() if item.qualifier else None
                matched = False
                for q, name in schema.entries:
                    if qualifier is None or q == qualifier:
                        items.append(SelectItem(ColumnRef(q, name), name))
                        matched = True
                if not matched:
                    raise PlanError(f"no columns match {item.qualifier}.*")
            else:
                items.append(item)
        return items

    def _output_names(self, items: list[SelectItem]) -> list[str]:
        names: list[str] = []
        for i, item in enumerate(items):
            if item.alias:
                names.append(item.alias.lower())
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.name.lower())
            elif isinstance(item.expr, AggCall):
                names.append(item.expr.func.lower())
            else:
                names.append(f"col{i}")
        # De-duplicate (schema requires resolvable names only on use).
        seen: dict[str, int] = {}
        unique: list[str] = []
        for name in names:
            if name in seen:
                seen[name] += 1
                unique.append(f"{name}_{seen[name]}")
            else:
                seen[name] = 0
                unique.append(name)
        return unique
