"""Structural fingerprints for bound expressions.

Used to recognise that a SELECT item (or ORDER BY / HAVING term) is the
same expression as a GROUP BY key so it can be replaced by a positional
reference into the aggregation output.
"""

from __future__ import annotations

from repro.engine.errors import PlanError
from repro.engine.expr import (
    AggCall,
    BetweenExpr,
    BinOp,
    CaseExpr,
    ColumnRef,
    DateArithExpr,
    Expr,
    ExtractExpr,
    FuncCall,
    InListExpr,
    InputRef,
    IntervalLiteral,
    IsNullExpr,
    LikeExpr,
    Literal,
    NegExpr,
    NotExpr,
    ParamRef,
    SubqueryExpr,
)


def fingerprint(expr: Expr) -> tuple:
    """Hashable structural key for a *bound* expression."""
    if isinstance(expr, ColumnRef):
        if expr._outer_cell is not None:
            return ("outercol", expr._outer_position)
        return ("col", expr._position)
    if isinstance(expr, InputRef):
        return ("col", expr.position)
    if isinstance(expr, Literal):
        return ("lit", expr.value)
    if isinstance(expr, ParamRef):
        return ("param", expr.index)
    if isinstance(expr, BinOp):
        return ("bin", expr.op, fingerprint(expr.left),
                fingerprint(expr.right))
    if isinstance(expr, NotExpr):
        return ("not", fingerprint(expr.operand))
    if isinstance(expr, NegExpr):
        return ("neg", fingerprint(expr.operand))
    if isinstance(expr, IsNullExpr):
        return ("isnull", expr.negated, fingerprint(expr.operand))
    if isinstance(expr, BetweenExpr):
        return ("between", expr.negated, fingerprint(expr.operand),
                fingerprint(expr.low), fingerprint(expr.high))
    if isinstance(expr, InListExpr):
        return ("inlist", expr.negated, fingerprint(expr.operand),
                tuple(fingerprint(i) for i in expr.items))
    if isinstance(expr, LikeExpr):
        return ("like", expr.negated, fingerprint(expr.operand),
                fingerprint(expr.pattern))
    if isinstance(expr, CaseExpr):
        branches = tuple(
            (fingerprint(c), fingerprint(v)) for c, v in expr.branches
        )
        default = fingerprint(expr.default) if expr.default else None
        return ("case", branches, default)
    if isinstance(expr, ExtractExpr):
        return ("extract", expr.field, fingerprint(expr.operand))
    if isinstance(expr, IntervalLiteral):
        return ("interval", expr.amount, expr.unit)
    if isinstance(expr, DateArithExpr):
        return ("datearith", expr.sign, fingerprint(expr.date_expr),
                fingerprint(IntervalLiteral(expr.interval.amount,
                                            expr.interval.unit)))
    if isinstance(expr, FuncCall):
        return ("fn", expr.name, tuple(fingerprint(a) for a in expr.args))
    if isinstance(expr, AggCall):
        arg = fingerprint(expr.arg) if expr.arg is not None else None
        return ("agg", expr.func, expr.distinct, arg)
    if isinstance(expr, SubqueryExpr):
        # Subqueries are identified by node identity; two textual twins
        # are treated as distinct (safe, just misses a dedup).
        return ("subq", id(expr))
    raise PlanError(f"cannot fingerprint {type(expr).__name__}")
