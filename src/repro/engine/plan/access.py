"""Access-path selection for base tables.

This module decides full scan vs index scan, using table statistics
when predicate values are visible at plan time.  Parameter markers
(``?``) have no plan-time value, so range predicates on them use the
blind :data:`~repro.engine.stats.DEFAULT_RANGE_SELECTIVITY` — the exact
mechanism behind the paper's Table 6: SAP's Open SQL translation turns
literals into parameters, the optimizer guesses 5%, picks the index,
and fetches 1.2 million tuples by random I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.exec.base import ExecContext
from repro.engine.exec.scans import IndexEqScan, IndexRangeScan, SeqScan
from repro.engine.expr import (
    AggCall,
    BetweenExpr,
    BinOp,
    ColumnRef,
    Expr,
    LikeExpr,
    ParamRef,
    SubqueryExpr,
    conjoin,
)
from repro.engine.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
    eq_selectivity,
    range_selectivity,
)
from repro.engine.table import Table
from repro.engine.plan.binder import bind_expr

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


@dataclass
class _Sarg:
    """One sargable conjunct: column <op> value-expr."""

    column: str
    op: str  # '=', '<', '<=', '>', '>=', 'between'
    value: Expr | None = None
    low: Expr | None = None
    high: Expr | None = None
    source: Expr | None = None  # the original conjunct


def _value_kind(expr: Expr) -> str | None:
    """Classify an expression as a sarg value.

    ``"const"``: evaluable at plan time (literals, folded date math).
    ``"runtime"``: evaluable at open time but opaque to the optimizer
    (parameter markers, outer-correlated references).
    ``None``: not usable as a sarg value.
    """
    kind = "const"
    for node in expr.walk():
        if isinstance(node, (SubqueryExpr, AggCall)):
            return None
        if isinstance(node, ColumnRef):
            if node._outer_cell is None:
                return None
            kind = "runtime"
        elif isinstance(node, ParamRef):
            kind = "runtime"
    return kind


def _plan_time_value(expr: Expr) -> object | None:
    """The value if visible at plan time, else None (blind)."""
    if _value_kind(expr) == "const":
        return expr.eval((), ())
    return None


def _is_value_expr(expr: Expr) -> bool:
    return _value_kind(expr) is not None


def _is_local_ref(expr: Expr) -> bool:
    return isinstance(expr, ColumnRef) and expr._outer_cell is None


def _extract_sarg(conjunct: Expr) -> _Sarg | None:
    if isinstance(conjunct, BinOp) and conjunct.op in _FLIP:
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if _is_local_ref(left) and _is_value_expr(right):
            return _Sarg(left.name.lower(), op, value=right, source=conjunct)
        if _is_local_ref(right) and _is_value_expr(left):
            return _Sarg(right.name.lower(), _FLIP[op], value=left,
                         source=conjunct)
    if isinstance(conjunct, BetweenExpr) and not conjunct.negated:
        if _is_local_ref(conjunct.operand) and \
                _is_value_expr(conjunct.low) and \
                _is_value_expr(conjunct.high):
            return _Sarg(conjunct.operand.name.lower(), "between",
                         low=conjunct.low, high=conjunct.high,
                         source=conjunct)
    return None


def _conjunct_selectivity(sarg: _Sarg | None, conjunct: Expr,
                          stats: TableStats) -> float:
    if sarg is None:
        if isinstance(conjunct, LikeExpr):
            return DEFAULT_LIKE_SELECTIVITY
        return 0.25
    if sarg.op == "=":
        return eq_selectivity(stats, sarg.column,
                              _plan_time_value(sarg.value) is not None)
    if sarg.op == "between":
        low_sel = range_selectivity(stats, sarg.column, ">=",
                                    _plan_time_value(sarg.low))
        high_sel = range_selectivity(stats, sarg.column, "<=",
                                     _plan_time_value(sarg.high))
        return max(0.0001, low_sel + high_sel - 1.0) \
            if low_sel + high_sel > 1.0 else DEFAULT_RANGE_SELECTIVITY / 2
    return range_selectivity(stats, sarg.column, sarg.op,
                             _plan_time_value(sarg.value))


def _range_values_blind(sarg: _Sarg) -> bool:
    """True when every bound of a range sarg is opaque at plan time."""
    bounds = []
    if sarg.value is not None:
        bounds.append(sarg.value)
    if sarg.low is not None:
        bounds.append(sarg.low)
    if sarg.high is not None:
        bounds.append(sarg.high)
    return bool(bounds) and all(
        _plan_time_value(b) is None for b in bounds
    )


def eq_sarg_value(conjunct: Expr) -> tuple[str, Expr] | None:
    """(column, value-expr) when ``conjunct`` is an equality sarg."""
    sarg = _extract_sarg(conjunct)
    if sarg is not None and sarg.op == "=":
        return sarg.column, sarg.value
    return None


@dataclass
class AccessChoice:
    operator: object
    estimated_rows: float
    used_index: str | None


def choose_access_path(
    ctx: ExecContext,
    table: Table,
    alias: str | None,
    conjuncts: list[Expr],
    stats: TableStats,
) -> AccessChoice:
    """Pick the cheapest access path for one base table."""
    params = ctx.params
    row_count = max(stats.row_count if stats.analyzed else table.row_count, 1)
    sargs = [(c, _extract_sarg(c)) for c in conjuncts]
    total_sel = 1.0
    for conjunct, sarg in sargs:
        total_sel *= _conjunct_selectivity(sarg, conjunct, stats)
    estimated_rows = max(total_sel * row_count, 0.0)

    heap_pages = max(table.heap.page_count, 1)
    seq_cost = heap_pages * params.seq_read_s + row_count * params.tuple_cpu_s

    eq_sargs: dict[str, tuple[Expr, _Sarg]] = {}
    for conjunct, sarg in sargs:
        if sarg is not None and sarg.op == "=" and sarg.column not in eq_sargs:
            eq_sargs[sarg.column] = (conjunct, sarg)

    # Candidate A: composite equality prefix of some index.
    best_prefix: tuple[float, list[_Sarg], object, float] | None = None
    for index in table.indexes.values():
        if not hasattr(index, "search_prefix"):
            continue
        prefix_sargs: list[_Sarg] = []
        sel = 1.0
        for column in index.column_names:
            entry = eq_sargs.get(column)
            if entry is None:
                break
            conjunct, sarg = entry
            prefix_sargs.append(sarg)
            sel *= _conjunct_selectivity(sarg, conjunct, stats)
        if not prefix_sargs:
            continue
        if index.unique and len(prefix_sargs) == len(index.column_names):
            sel = min(sel, 1.0 / row_count)
        fetched = sel * row_count
        cost = (
            params.index_traverse_s
            + fetched * (params.random_read_s + params.tuple_cpu_s)
        )
        if best_prefix is None or cost < best_prefix[0]:
            best_prefix = (cost, prefix_sargs, index, sel)

    # Candidate B: single range/eq sarg on an index's first column.
    best_index: tuple[float, _Sarg, object, float] | None = None
    for conjunct, sarg in sargs:
        if sarg is None:
            continue
        index = table.index_on(sarg.column)
        if index is None or not hasattr(index, "search_range"):
            continue
        sel = _conjunct_selectivity(sarg, conjunct, stats)
        fetched = sel * row_count
        leaf_pages = max(getattr(index, "leaf_page_count", 1), 1)
        cost = (
            params.index_traverse_s
            + sel * leaf_pages * params.seq_read_s
            + fetched * (params.random_read_s + params.tuple_cpu_s)
        )
        if best_index is None or cost < best_index[0]:
            best_index = (cost, sarg, index, sel)

    scan_schema_conjuncts = list(conjuncts)

    prefix_cost = best_prefix[0] if best_prefix else float("inf")
    single_cost = best_index[0] if best_index else float("inf")

    # Equality-prefix preference: 1990s optimizers ranked "equality on
    # an index prefix" above a full scan whenever the estimate was not
    # obviously terrible, NDV-based estimates being all they had.
    if best_prefix is not None:
        _c, prefix_sargs, _idx, prefix_sel = best_prefix
        informative = any(
            (stats.columns.get(s.column) is not None
             and stats.columns[s.column].n_distinct > 1)
            for s in prefix_sargs
        )
        if informative and prefix_sel <= 0.5:
            prefix_cost = min(prefix_cost, seq_cost * 0.5)

    # Rule-based fallback (the Table 6 trap): when a range predicate's
    # value is opaque at plan time — a parameter marker or correlated
    # reference — the optimizer cannot estimate selectivity and falls
    # back to the classic rule "an index is available, use it".  This
    # is what 1990s optimizers did with parameterized cursors, and it
    # is catastrophic when the predicate actually selects everything.
    if best_index is not None:
        _cost, sarg, _index, _sel = best_index
        blind_range = (
            sarg.op != "="
            and _range_values_blind(sarg)
        )
        prefix_is_selective = (
            best_prefix is not None and best_prefix[3] < 0.1
        )
        if blind_range and not prefix_is_selective:
            single_cost = min(single_cost, seq_cost * 0.5)

    if best_prefix is not None and prefix_cost <= single_cost \
            and prefix_cost < seq_cost:
        _cost, prefix_sargs, index, _sel = best_prefix
        used_sources = {id(s.source) for s in prefix_sargs}
        residual = conjoin([
            c for c in scan_schema_conjuncts if id(c) not in used_sources
        ])
        op = IndexEqScan(ctx, table, index.name,
                         [s.value for s in prefix_sargs],
                         alias=alias, residual=residual)
        if residual is not None:
            bind_expr(residual, op.schema)
        op.estimated_rows = estimated_rows
        return AccessChoice(op, estimated_rows, index.name)

    if best_index is not None and single_cost < seq_cost:
        _cost, sarg, index, _sel = best_index
        residual_conjuncts = [
            c for c in scan_schema_conjuncts if c is not sarg.source
        ]
        residual = conjoin(residual_conjuncts)
        if sarg.op == "=":
            op = IndexEqScan(ctx, table, index.name, [sarg.value],
                             alias=alias, residual=residual)
        elif sarg.op == "between":
            op = IndexRangeScan(ctx, table, index.name, sarg.low, sarg.high,
                                True, True, alias=alias, residual=residual)
        elif sarg.op in ("<", "<="):
            op = IndexRangeScan(ctx, table, index.name, None, sarg.value,
                                True, sarg.op == "<=", alias=alias,
                                residual=residual)
        else:  # '>', '>='
            op = IndexRangeScan(ctx, table, index.name, sarg.value, None,
                                sarg.op == ">=", True, alias=alias,
                                residual=residual)
        _bind_scan_exprs(op, sarg, residual)
        op.estimated_rows = estimated_rows
        return AccessChoice(op, estimated_rows, index.name)

    predicate = conjoin(scan_schema_conjuncts)
    op = SeqScan(ctx, table, alias=alias, predicate=predicate)
    if predicate is not None:
        bind_expr(predicate, op.schema)
    op.estimated_rows = estimated_rows
    return AccessChoice(op, estimated_rows, None)


def _bind_scan_exprs(op, sarg: _Sarg, residual: Expr | None) -> None:
    """Bind residual filters against the scan's output schema.

    Key expressions (literals/params) need no binding.
    """
    if residual is not None:
        bind_expr(residual, op.schema)
