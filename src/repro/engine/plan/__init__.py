"""Logical planning and cost-based optimization."""

from repro.engine.plan.planner import Planner

__all__ = ["Planner"]
